//! Quickstart: build a deployment, run a federated SQL query, inspect
//! the simulated cost report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use polystorepp::prelude::*;

fn main() -> Result<()> {
    // A synthetic MIMIC-shaped deployment: 7 engines, one per data model.
    let deployment = datagen::clinical(&ClinicalConfig {
        patients: 300,
        vitals_per_patient: 24,
        seed: 42,
    });
    let system = Polystore::from_deployment(deployment)
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(OptLevel::L3)
        .build()?;

    // A federated query: admissions live in db1, patients in db2; the
    // middleware migrates one side and joins.
    let report = system.run_sql(
        "SELECT name, age FROM admissions \
         JOIN db2.patients ON admissions.pid = patients.pid \
         WHERE age >= 80 ORDER BY age DESC LIMIT 5",
    )?;

    let out = &report.execution.outputs[0];
    println!("elderly patients (top 5 by age):");
    for row in out.try_rows()? {
        println!("  {row}");
    }
    println!();
    println!("L1 rewrites applied : {}", report.rewrites.total());
    println!("operators offloaded : {}", report.execution.offloaded);
    println!(
        "migration time      : {:.3} ms (simulated)",
        report.execution.migration_seconds * 1e3
    );
    println!(
        "makespan            : {:.3} ms (simulated, pipelined)",
        report.makespan() * 1e3
    );
    Ok(())
}

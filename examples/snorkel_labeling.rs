//! The paper's Fig. 3 scenario: a Snorkel-style weak-supervision loop —
//! `load_data` SQL calls interleaved with SGD steps, plus the label
//! model that fuses noisy labeling functions.
//!
//! ```text
//! cargo run --example snorkel_labeling
//! ```

use polystorepp::mlengine::{Dataset, LabelModel, LabelingFunction, Mlp, TrainConfig, Vote};
use polystorepp::prelude::*;

fn main() -> Result<()> {
    let deployment = datagen::clinical(&ClinicalConfig {
        patients: 400,
        vitals_per_patient: 8,
        seed: 5,
    });
    let system = Polystore::from_deployment(deployment)
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(OptLevel::L2)
        .build()?;

    // 1. Unlabeled data in the RDBMS (Fig. 3 step 1).
    let db1 = system.registry().relational(&EngineId::new("db1"))?;
    let rows = db1.scan("admissions", &Predicate::True, None)?;
    println!("loaded {} unlabeled admissions from the RDBMS", rows.len());

    // 2. Labeling functions vote on "long stay" without ground truth.
    let lfs = vec![
        LabelingFunction::new("old_age", |r: &Row| match r[1].as_i64() {
            Some(a) if a >= 75 => Vote::Positive,
            Some(a) if a < 30 => Vote::Negative,
            _ => Vote::Abstain,
        }),
        LabelingFunction::new("recent_admission", |r: &Row| match r[2].as_i64() {
            Some(d) if d > 3000 => Vote::Positive,
            _ => Vote::Abstain,
        }),
        LabelingFunction::new("short_los_hint", |r: &Row| match r[3].as_f64() {
            Some(l) if l < 3.0 => Vote::Negative,
            Some(l) if l > 7.0 => Vote::Positive,
            _ => Vote::Abstain,
        }),
    ];
    let votes = LabelModel::apply_functions(&lfs, &rows);
    let model = LabelModel::fit(&votes, 10)?;
    println!("labeling-function accuracies: {:?}", model.accuracies);

    // 3. Probabilistic labels feed mini-batch SGD (Fig. 3 step 2): each
    //    epoch re-loads training data from the DB — the load_data calls
    //    Polystore++ would accelerate.
    let probs = model.predict(&votes);
    let examples: Vec<(Vec<f64>, f64)> = rows
        .iter()
        .zip(&probs)
        .map(|(r, &p)| {
            let feats = vec![
                r[1].as_f64().unwrap_or(0.0) / 100.0,
                r[2].as_f64().unwrap_or(0.0) / 3650.0,
            ];
            (feats, f64::from(p >= 0.5))
        })
        .collect();
    let data = Dataset::from_examples(&examples)?;
    let mut mlp = Mlp::new(&[2, 8, 1], 3)?;
    let tpu = DeviceProfile::tpu();
    let losses = mlp.train(
        &tpu,
        &data,
        &TrainConfig {
            epochs: 15,
            batch_size: 32,
            learning_rate: 0.4,
        },
        Some(system.ledger()),
    )?;
    println!(
        "trained on weak labels: loss {:.4} -> {:.4} over {} epochs (GEMMs costed on the TPU model)",
        losses[0],
        losses.last().expect("nonempty"),
        losses.len()
    );
    println!(
        "simulated ML engine busy time: {}",
        system.ledger().busy_for("mlengine")
    );
    Ok(())
}

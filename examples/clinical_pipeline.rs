//! The paper's Fig. 2 scenario end to end: a natural-language question
//! compiles to a heterogeneous program spanning the relational, text and
//! timeseries engines, trains a neural model, and the same system scores
//! new admissions — once CPU-only, once accelerated.
//!
//! ```text
//! cargo run --example clinical_pipeline
//! ```

use polystorepp::prelude::*;

fn run(level: OptLevel, fleet: AcceleratorFleet) -> Result<(f64, usize)> {
    let deployment = datagen::clinical(&ClinicalConfig {
        patients: 400,
        vitals_per_patient: 24,
        seed: 2019,
    });
    let system = Polystore::from_deployment(deployment)
        .accelerators(fleet)
        .opt_level(level)
        .build()?;
    let report = system.run_nlq(
        "Will patients have a long stay at the hospital (> 5 days) or short (<= 5 days) \
         when they exit the ICU?",
    )?;
    assert!(report.execution.outputs[0].try_model().is_ok());
    Ok((report.makespan(), report.execution.offloaded))
}

fn main() -> Result<()> {
    println!("Fig. 2 clinical pipeline: rel + text + ts -> join -> MLP training\n");
    let (cpu, _) = run(OptLevel::L1, AcceleratorFleet::cpu_only())?;
    let (accel, offloaded) = run(OptLevel::L3, AcceleratorFleet::workstation())?;
    println!("CPU-only polystore   : {:>10.3} ms (simulated)", cpu * 1e3);
    println!(
        "Polystore++ (L3)     : {:>10.3} ms (simulated), {offloaded} ops offloaded",
        accel * 1e3
    );
    println!("speedup              : {:>10.2}x", cpu / accel);
    Ok(())
}

//! The paper's Fig. 1 enterprise scenario: a recommendation application
//! spanning an RDBMS (customers, transactions), a key/value store
//! (profiles) and a timeseries store (clickstreams).
//!
//! ```text
//! cargo run --example recommendation
//! ```

use polystorepp::prelude::*;

fn main() -> Result<()> {
    let deployment = datagen::recommendation(&RecommendationConfig {
        customers: 800,
        clicks_per_customer: 16,
        seed: 7,
    });
    let system = Polystore::from_deployment(deployment)
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(OptLevel::L2)
        .build()?;

    // Spending summary per segment (runs natively in the RDBMS).
    let report = system.run_sql(
        "SELECT segment, count(*) AS n, avg(spend) AS avg_spend \
         FROM customers GROUP BY segment ORDER BY segment",
    )?;
    println!("customer segments:");
    for row in report.execution.outputs[0].try_rows()? {
        println!("  {row}");
    }

    // Cross-engine: high-value transactions joined back to customers.
    let report = system.run_sql(
        "SELECT segment, count(*) AS big_tx \
         FROM transactions JOIN rdbms.customers ON transactions.cid = customers.cid \
         WHERE amount >= 400 GROUP BY segment",
    )?;
    println!("\nhigh-value transactions by segment:");
    for row in report.execution.outputs[0].try_rows()? {
        println!("  {row}");
    }
    println!(
        "\nsimulated makespan: {:.3} ms; events ledgered: {}",
        report.makespan() * 1e3,
        report.costs.events
    );
    Ok(())
}

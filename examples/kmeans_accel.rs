//! Fig. 7: the OptiML-style k-means written as parallel patterns, costed
//! on CPU, GPU and FPGA device models.
//!
//! ```text
//! cargo run --example kmeans_accel
//! ```

use polystorepp::mlengine::{Dataset, KMeans, KMeansConfig};
use polystorepp::prelude::*;

fn main() -> Result<()> {
    let data = Dataset::synthetic_blobs(4_000, 8, 5, 77);
    println!("k-means: {} points, {} dims, k=5\n", data.len(), data.dim());

    let mut baseline = None;
    for kind in [DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Fpga] {
        let profile = DeviceProfile::preset(kind);
        let ledger = CostLedger::new();
        let result = KMeans::run(
            &profile,
            data.features(),
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
            Some(&ledger),
        )?;
        let total = ledger.total();
        let t = total.busy.as_secs();
        let speedup = *baseline.get_or_insert(t) / t.max(f64::MIN_POSITIVE);
        println!(
            "{kind:>4}: {:>10} (simulated), {:>8.3} J, {:>6.2}x vs cpu, {} iters, inertia {:.1}",
            total.busy, total.energy_j, speedup, result.iterations, result.inertia
        );
    }
    println!("\nidentical clusters on every device: the model changes cost, never results.");
    Ok(())
}

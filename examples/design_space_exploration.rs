//! Fig. 8: active-learning design-space exploration vs random sampling.
//!
//! The design space mixes categorical (device per kernel) and ordinal
//! (batch size) variables; objectives are simulated latency and energy.
//!
//! ```text
//! cargo run --example design_space_exploration
//! ```

use polystorepp::accel::kernels::BitonicSorter;
use polystorepp::optimizer::dse::{ActiveLearner, DesignSpace, Param, RandomSearch};
use polystorepp::prelude::*;

fn main() -> Result<()> {
    let space = DesignSpace::new(vec![
        Param::categorical("sort_device", &["cpu", "gpu", "fpga"]),
        Param::categorical("gemm_device", &["cpu", "gpu", "tpu"]),
        Param::ordinal("batch_kilo_rows", &[64.0, 256.0, 1024.0, 4096.0]),
    ]);

    // Objectives: (latency s, energy J) of sorting + training one batch.
    let eval = |point: &Vec<usize>| {
        let enc = space.encode(point);
        let n = (enc[2] * 1000.0) as u64;
        let sort_dev = [DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Fpga][point[0]];
        let gemm_dev = [DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Tpu][point[1]];
        let sort = DeviceProfile::preset(sort_dev);
        let gemm = DeviceProfile::preset(gemm_dev);
        let t_sort = sort.cycles_to_s(BitonicSorter::cycles(&sort, n));
        let t_gemm = gemm.cycles_to_s(polystorepp::accel::kernels::Gemm::cycles(
            &gemm,
            n / 64,
            64,
            64,
        ));
        let latency = t_sort + t_gemm;
        let energy = sort.energy_j(t_sort) + gemm.energy_j(t_gemm);
        vec![latency, energy]
    };

    let budget = 30;
    let (rand_front, _) = RandomSearch::new(1).run(&space, budget, eval);
    let (al_front, _) = ActiveLearner::new(1).run(&space, budget, eval);

    let reference = [0.5, 500.0];
    println!("budget: {budget} evaluations each\n");
    println!(
        "random search : {} Pareto points, hypervolume {:.4}",
        rand_front.len(),
        rand_front.hypervolume(&reference)?
    );
    println!(
        "active learner: {} Pareto points, hypervolume {:.4}",
        al_front.len(),
        al_front.hypervolume(&reference)?
    );
    println!("\nactive-learning Pareto front (latency s, energy J):");
    for (point, obj) in al_front.entries() {
        println!(
            "  [{:9.3e} s, {:9.3e} J]  {}",
            obj[0],
            obj[1],
            space.describe(point)
        );
    }
    Ok(())
}

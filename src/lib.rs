//! Polystore++ — an accelerated polystore system for heterogeneous
//! workloads.
//!
//! This is the umbrella crate of the workspace: it re-exports the public
//! facade ([`pspp_core`]) plus every substrate crate, so downstream users
//! can depend on a single package. See the README for a tour and the
//! `examples/` directory for runnable end-to-end scenarios.
//!
//! # Quickstart
//!
//! ```
//! use polystorepp::prelude::*;
//!
//! # fn main() -> pspp_common::Result<()> {
//! let deployment = datagen::clinical(&ClinicalConfig { patients: 30, ..Default::default() });
//! let system = Polystore::from_deployment(deployment)
//!     .accelerators(AcceleratorFleet::workstation())
//!     .opt_level(OptLevel::L3)
//!     .build()?;
//! let report = system.run_sql("SELECT pid FROM admissions WHERE age >= 65")?;
//! println!("{} rows in {:.3} simulated ms",
//!          report.execution.outputs[0].len(), report.makespan() * 1e3);
//! # Ok(())
//! # }
//! ```

pub use pspp_accel as accel;
pub use pspp_arraystore as arraystore;
pub use pspp_common as common;
pub use pspp_core as core;
pub use pspp_frontend as frontend;
pub use pspp_graphstore as graphstore;
pub use pspp_ir as ir;
pub use pspp_kvstore as kvstore;
pub use pspp_migrate as migrate;
pub use pspp_mlengine as mlengine;
pub use pspp_optimizer as optimizer;
pub use pspp_relstore as relstore;
pub use pspp_runtime as runtime;
pub use pspp_service as service;
pub use pspp_streamstore as streamstore;
pub use pspp_telemetry as telemetry;
pub use pspp_textstore as textstore;
pub use pspp_tsstore as tsstore;

/// One-stop imports for applications.
pub mod prelude {
    pub use pspp_common::{
        row, Batch, DataModel, DataType, DeviceKind, EngineId, EngineKind, Error, Predicate,
        Result, Row, Schema, TableRef, Value,
    };
    pub use pspp_core::prelude::*;
    pub use pspp_service::{
        AdmissionConfig, AdmissionPolicy, Query, QueryService, ServiceConfig, Session,
    };
}

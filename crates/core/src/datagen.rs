//! Deterministic synthetic deployments.
//!
//! MIMIC-III is credentialed-access, so the clinical deployment
//! reproduces its *shape* instead (see DESIGN.md's substitution table):
//! relational admissions, free-text notes, vital-sign timeseries, a
//! patient/admission/ward graph, a key/value profile store and an ICU
//! device stream — everything Fig. 2's heterogeneous program touches.

use std::collections::HashMap;

use pspp_common::{
    row, DataType, EngineId, PartitionSpec, Result, Row, Schema, SplitMix64, TableRef, Value,
};
use pspp_frontend::nlq::ClinicalNames;
use pspp_frontend::Catalog;
use pspp_graphstore::GraphStore;
use pspp_kvstore::KvStore;
use pspp_optimizer::TableStats;
use pspp_relstore::RelationalStore;
use pspp_runtime::{EngineInstance, EngineRegistry};
use pspp_streamstore::{Event, StreamStore};
use pspp_textstore::TextStore;
use pspp_tsstore::TimeseriesStore;

/// A ready-to-run deployment: engines + catalog + statistics.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The engines.
    pub registry: EngineRegistry,
    /// Name resolution for the frontends.
    pub catalog: Catalog,
    /// Cardinality statistics for the optimizer.
    pub stats: HashMap<TableRef, TableStats>,
    /// Clinical naming convention (meaningful for clinical deployments).
    pub clinical_names: ClinicalNames,
}

/// Size knobs for the clinical deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClinicalConfig {
    /// Number of patients.
    pub patients: usize,
    /// Vital-sign observations per patient.
    pub vitals_per_patient: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClinicalConfig {
    fn default() -> Self {
        ClinicalConfig {
            patients: 500,
            vitals_per_patient: 48,
            seed: 2019,
        }
    }
}

/// Builds the MIMIC-shaped clinical deployment (Fig. 2).
///
/// Ground truth: `long_stay = 1` when the (synthetic) length of stay
/// exceeds 5 days; age, ICU note keywords and mean heart rate all
/// correlate with it, so the Fig. 2 classifier has signal to learn.
pub fn clinical(config: &ClinicalConfig) -> Deployment {
    let mut rng = SplitMix64::new(config.seed);
    let n = config.patients;

    // ---- relational: admissions (DB1) + patients (DB2, §III example) ----
    let mut db1 = RelationalStore::new("db1");
    db1.create_table(
        "admissions",
        Schema::new(vec![
            ("pid", DataType::Int),
            ("age", DataType::Int),
            ("date", DataType::Int),
            ("los", DataType::Float),
            ("long_stay", DataType::Float),
        ]),
    )
    .expect("fresh store");
    let mut db2 = RelationalStore::new("db2");
    db2.create_table(
        "patients",
        Schema::new(vec![
            ("pid", DataType::Int),
            ("name", DataType::Str),
            ("gender", DataType::Str),
        ]),
    )
    .expect("fresh store");

    let mut notes = TextStore::new("textdb");
    let mut vitals = TimeseriesStore::new("tsdb");
    let mut graph = GraphStore::new("graphdb");
    let mut profiles = KvStore::new("kvdb");
    let mut devices = StreamStore::new("streamdb");

    let mut admission_rows = Vec::with_capacity(n);
    let mut patient_rows = Vec::with_capacity(n);
    let ward_icu = graph.add_node("Ward", vec![("name".into(), Value::from("icu"))]);
    let ward_gen = graph.add_node("Ward", vec![("name".into(), Value::from("general"))]);

    for pid in 0..n {
        let age = rng.next_i64(18, 95);
        let severity = rng.next_f64() + (age as f64 - 18.0) / 150.0;
        let los = 1.0 + severity * 9.0 + rng.next_gaussian().abs();
        let long_stay = f64::from(los > 5.0);
        let date = rng.next_i64(0, 3650);
        admission_rows.push(row![
            pid as i64,
            age,
            date,
            (los * 10.0).round() / 10.0,
            long_stay
        ]);
        patient_rows.push(row![
            pid as i64,
            format!("patient_{pid}"),
            if rng.next_bool(0.5) { "f" } else { "m" }
        ]);

        // Notes mention severity-correlated keywords.
        let mut text = format!("patient {pid} admitted. ");
        if severity > 0.9 {
            text.push_str("icu transfer, sepsis suspected, ventilator support. ");
        } else if severity > 0.6 {
            text.push_str("icu observation, vitals unstable. ");
        } else {
            text.push_str("stable, routine monitoring. ");
        }
        notes.add_document(pid as u64, text);

        // Heart-rate series: higher and noisier for severe cases. The
        // series is laid out as `pid*100 + offset`, so a width-100
        // tumbling window aggregates per patient (window_idx == pid).
        let base = 70.0 + severity * 30.0;
        for k in 0..config.vitals_per_patient.min(100) {
            let t = pid as i64 * 100 + k as i64;
            let v = base + rng.next_gaussian() * 5.0;
            vitals.append("vitals", t, v);
            devices.publish("icu_devices", Event::new(t, row![pid as i64, v]));
        }

        // Graph: Patient -> Admission -> Ward.
        let p = graph.add_node("Patient", vec![("pid".into(), Value::Int(pid as i64))]);
        let a = graph.add_node("Admission", vec![("los".into(), Value::Float(los))]);
        graph
            .add_edge(p, a, "HAS_ADMISSION", 1.0)
            .expect("nodes exist");
        let ward = if severity > 0.6 { ward_icu } else { ward_gen };
        graph
            .add_edge(a, ward, "IN_WARD", 1.0)
            .expect("nodes exist");

        profiles.put(
            format!("patient:{pid}"),
            Value::Float((severity * 100.0).round() / 100.0),
        );
    }
    db1.insert("admissions", admission_rows)
        .expect("valid rows");
    db1.create_index("admissions", "pid")
        .expect("column exists");
    db2.insert("patients", patient_rows).expect("valid rows");
    db2.create_index("patients", "pid").expect("column exists");

    // ---- catalog + stats ----
    let mut catalog = Catalog::new();
    let mut stats = HashMap::new();
    let adm_ref = TableRef::new("db1", "admissions");
    catalog.register(
        adm_ref.clone(),
        db1.table("admissions").expect("exists").schema().clone(),
    );
    stats.insert(
        adm_ref,
        TableStats {
            rows: n as f64,
            row_bytes: 40.0,
        },
    );
    let pat_ref = TableRef::new("db2", "patients");
    catalog.register(
        pat_ref.clone(),
        db2.table("patients").expect("exists").schema().clone(),
    );
    stats.insert(
        pat_ref,
        TableStats {
            rows: n as f64,
            row_bytes: 32.0,
        },
    );
    let notes_ref = TableRef::new("textdb", "notes");
    catalog.register(notes_ref.clone(), Schema::empty());
    stats.insert(
        notes_ref,
        TableStats {
            rows: n as f64,
            row_bytes: 80.0,
        },
    );
    let vitals_ref = TableRef::new("tsdb", "vitals");
    catalog.register(vitals_ref.clone(), Schema::empty());
    stats.insert(
        vitals_ref,
        TableStats {
            rows: (n * config.vitals_per_patient) as f64,
            row_bytes: 16.0,
        },
    );
    let graph_ref = TableRef::new("graphdb", "clinical");
    catalog.register(graph_ref.clone(), Schema::empty());
    stats.insert(
        graph_ref,
        TableStats {
            rows: graph.node_count() as f64,
            row_bytes: 24.0,
        },
    );
    let stream_ref = TableRef::new("streamdb", "icu_devices");
    catalog.register(stream_ref.clone(), Schema::empty());
    stats.insert(
        stream_ref,
        TableStats {
            rows: (n * config.vitals_per_patient) as f64,
            row_bytes: 24.0,
        },
    );

    // Partition declarations: both relational tables key on `pid`.
    // Rows are generated in ascending pid order, so a range partition's
    // shard-ordered gather reproduces the unsharded row order exactly —
    // the spec stays a single shard until `PolystoreBuilder::shards(n)`
    // scales it out and redistributes the rows.
    catalog
        .set_partition(
            TableRef::new("db1", "admissions"),
            PartitionSpec::range("pid", Vec::new()),
        )
        .expect("valid spec");
    catalog
        .set_partition(
            TableRef::new("db2", "patients"),
            PartitionSpec::range("pid", Vec::new()),
        )
        .expect("valid spec");

    // ---- registry ----
    let mut registry = EngineRegistry::new();
    registry
        .register(EngineId::new("db1"), EngineInstance::Relational(db1))
        .expect("unique id");
    registry
        .register(EngineId::new("db2"), EngineInstance::Relational(db2))
        .expect("unique id");
    registry
        .register(EngineId::new("textdb"), EngineInstance::Text(notes))
        .expect("unique id");
    registry
        .register(EngineId::new("tsdb"), EngineInstance::Timeseries(vitals))
        .expect("unique id");
    registry
        .register(EngineId::new("graphdb"), EngineInstance::Graph(graph))
        .expect("unique id");
    registry
        .register(EngineId::new("kvdb"), EngineInstance::KeyValue(profiles))
        .expect("unique id");
    registry
        .register(EngineId::new("streamdb"), EngineInstance::Stream(devices))
        .expect("unique id");

    Deployment {
        registry,
        catalog,
        stats,
        clinical_names: ClinicalNames::default(),
    }
}

/// Size knobs for the recommendation deployment (Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendationConfig {
    /// Number of customers.
    pub customers: usize,
    /// Clickstream events per customer.
    pub clicks_per_customer: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RecommendationConfig {
    fn default() -> Self {
        RecommendationConfig {
            customers: 1_000,
            clicks_per_customer: 20,
            seed: 7,
        }
    }
}

/// Builds the Fig. 1 enterprise deployment: customers + transactions in
/// an RDBMS, per-customer profiles in a key/value store, clickstreams in
/// a timeseries store.
pub fn recommendation(config: &RecommendationConfig) -> Deployment {
    let mut rng = SplitMix64::new(config.seed);
    let n = config.customers;

    let mut rdbms = RelationalStore::new("rdbms");
    rdbms
        .create_table(
            "customers",
            Schema::new(vec![
                ("cid", DataType::Int),
                ("segment", DataType::Str),
                ("spend", DataType::Float),
            ]),
        )
        .expect("fresh store");
    rdbms
        .create_table(
            "transactions",
            Schema::new(vec![
                ("cid", DataType::Int),
                ("amount", DataType::Float),
                ("day", DataType::Int),
            ]),
        )
        .expect("fresh store");

    let mut kv = KvStore::new("kv");
    let mut clicks = TimeseriesStore::new("clicks");

    let mut customers = Vec::with_capacity(n);
    let mut transactions = Vec::new();
    for cid in 0..n {
        let spend = rng.next_range(10.0, 5_000.0);
        let segment = if spend > 2_500.0 {
            "premium"
        } else {
            "standard"
        };
        customers.push(row![cid as i64, segment, (spend * 100.0).round() / 100.0]);
        for _ in 0..rng.next_index(5) + 1 {
            transactions.push(row![
                cid as i64,
                (rng.next_range(1.0, 500.0) * 100.0).round() / 100.0,
                rng.next_i64(0, 365)
            ]);
        }
        kv.put(format!("profile:{cid}"), Value::Float(rng.next_f64()));
        for k in 0..config.clicks_per_customer {
            let t = (cid * config.clicks_per_customer + k) as i64;
            clicks.append("clickstream", t, rng.next_f64());
        }
    }
    let tx_count = transactions.len();
    rdbms.insert("customers", customers).expect("valid rows");
    rdbms
        .insert("transactions", transactions)
        .expect("valid rows");
    rdbms
        .create_index("customers", "cid")
        .expect("column exists");

    let mut catalog = Catalog::new();
    let mut stats = HashMap::new();
    for (name, rows, width) in [
        ("customers", n as f64, 32.0),
        ("transactions", tx_count as f64, 24.0),
    ] {
        let r = TableRef::new("rdbms", name);
        catalog.register(
            r.clone(),
            rdbms.table(name).expect("exists").schema().clone(),
        );
        stats.insert(
            r,
            TableStats {
                rows,
                row_bytes: width,
            },
        );
    }
    let clicks_ref = TableRef::new("clicks", "clickstream");
    catalog.register(clicks_ref.clone(), Schema::empty());
    stats.insert(
        clicks_ref,
        TableStats {
            rows: (n * config.clicks_per_customer) as f64,
            row_bytes: 16.0,
        },
    );

    // Partition declarations: customers range on cid (generated in
    // ascending cid order), transactions colocated by hash on cid.
    catalog
        .set_partition(
            TableRef::new("rdbms", "customers"),
            PartitionSpec::range("cid", Vec::new()),
        )
        .expect("valid spec");
    catalog
        .set_partition(
            TableRef::new("rdbms", "transactions"),
            PartitionSpec::hash("cid", 1),
        )
        .expect("valid spec");

    let mut registry = EngineRegistry::new();
    registry
        .register(EngineId::new("rdbms"), EngineInstance::Relational(rdbms))
        .expect("unique id");
    registry
        .register(EngineId::new("kv"), EngineInstance::KeyValue(kv))
        .expect("unique id");
    registry
        .register(EngineId::new("clicks"), EngineInstance::Timeseries(clicks))
        .expect("unique id");

    Deployment {
        registry,
        catalog,
        stats,
        clinical_names: ClinicalNames::default(),
    }
}

/// Balanced range-partition split points for `shards` shards over a
/// *sorted* value list: the values at even ranks, so each shard holds
/// roughly `len / shards` rows. Fewer than `shards - 1` distinct split
/// points (duplicates, tiny tables) leave some shards empty but never
/// lose rows.
pub fn range_split_points(sorted: &[Value], shards: usize) -> Vec<Value> {
    if shards <= 1 || sorted.is_empty() {
        return Vec::new();
    }
    (1..shards)
        .map(|i| sorted[i * sorted.len() / shards].clone())
        .collect()
}

/// Generates the PipeGen row shape — 4 ints + 3 doubles per row
/// (§III-A.3) — as `(schema, rows)` for migration experiments.
pub fn pipegen_rows(n: usize, seed: u64) -> Result<(Schema, Vec<Row>)> {
    let mut rng = SplitMix64::new(seed);
    let schema = Schema::new(vec![
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("c", DataType::Int),
        ("d", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("z", DataType::Float),
    ]);
    let rows = (0..n)
        .map(|_| {
            row![
                rng.next_i64(i64::MIN / 2, i64::MAX / 2),
                rng.next_i64(-1_000_000, 1_000_000),
                rng.next_i64(0, 100),
                rng.next_i64(0, 2),
                rng.next_gaussian(),
                rng.next_range(-1e6, 1e6),
                rng.next_f64()
            ]
        })
        .collect();
    Ok((schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clinical_deployment_is_complete_and_deterministic() {
        let cfg = ClinicalConfig {
            patients: 40,
            vitals_per_patient: 8,
            seed: 1,
        };
        let a = clinical(&cfg);
        let b = clinical(&cfg);
        assert_eq!(a.registry.len(), 7);
        assert!(a.catalog.resolve("admissions").is_ok());
        assert!(a.catalog.resolve("vitals").is_ok());
        let ra = a.registry.relational(&EngineId::new("db1")).unwrap();
        let rb = b.registry.relational(&EngineId::new("db1")).unwrap();
        assert_eq!(
            ra.table("admissions").unwrap().rows(),
            rb.table("admissions").unwrap().rows()
        );
        assert_eq!(ra.table("admissions").unwrap().len(), 40);
    }

    #[test]
    fn clinical_labels_have_both_classes() {
        let d = clinical(&ClinicalConfig {
            patients: 200,
            vitals_per_patient: 4,
            seed: 3,
        });
        let db1 = d.registry.relational(&EngineId::new("db1")).unwrap();
        let rows = db1.table("admissions").unwrap().rows();
        let positives = rows.iter().filter(|r| r[4].as_f64() == Some(1.0)).count();
        assert!(positives > 20 && positives < 180, "positives {positives}");
    }

    #[test]
    fn recommendation_deployment_spans_three_engines() {
        let d = recommendation(&RecommendationConfig {
            customers: 50,
            clicks_per_customer: 5,
            seed: 2,
        });
        assert_eq!(d.registry.len(), 3);
        assert!(d.catalog.resolve("customers").is_ok());
        assert!(d.catalog.resolve("clickstream").is_ok());
        assert!(d.stats.len() >= 3);
    }

    #[test]
    fn pipegen_shape() {
        let (schema, rows) = pipegen_rows(10, 5).unwrap();
        assert_eq!(schema.arity(), 7);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].byte_size(), 56);
    }
}

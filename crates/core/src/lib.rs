//! Polystore++: the accelerated polystore facade (Fig. 4).
//!
//! [`Polystore`] ties the whole stack together: the EIDE-style builder
//! configures engines, the accelerator fleet and the optimization level;
//! [`Polystore::compile_sql`] / [`Polystore::compile`] /
//! [`Polystore::compile_nlq`] parse heterogeneous programs into the IR;
//! [`Polystore::optimize`] runs L1 rewrites and cost-based placement;
//! [`Polystore::execute`] runs the plan across engines, accelerators and
//! the data migrator, returning results plus the simulated cost report.
//!
//! [`datagen`] builds the synthetic deployments used by the examples,
//! tests and benchmarks: a MIMIC-III-shaped clinical deployment (Fig. 2)
//! and an enterprise recommendation deployment (Fig. 1).
//!
//! # Examples
//!
//! ```
//! use pspp_core::prelude::*;
//!
//! # fn main() -> pspp_common::Result<()> {
//! let deployment = datagen::clinical(&ClinicalConfig { patients: 50, ..Default::default() });
//! let system = Polystore::from_deployment(deployment)
//!     .accelerators(AcceleratorFleet::workstation())
//!     .opt_level(OptLevel::L3)
//!     .build()?;
//! let report = system.run_sql("SELECT pid, age FROM admissions WHERE age >= 65")?;
//! assert!(report.execution.outputs[0].len() > 0);
//! # Ok(())
//! # }
//! ```

pub mod datagen;
pub mod system;

pub use datagen::{ClinicalConfig, Deployment, RecommendationConfig};
pub use system::{Polystore, PolystoreBuilder, RunReport};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::datagen::{self, ClinicalConfig, Deployment, RecommendationConfig};
    pub use crate::system::{Polystore, PolystoreBuilder, RunReport};
    pub use pspp_accel::{AcceleratorFleet, CostLedger, DeviceKind, DeviceProfile, KernelClass};
    pub use pspp_common::{PartitionSpec, ShardId, TableRef};
    pub use pspp_frontend::{Catalog, HeterogeneousProgram, Language};
    pub use pspp_ir::{FusedChain, Operator, Program, SortSpec};
    pub use pspp_migrate::{MigrationPath, Migrator};
    pub use pspp_optimizer::{OptLevel, TableStats};
    pub use pspp_runtime::{Dataset, EngineInstance, EngineRegistry, Executor, ShardedRegistry};
}

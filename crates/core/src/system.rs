//! The [`Polystore`] facade: EIDE configuration, compilation,
//! optimization and execution in one object (Fig. 4).

use pspp_accel::{AcceleratorFleet, CostLedger, CostSummary};
use pspp_common::{PartitionSpec, Result, ShardId, TableRef, Value};
use pspp_frontend::nlq::{self, ClinicalNames};
use pspp_frontend::{sql, Catalog, HeterogeneousProgram};
use pspp_ir::Program;
use pspp_migrate::MigrationPath;
use pspp_optimizer::{optimize_l1, CostModel, OptLevel, PlacementPlan, RewriteReport};
use pspp_runtime::{EngineRegistry, ExecutionReport, Executor};
use pspp_telemetry::{explain_analyze, MetricsRegistry, SpanTree};

use crate::datagen::{self, Deployment};

/// Everything a run produces: results, plan info, and simulated costs.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Executor accounting and outputs.
    pub execution: ExecutionReport,
    /// L1 rules applied (empty at `OptLevel::None`).
    pub rewrites: RewriteReport,
    /// Placement summary when L2+ ran.
    pub placement: Option<PlacementPlan>,
    /// Ledger totals for the run.
    pub costs: CostSummary,
}

impl RunReport {
    /// The effective simulated makespan.
    pub fn makespan(&self) -> f64 {
        self.execution.makespan()
    }

    /// Builds this run's span tree from the executor's traces: one span
    /// per node, task and exchange edge on the simulated clock, with
    /// the critical path marked. `query` names the root span.
    pub fn span_tree(&self, query: &str) -> SpanTree {
        SpanTree::build(query, &self.execution.traces, self.makespan())
    }

    /// Renders this run as an `EXPLAIN ANALYZE` text tree: planned cost
    /// (when L2+ placement ran) side by side with executed cost, per
    /// node, with device picks, host fallbacks and exchange rows.
    pub fn explain_analyze(&self) -> String {
        let planned = self.placement.as_ref().map(PlacementPlan::planned_costs);
        explain_analyze(&self.execution.traces, planned.as_ref(), self.makespan())
    }
}

/// Builder for a [`Polystore`] system.
#[derive(Debug, Clone)]
pub struct PolystoreBuilder {
    deployment: Deployment,
    fleet: AcceleratorFleet,
    opt_level: OptLevel,
    migration_path: MigrationPath,
    parallel: bool,
    colocated_joins: bool,
    exchange: bool,
    shards: usize,
    partitions: Vec<(TableRef, PartitionSpec)>,
    shard_fleets: Vec<(ShardId, AcceleratorFleet)>,
    result_cache: bool,
    materialize_repartitions: bool,
    kernel_fusion: bool,
    fleet_aware_placement: bool,
}

impl PolystoreBuilder {
    /// Attaches an accelerator fleet (default: CPU only).
    pub fn accelerators(mut self, fleet: AcceleratorFleet) -> Self {
        self.fleet = fleet;
        self
    }

    /// Attaches a shard-specific device fleet for heterogeneous
    /// clusters — shards without an override keep the
    /// [`PolystoreBuilder::accelerators`] fleet. The override reaches
    /// both sides of the plan/execute contract: `CostModel::place`
    /// prices (and picks devices for) each shard replica against that
    /// shard's fleet, and the executor resolves every task's device
    /// against the fleet of the shard it runs at, falling back to the
    /// host when the planned device is not attached there.
    pub fn fleet_at(mut self, shard: ShardId, fleet: AcceleratorFleet) -> Self {
        self.shard_fleets.push((shard, fleet));
        self
    }

    /// Deploys every partition-declared table across `n` shard
    /// replicas (default: 1, unsharded). Hash and replicated specs
    /// rescale their shard count; range specs re-derive balanced split
    /// points from the deployment's actual data.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Declares (or overrides) one table's partition spec, in addition
    /// to the specs the deployment's catalog already carries.
    pub fn partition(mut self, table: TableRef, spec: PartitionSpec) -> Self {
        self.partitions.push((table, spec));
        self
    }

    /// Sets the optimization level (default: `L2`).
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Sets the cross-engine migration path (default: binary pipe).
    pub fn migration_path(mut self, path: MigrationPath) -> Self {
        self.migration_path = path;
        self
    }

    /// Enables/disables parallel stage execution (default: on).
    /// Sequential mode is bit-identical and exists for debugging and
    /// determinism checks.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables colocated execution of compatibly-partitioned
    /// joins (default: on). Off reverts to gather-before-join — the
    /// bit-identical baseline E18 compares against.
    pub fn colocated_joins(mut self, on: bool) -> Self {
        self.colocated_joins = on;
        self
    }

    /// Enables/disables the repartitioning exchanges (default: on):
    /// shuffled joins on mismatched partition keys, partition-wise and
    /// partial-aggregate + merge `GroupBy`s. Off reverts those nodes
    /// to the gathered plan — the bit-identical baseline E19 compares
    /// against.
    pub fn exchange(mut self, on: bool) -> Self {
        self.exchange = on;
        self
    }

    /// Enables/disables the service tier's result cache by default
    /// (default: off). The query service and session core inherit this
    /// toggle unless their own config overrides it; when on, repeated
    /// read-only queries whose `(plan digest, engine-state epoch)` key
    /// matches a prior run skip the executor entirely and are billed at
    /// lookup cost.
    pub fn result_cache(mut self, on: bool) -> Self {
        self.result_cache = on;
        self
    }

    /// Enables/disables device-resident kernel fusion in the planner
    /// (default: on): adjacent plan nodes whose device picks land on
    /// the same coprocessor of the same shard run back-to-back on the
    /// device, paying the host↔device (PCIe) transfer once at the
    /// chain head instead of per node. Off restores strictly per-node
    /// offload pricing — the unfused baseline E23 compares against.
    pub fn kernel_fusion(mut self, on: bool) -> Self {
        self.kernel_fusion = on;
        self
    }

    /// Enables fleet-aware shard placement (default: off): a
    /// cost-ranked swap over the registry's replica map that reassigns
    /// the declared per-shard device fleets so kernel-heavy (row-heavy)
    /// shard replicas get the accelerator-bearing fleets. Only the
    /// fleet↔shard assignment moves — no rows are redistributed — so
    /// results are byte-identical with the pass off.
    pub fn fleet_aware_placement(mut self, on: bool) -> Self {
        self.fleet_aware_placement = on;
        self
    }

    /// Enables/disables materialized repartitions (default: off): the
    /// executor persists shuffled layouts whose cumulative exchange
    /// cost exceeds the one-time copy cost into the registry's copy
    /// store, later runs serve the same shuffle edges from the stored
    /// layouts (zero rows routed), and the cost model prices
    /// copy-served edges at zero. Any epoch bump (reshard, rebalance,
    /// DDL) invalidates every stored layout.
    pub fn materialize_repartitions(mut self, on: bool) -> Self {
        self.materialize_repartitions = on;
        self
    }

    /// Finalizes the system, materializing partition specs: every
    /// declared partition with more than one shard redistributes its
    /// table's rows across engine replicas by partition key.
    ///
    /// # Errors
    ///
    /// Returns typed errors for invalid partition specs (unknown
    /// table/engine, kind mismatch, empty shard set, conflicting
    /// replica counts).
    pub fn build(mut self) -> Result<Polystore> {
        // The metrics registry exists before the first reshard so
        // build-time redistribution is counted too.
        let metrics = MetricsRegistry::new();
        self.deployment.registry.set_metrics(metrics.clone());
        // Catalog-declared specs first (BTreeMap order), then explicit
        // builder overrides.
        let mut specs: Vec<(TableRef, PartitionSpec)> = self
            .deployment
            .catalog
            .partitions()
            .map(|(t, s)| (t.clone(), s.clone()))
            .collect();
        for (table, spec) in std::mem::take(&mut self.partitions) {
            match specs.iter_mut().find(|(t, _)| *t == table) {
                Some(existing) => existing.1 = spec,
                None => specs.push((table, spec)),
            }
        }
        for (table, mut spec) in specs {
            if self.shards > 1 {
                spec = scale_spec(spec, self.shards, &self.deployment.registry, &table)?;
            }
            if spec.shard_count() > 1 {
                self.deployment.registry.reshard(&table, spec.clone())?;
                self.deployment.catalog.set_partition(table, spec)?;
            }
        }

        // Fleet-aware shard placement (opt-in): reassign the declared
        // device fleets across the replica map so kernel-heavy
        // (row-heavy) shards get the accelerator-bearing fleets.
        // Shards rank by resident rows (ties to the lower id), fleets
        // by attached-device count (ties keep their original shard
        // order), matched rank-for-rank. Only the fleet<->shard
        // assignment moves — rows stay put — so results are
        // byte-identical with the pass off.
        if self.fleet_aware_placement && !self.shard_fleets.is_empty() {
            let registry = &self.deployment.registry;
            let width = registry
                .list()
                .iter()
                .map(|(id, _)| registry.shard_count(id))
                .max()
                .unwrap_or(1)
                .max(
                    self.shard_fleets
                        .iter()
                        .map(|(s, _)| s.0 as usize + 1)
                        .max()
                        .unwrap_or(1),
                );
            let mut ranked_shards: Vec<(ShardId, usize)> = (0..width as u32)
                .map(|raw| {
                    let shard = ShardId(raw);
                    let rows: usize = registry
                        .list()
                        .iter()
                        .filter_map(|(id, _)| registry.relational_shard(id, shard).ok())
                        .map(|store| store.total_rows())
                        .sum();
                    (shard, rows)
                })
                .collect();
            ranked_shards.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let fleet_for = |shard: ShardId| {
                self.shard_fleets
                    .iter()
                    .find(|(s, _)| *s == shard)
                    .map(|(_, f)| f.clone())
                    .unwrap_or_else(|| self.fleet.clone())
            };
            let mut ranked_fleets: Vec<(ShardId, AcceleratorFleet)> = (0..width as u32)
                .map(|raw| (ShardId(raw), fleet_for(ShardId(raw))))
                .collect();
            ranked_fleets.sort_by(|a, b| {
                b.1.devices()
                    .len()
                    .cmp(&a.1.devices().len())
                    .then(a.0.cmp(&b.0))
            });
            self.shard_fleets = ranked_shards
                .into_iter()
                .zip(ranked_fleets)
                .map(|((shard, _), (_, fleet))| (shard, fleet))
                .collect();
        }

        // Device fleets ride the registry — the deployment-wide
        // default plus any per-shard overrides — and are mirrored into
        // the cost model, so planned and executed device picks come
        // from the same fleets.
        self.deployment
            .registry
            .set_default_fleet(self.fleet.clone());
        let mut shard_fleets = std::collections::BTreeMap::new();
        for (shard, fleet) in std::mem::take(&mut self.shard_fleets) {
            self.deployment.registry.set_fleet_at(shard, fleet.clone());
            shard_fleets.insert(shard, fleet);
        }

        let ledger = CostLedger::new();
        // The cost model sees the materialized partition layout, so
        // L2 placement prices sharded scans and colocated joins at
        // their real scatter width.
        let mut cost_model = CostModel::new(self.fleet.clone(), self.deployment.stats.clone())
            .with_partitions(
                self.deployment
                    .catalog
                    .partitions()
                    .map(|(t, s)| (t.clone(), s.clone()))
                    .collect(),
            )
            .with_colocation(self.colocated_joins)
            .with_exchange(self.exchange)
            .with_fusion(self.kernel_fusion)
            .with_shard_fleets(shard_fleets);
        if self.materialize_repartitions {
            // The model consults the same live copy store the executor
            // feeds, so plans price the copy-served exchanges that run.
            cost_model =
                cost_model.with_repartitions(self.deployment.registry.repartitions().clone());
        }
        Ok(Polystore {
            registry: self.deployment.registry,
            catalog: self.deployment.catalog,
            clinical_names: self.deployment.clinical_names,
            fleet: self.fleet,
            cost_model,
            opt_level: self.opt_level,
            migration_path: self.migration_path,
            parallel: self.parallel,
            colocated_joins: self.colocated_joins,
            exchange: self.exchange,
            result_cache: self.result_cache,
            materialize_repartitions: self.materialize_repartitions,
            ledger,
            metrics,
        })
    }
}

/// Rescales a partition spec to `n` shards: hash/replicated specs
/// change their count, range specs re-derive balanced split points
/// from the partition column's current values (sorted, then split at
/// even ranks — `datagen` distributing rows by partition key).
fn scale_spec(
    spec: PartitionSpec,
    n: usize,
    registry: &EngineRegistry,
    table: &TableRef,
) -> Result<PartitionSpec> {
    Ok(match spec {
        PartitionSpec::Hash { column, .. } => PartitionSpec::hash(column, n as u32),
        PartitionSpec::Replicated { .. } => PartitionSpec::replicated(n as u32),
        range @ PartitionSpec::Range { .. } if range.shard_count() == n => range,
        PartitionSpec::Range { column, .. } => {
            let store = registry.relational(&table.engine)?;
            let t = store.table(&table.name)?;
            let idx = t.schema().require(&column)?;
            let mut values: Vec<Value> = t.rows().iter().map(|r| r[idx].clone()).collect();
            values.sort();
            PartitionSpec::range(column, datagen::range_split_points(&values, n))
        }
    })
}

/// A configured Polystore++ system.
#[derive(Debug, Clone)]
pub struct Polystore {
    registry: EngineRegistry,
    catalog: Catalog,
    clinical_names: ClinicalNames,
    fleet: AcceleratorFleet,
    cost_model: CostModel,
    opt_level: OptLevel,
    migration_path: MigrationPath,
    parallel: bool,
    colocated_joins: bool,
    exchange: bool,
    result_cache: bool,
    materialize_repartitions: bool,
    ledger: CostLedger,
    metrics: MetricsRegistry,
}

impl Polystore {
    /// Starts a builder from a generated [`Deployment`].
    pub fn from_deployment(deployment: Deployment) -> PolystoreBuilder {
        PolystoreBuilder {
            deployment,
            fleet: AcceleratorFleet::cpu_only(),
            opt_level: OptLevel::L2,
            migration_path: MigrationPath::BinaryPipe,
            parallel: true,
            colocated_joins: true,
            exchange: true,
            shards: 1,
            partitions: Vec::new(),
            shard_fleets: Vec::new(),
            result_cache: false,
            materialize_repartitions: false,
            kernel_fusion: true,
            fleet_aware_placement: false,
        }
    }

    /// Alias for [`Polystore::from_deployment`], reading as a builder
    /// entry point.
    pub fn builder() -> PolystoreBuilder {
        Polystore::from_deployment(Deployment {
            registry: EngineRegistry::new(),
            catalog: Catalog::new(),
            stats: std::collections::HashMap::new(),
            clinical_names: ClinicalNames::default(),
        })
    }

    /// The shared simulated-cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The system-wide metrics registry: executor, placer, charger and
    /// reshard instrumentation accumulates here (the service layer adds
    /// its own admission/cache/query series). Clones share storage.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine registry.
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// The accelerator fleet.
    pub fn fleet(&self) -> &AcceleratorFleet {
        &self.fleet
    }

    /// The engine-state invalidation epoch (see
    /// [`ShardedRegistry::epoch`](pspp_runtime::ShardedRegistry::epoch)).
    /// Result and plan caches key entries by this value; any engine
    /// mutation bumps it and orphans every older entry.
    pub fn epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Whether the service tier should default its result cache on
    /// (set via [`PolystoreBuilder::result_cache`]).
    pub fn result_cache(&self) -> bool {
        self.result_cache
    }

    /// Re-partitions a table mid-run, keeping the registry, catalog and
    /// cost model in agreement: rows move to their new shard replicas,
    /// subsequent plans price and scatter against the new layout, and
    /// the engine-state epoch bump orphans every cached plan and result
    /// derived under the old layout.
    ///
    /// Requires `&mut self`, so a shared service (`Arc<Polystore>`)
    /// cannot race this — only an exclusive owner (e.g. the session
    /// core's deterministic event loop) reshards mid-run.
    ///
    /// # Errors
    ///
    /// Propagates the registry's reshard errors (unknown table/engine,
    /// non-relational engine, empty shard set, conflicting replica
    /// counts) and catalog spec validation.
    pub fn reshard(&mut self, table: &TableRef, spec: PartitionSpec) -> Result<()> {
        self.registry.reshard(table, spec.clone())?;
        self.catalog.set_partition(table.clone(), spec.clone())?;
        self.cost_model.set_partition(table.clone(), spec);
        Ok(())
    }

    /// Incrementally rebalances a table to a new layout (the online
    /// elasticity path): only rows whose shard assignment changes
    /// under the new spec move — a hash grow from `w1` to `w2` shards
    /// (with `w1 | w2`) moves about `1 - w1/w2` of the rows, versus
    /// [`Polystore::reshard`]'s full rewrite. Catalog and cost model
    /// follow the registry, the moved bytes are charged to the system
    /// ledger as a `registry.rebalance` transfer over the shard
    /// interconnect, and the epoch bump orphans every cached plan,
    /// result and materialized repartition from the old layout.
    ///
    /// # Errors
    ///
    /// Propagates the registry's rebalance errors (unknown
    /// table/engine, non-relational engine, invalid spec) and catalog
    /// spec validation.
    pub fn rebalance(
        &mut self,
        table: &TableRef,
        spec: PartitionSpec,
    ) -> Result<pspp_runtime::RebalanceReport> {
        let report = self.registry.rebalance(table, spec.clone())?;
        self.catalog.set_partition(table.clone(), spec.clone())?;
        self.cost_model.set_partition(table.clone(), spec);
        self.ledger.post_event(pspp_accel::CostEvent {
            component: "registry.rebalance".into(),
            device: pspp_common::DeviceKind::Cpu,
            kind: pspp_accel::EventKind::Transfer,
            bytes: report.moved_bytes,
            duration: pspp_accel::Interconnect::network_10g().transfer_time(report.moved_bytes),
            energy_j: 0.0,
        });
        Ok(report)
    }

    /// Bumps the engine-state epoch without moving any data —
    /// invalidates every epoch-keyed cache (plans, results,
    /// materialized repartitions). The service tier calls this for
    /// write-shaped statements whose effects the epoch must cover.
    pub fn bump_epoch(&self) {
        self.registry.bump_epoch();
    }

    /// The active optimization level.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Changes the optimization level (used by the Fig. 6 ablation).
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.opt_level = level;
    }

    /// Compiles a SQL query into an (unoptimized) IR program.
    ///
    /// # Errors
    ///
    /// Propagates parse and catalog errors.
    pub fn compile_sql(&self, query: &str) -> Result<Program> {
        sql::parse_to_program(query, &self.catalog)
    }

    /// Compiles a heterogeneous program into the IR.
    ///
    /// # Errors
    ///
    /// Propagates parse/semantic errors from any subprogram.
    pub fn compile(&self, program: &HeterogeneousProgram) -> Result<Program> {
        program.build(&self.catalog)
    }

    /// Compiles a natural-language question (§IV-A.e).
    ///
    /// # Errors
    ///
    /// Returns a parse error listing the supported templates.
    pub fn compile_nlq(&self, question: &str) -> Result<Program> {
        nlq::compile(question, &self.catalog, &self.clinical_names)
    }

    /// Optimizes a program in place according to the configured level.
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors.
    pub fn optimize(
        &self,
        program: &mut Program,
    ) -> Result<(RewriteReport, Option<PlacementPlan>)> {
        self.optimize_at(program, self.opt_level)
    }

    /// Optimizes a program in place at an explicit level, independent of
    /// the configured one. The service layer uses this to honor
    /// per-session optimization settings against a shared system.
    ///
    /// # Errors
    ///
    /// Propagates cost-model errors.
    pub fn optimize_at(
        &self,
        program: &mut Program,
        level: OptLevel,
    ) -> Result<(RewriteReport, Option<PlacementPlan>)> {
        let rewrites = if level.rewrites() {
            optimize_l1(program)
        } else {
            RewriteReport::default()
        };
        let placement = if level.placement() {
            Some(self.cost_model.place(program)?)
        } else {
            None
        };
        Ok((rewrites, placement))
    }

    /// Executes an already-optimized program, posting costs to the
    /// system-wide ledger.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn execute(&self, program: &Program) -> Result<ExecutionReport> {
        self.execute_at(program, self.opt_level, self.ledger.clone())
    }

    /// Executes an already-optimized program with an explicit level and
    /// cost ledger. Concurrent callers (the `pspp-service` query
    /// service) pass a private per-run ledger so simultaneous queries
    /// never interleave cost accounting.
    ///
    /// # Errors
    ///
    /// Propagates executor errors.
    pub fn execute_at(
        &self,
        program: &Program,
        level: OptLevel,
        ledger: CostLedger,
    ) -> Result<ExecutionReport> {
        let executor = Executor::new(self.fleet.clone(), ledger)
            .offload(level.placement())
            .pipelined(level.pipelined())
            .parallel(self.parallel)
            .colocated_joins(self.colocated_joins)
            .exchange(self.exchange)
            .materialize_repartitions(self.materialize_repartitions)
            .migration_path(self.migration_path)
            .with_metrics(self.metrics.clone());
        executor.execute(program, &self.registry)
    }

    /// Compile → optimize → execute a SQL query.
    ///
    /// # Errors
    ///
    /// Propagates compilation, optimization and execution errors.
    pub fn run_sql(&self, query: &str) -> Result<RunReport> {
        let program = self.compile_sql(query)?;
        self.run_program(program)
    }

    /// Compile → optimize → execute a heterogeneous program.
    ///
    /// # Errors
    ///
    /// Propagates compilation, optimization and execution errors.
    pub fn run(&self, program: &HeterogeneousProgram) -> Result<RunReport> {
        let program = self.compile(program)?;
        self.run_program(program)
    }

    /// Compile → optimize → execute a natural-language question.
    ///
    /// # Errors
    ///
    /// Propagates compilation, optimization and execution errors.
    pub fn run_nlq(&self, question: &str) -> Result<RunReport> {
        let program = self.compile_nlq(question)?;
        self.run_program(program)
    }

    /// Optimizes and executes an IR program, collecting the cost report.
    ///
    /// The run executes against a private ledger, so concurrent
    /// `run_*` calls through a shared reference account independently;
    /// the events are then published to [`Polystore::ledger`], which
    /// thus reflects the most recently completed run.
    ///
    /// # Errors
    ///
    /// Propagates optimization and execution errors.
    pub fn run_program(&self, mut program: Program) -> Result<RunReport> {
        let (rewrites, placement) = self.optimize(&mut program)?;
        let run_ledger = CostLedger::new();
        let execution = self.execute_at(&program, self.opt_level, run_ledger.clone())?;
        let costs = run_ledger.total();
        self.ledger.replace_events(run_ledger.events());
        Ok(RunReport {
            execution,
            rewrites,
            placement,
            costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{self, ClinicalConfig, RecommendationConfig};
    use pspp_frontend::Language;

    fn system(level: OptLevel) -> Polystore {
        Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 120,
            vitals_per_patient: 8,
            seed: 11,
        }))
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(level)
        .build()
        .expect("valid config")
    }

    #[test]
    fn sql_round_trip() {
        let s = system(OptLevel::L2);
        let report = s
            .run_sql("SELECT pid, age FROM admissions WHERE age >= 65 ORDER BY age DESC LIMIT 10")
            .unwrap();
        let out = &report.execution.outputs[0];
        assert!(out.len() <= 10);
        assert!(report.rewrites.predicate_pushdowns >= 1);
        assert!(report.costs.events > 0);
    }

    #[test]
    fn federated_join_runs() {
        let s = system(OptLevel::L2);
        let report = s
            .run_sql(
                "SELECT name FROM admissions JOIN db2.patients ON admissions.pid = patients.pid \
                 WHERE age >= 80",
            )
            .unwrap();
        assert!(!report.execution.outputs[0].is_empty());
        assert!(report.execution.migration_seconds > 0.0);
    }

    #[test]
    fn opt_levels_reduce_makespan() {
        let query = "SELECT pid, age FROM admissions WHERE age >= 40 ORDER BY date";
        let mut makespans = Vec::new();
        for level in OptLevel::all() {
            let s = system(level);
            let report = s.run_sql(query).unwrap();
            makespans.push(report.makespan());
        }
        // L3 <= L2 <= L1 <= None (allowing ties).
        assert!(makespans[3] <= makespans[2] + 1e-12);
        assert!(makespans[2] <= makespans[1] + 1e-12);
        assert!(makespans[1] <= makespans[0] + 1e-12);
    }

    #[test]
    fn nlq_clinical_pipeline_trains_a_model() {
        let s = system(OptLevel::L2);
        let report = s
            .run_nlq(
                "Will patients have a long stay at the hospital or short when they exit the ICU?",
            )
            .unwrap();
        // The program output is the trained model dataset.
        assert!(report.execution.outputs[0].try_model().is_ok());
        assert!(report.execution.offloaded > 0);
    }

    fn sharded_system(shards: usize) -> Polystore {
        Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 120,
            vitals_per_patient: 8,
            seed: 11,
        }))
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(OptLevel::L2)
        .shards(shards)
        .build()
        .expect("valid config")
    }

    #[test]
    fn sharded_build_distributes_rows_and_routes_scans() {
        let s = sharded_system(4);
        assert_eq!(
            s.registry().shard_count(&pspp_common::EngineId::new("db1")),
            4
        );
        let spec = s
            .registry()
            .partition(&TableRef::new("db1", "admissions"))
            .expect("partitioned");
        assert_eq!(spec.shard_count(), 4);
        // The catalog reflects the materialized spec too.
        assert_eq!(
            s.catalog().partition(&TableRef::new("db1", "admissions")),
            Some(spec)
        );
        let mut total = 0;
        for shard in 0..4u32 {
            total += s
                .registry()
                .relational_shard(
                    &pspp_common::EngineId::new("db1"),
                    pspp_common::ShardId(shard),
                )
                .unwrap()
                .table("admissions")
                .unwrap()
                .len();
        }
        assert_eq!(total, 120, "no rows lost or duplicated");
    }

    #[test]
    fn sharded_queries_are_bit_identical_and_faster() {
        let queries = [
            "SELECT pid, age FROM admissions WHERE age >= 40 ORDER BY date",
            "SELECT name FROM admissions JOIN db2.patients ON admissions.pid = patients.pid \
             WHERE age >= 65",
            "SELECT count(*) AS n FROM admissions",
        ];
        let flat = sharded_system(1);
        let sharded = sharded_system(4);
        let mut flat_scan_ms = 0.0;
        let mut sharded_scan_ms = 0.0;
        for q in queries {
            let a = flat.run_sql(q).unwrap();
            let b = sharded.run_sql(q).unwrap();
            assert_eq!(a.execution.outputs.len(), b.execution.outputs.len());
            assert!(!a.execution.outputs.is_empty());
            for (x, y) in a.execution.outputs.iter().zip(&b.execution.outputs) {
                assert_eq!(
                    x.try_rows().unwrap(),
                    y.try_rows().unwrap(),
                    "sharded results must be bit-identical for {q}"
                );
            }
            flat_scan_ms += a.makespan();
            sharded_scan_ms += b.makespan();
        }
        assert!(
            sharded_scan_ms < flat_scan_ms,
            "scatter-gather should cut simulated makespan \
             ({sharded_scan_ms} vs {flat_scan_ms})"
        );
    }

    #[test]
    fn resharding_two_tables_on_one_engine_duplicates_nothing() {
        // Regression: the recommendation deployment partitions both
        // rdbms tables; the second reshard must not concatenate the
        // whole-table clones the first reshard's expansion created.
        let flat =
            Polystore::from_deployment(datagen::recommendation(&RecommendationConfig::default()))
                .build()
                .unwrap();
        let sharded =
            Polystore::from_deployment(datagen::recommendation(&RecommendationConfig::default()))
                .shards(2)
                .build()
                .unwrap();
        for q in [
            "SELECT count(*) AS n FROM customers",
            "SELECT count(*) AS n FROM transactions",
        ] {
            assert_eq!(
                flat.run_sql(q).unwrap().execution.outputs[0]
                    .try_rows()
                    .unwrap(),
                sharded.run_sql(q).unwrap().execution.outputs[0]
                    .try_rows()
                    .unwrap(),
                "{q} diverged between flat and 2-shard deployments"
            );
        }
    }

    #[test]
    fn rebalance_grows_a_table_online_and_queries_agree() {
        let mut s = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 400,
            vitals_per_patient: 4,
            seed: 7,
        }))
        .partition(
            TableRef::new("db1", "admissions"),
            PartitionSpec::hash("pid", 2),
        )
        .build()
        .unwrap();
        // pid is unique, so the total order is layout-independent.
        let q = "SELECT pid, age FROM admissions WHERE age >= 40 ORDER BY pid";
        let before = s.run_sql(q).unwrap().execution.outputs[0]
            .try_rows()
            .unwrap()
            .to_vec();
        let epoch_before = s.epoch();

        let report = s
            .rebalance(
                &TableRef::new("db1", "admissions"),
                PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        assert!(report.incremental);
        assert_eq!(report.total_shards, 4);
        // Hash 2 -> 4 grow moves about half the rows (expectation).
        let bound = pspp_common::hash_grow_moved_fraction(2, 4).unwrap();
        assert!(
            (report.moved_fraction() - bound).abs() < 0.1,
            "moved fraction {} far from analytic {bound}",
            report.moved_fraction()
        );
        assert!(report.moved_bytes > 0);
        assert!(s.epoch() > epoch_before, "rebalance bumps the epoch");
        assert!(
            s.ledger()
                .events()
                .iter()
                .any(|e| e.component == "registry.rebalance" && e.bytes == report.moved_bytes),
            "moved bytes charged to the system ledger"
        );
        // Plans against the new layout scatter 4-wide and agree
        // byte-for-byte.
        let after = s.run_sql(q).unwrap();
        assert_eq!(before, after.execution.outputs[0].try_rows().unwrap());
        assert_eq!(
            s.registry()
                .partition(&TableRef::new("db1", "admissions"))
                .map(PartitionSpec::shard_count),
            Some(4)
        );
    }

    #[test]
    fn materialized_repartitions_amortize_the_mismatched_join() {
        // Enough rows that the shuffle exchange pays at width 2.
        let build = || {
            Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
                patients: 1500,
                vitals_per_patient: 2,
                seed: 7,
            }))
            .partition(
                TableRef::new("db1", "admissions"),
                PartitionSpec::hash("pid", 2),
            )
            .partition(
                TableRef::new("db2", "patients"),
                PartitionSpec::hash("name", 2),
            )
        };
        let s = build().materialize_repartitions(true).build().unwrap();
        let plain = build().build().unwrap();
        // Mismatched keys: the join shuffles both sides.
        let q = "SELECT name FROM admissions JOIN db2.patients ON admissions.pid = patients.pid \
                 WHERE age >= 40";
        let first = s.run_sql(q).unwrap();
        assert!(s.registry().repartitions().stats().stores >= 1);
        let second = s.run_sql(q).unwrap();
        let baseline = plain.run_sql(q).unwrap();
        assert!(
            s.registry().repartitions().stats().hits >= 1,
            "second run serves the stored layout"
        );
        assert_eq!(
            first.execution.outputs[0].try_rows().unwrap(),
            second.execution.outputs[0].try_rows().unwrap()
        );
        assert_eq!(
            second.execution.outputs[0].try_rows().unwrap(),
            baseline.execution.outputs[0].try_rows().unwrap(),
            "materialize on/off must agree bit-for-bit"
        );
        assert!(
            second.makespan() < first.makespan(),
            "served exchange must beat the routed one ({} vs {})",
            second.makespan(),
            first.makespan()
        );
    }

    #[test]
    fn explicit_partition_override_wins() {
        let s = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 60,
            vitals_per_patient: 4,
            seed: 5,
        }))
        .partition(
            TableRef::new("db1", "admissions"),
            PartitionSpec::hash("pid", 3),
        )
        .build()
        .unwrap();
        assert_eq!(
            s.registry()
                .partition(&TableRef::new("db1", "admissions"))
                .map(PartitionSpec::shard_count),
            Some(3)
        );
        // Aggregates stay correct over hash shards.
        let r = s.run_sql("SELECT count(*) AS n FROM admissions").unwrap();
        assert_eq!(
            r.execution.outputs[0].try_rows().unwrap()[0][0],
            pspp_common::Value::Int(60)
        );
    }

    /// The acceptance contract of accelerator-aware planning: the
    /// executor *consumes* the plan's per-(node, shard) device picks —
    /// every executed assignment must equal the planned one, and the
    /// pipeline must actually offload somewhere for the comparison to
    /// mean anything.
    #[test]
    fn executed_device_assignments_match_the_placement_plan() {
        let s = system(OptLevel::L2);
        let report = s
            .run_nlq(
                "Will patients have a long stay at the hospital or short when they exit the ICU?",
            )
            .unwrap();
        let placement = report.placement.expect("L2 ran placement");
        let executed = &report.execution.device_assignments;
        assert!(!executed.is_empty());
        for ((node, shard), device) in executed {
            assert_eq!(
                placement.device_picks.get(&(*node, *shard)),
                Some(device),
                "node {node} at {shard} ran on {device:?}, diverging from the plan"
            );
        }
        assert!(
            executed
                .values()
                .any(|d| *d != pspp_common::DeviceKind::Cpu),
            "the clinical pipeline offloads at least its training node"
        );
    }

    /// Heterogeneous fleets (satellite: accelerator at some shards
    /// only) compose with the sharded baselines: no panic when a shard
    /// has no attached device, byte-identical results against the
    /// homogeneous deployment, and planned picks still consumed as-is.
    #[test]
    fn heterogeneous_fleets_compose_with_sharded_baselines() {
        let hetero = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 120,
            vitals_per_patient: 8,
            seed: 11,
        }))
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(OptLevel::L2)
        .shards(2)
        .fleet_at(pspp_common::ShardId(1), AcceleratorFleet::cpu_only())
        .build()
        .expect("heterogeneous build");
        let homo = sharded_system(2);
        for q in [
            "SELECT pid, age FROM admissions WHERE age >= 40 ORDER BY date",
            "SELECT name FROM admissions JOIN db2.patients ON admissions.pid = patients.pid \
             WHERE age >= 65",
            "SELECT count(*) AS n FROM admissions",
        ] {
            let a = homo.run_sql(q).unwrap();
            let b = hetero.run_sql(q).unwrap();
            for (x, y) in a.execution.outputs.iter().zip(&b.execution.outputs) {
                assert_eq!(
                    x.try_rows().unwrap(),
                    y.try_rows().unwrap(),
                    "device heterogeneity changed the bytes of {q}"
                );
            }
            let placement = b.placement.expect("L2 placed");
            for (key, device) in &b.execution.device_assignments {
                assert_eq!(placement.device_picks.get(key), Some(device));
            }
        }
    }

    #[test]
    fn hetero_program_via_builder() {
        let s = system(OptLevel::L2);
        let program = HeterogeneousProgram::builder()
            .subprogram(
                "base",
                Language::Sql,
                "SELECT pid, los, long_stay FROM admissions",
                &[],
            )
            .subprogram(
                "model",
                Language::MlDsl,
                "TRAIN MLP HIDDEN 8 EPOCHS 3 BATCH 32 LR 0.3 LABEL long_stay",
                &["base"],
            )
            .build(s.catalog())
            .unwrap();
        let report = s.run_program(program).unwrap();
        assert!(report.execution.outputs[0].try_model().is_ok());
    }

    fn two_sort_program() -> Program {
        use pspp_ir::{Operator, SortSpec};
        let mut p = Program::new();
        let scan = p.add_source(
            Operator::scan(TableRef::new("db1", "admissions")),
            "sql",
        );
        let by_age = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![scan],
            "sql",
        );
        let by_pid = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "pid".into(),
                    ascending: true,
                }],
            },
            vec![by_age],
            "sql",
        );
        p.mark_output(by_pid);
        p
    }

    /// Fleet-aware shard placement, measured end-to-end: the workstation
    /// fleet is declared at the row-light shard, so without the pass the
    /// gathered big sort (which runs at the row-heavy shard 0) stays on
    /// the host. The opt-in builder pass swaps the fleets rank-for-rank,
    /// the heavy shard gains the accelerators, the sort offloads — and
    /// because only the fleet assignment moves (rows stay put), results
    /// are byte-identical with the pass off.
    #[test]
    fn fleet_aware_placement_accelerates_the_heavy_shard() {
        let build = |aware: bool| {
            Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
                patients: 60_000,
                vitals_per_patient: 1,
                seed: 17,
            }))
            .accelerators(AcceleratorFleet::cpu_only())
            .partition(
                TableRef::new("db1", "admissions"),
                PartitionSpec::range("pid", vec![Value::Int(54_000)]),
            )
            .fleet_at(ShardId(0), AcceleratorFleet::cpu_only())
            .fleet_at(ShardId(1), AcceleratorFleet::workstation())
            .opt_level(OptLevel::L2)
            .fleet_aware_placement(aware)
            .build()
            .expect("valid config")
        };
        let off = build(false);
        let on = build(true);
        // The pass moved the device-bearing fleet to the heavy shard.
        assert_eq!(
            on.registry().fleet_at(ShardId(0)).map(|f| f.devices().len()),
            Some(AcceleratorFleet::workstation().devices().len()),
            "row-heavy shard carries the accelerators after the swap"
        );
        assert_eq!(
            on.registry().fleet_at(ShardId(1)).map(|f| f.devices().len()),
            Some(0)
        );
        assert_eq!(
            off.registry().fleet_at(ShardId(0)).map(|f| f.devices().len()),
            Some(0),
            "without the pass the declared (mis)placement stands"
        );
        let a = off.run_program(two_sort_program()).unwrap();
        let b = on.run_program(two_sort_program()).unwrap();
        assert_eq!(
            a.execution.outputs[0].try_rows().unwrap(),
            b.execution.outputs[0].try_rows().unwrap(),
            "fleet-aware placement must not change result bytes"
        );
        assert!(
            b.makespan() < a.makespan(),
            "accelerating the heavy shard improves the measured makespan \
             ({} vs {})",
            b.makespan(),
            a.makespan()
        );
    }

    /// Kernel fusion end-to-end: back-to-back big sorts fuse into one
    /// device-resident chain; the executor runs exactly the planned
    /// chains (no silent fission), the fused run beats the unfused one,
    /// results stay byte-identical, and the `pspp_fused_chains` counter
    /// survives a Prometheus render/parse round trip.
    #[test]
    fn fused_chains_execute_as_planned_and_export_metrics() {
        let build = |fusion: bool| {
            Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
                patients: 60_000,
                vitals_per_patient: 1,
                seed: 29,
            }))
            .accelerators(AcceleratorFleet::workstation())
            .opt_level(OptLevel::L2)
            .kernel_fusion(fusion)
            .build()
            .expect("valid config")
        };
        let fused = build(true);
        let unfused = build(false);
        let a = fused.run_program(two_sort_program()).unwrap();
        let b = unfused.run_program(two_sort_program()).unwrap();

        let planned = a.placement.as_ref().expect("L2 placed");
        assert!(
            !planned.fused_chains.is_empty(),
            "back-to-back big sorts form a fused chain"
        );
        assert!(planned.fused_chains.iter().all(|c| c.nodes.len() >= 2));
        // Planned chains == executed chains: same membership, same
        // device, and the executor's billed transfer savings match the
        // planner's estimate.
        let executed = &a.execution.fused_chains;
        assert_eq!(executed.len(), planned.fused_chains.len());
        for (p, e) in planned.fused_chains.iter().zip(executed) {
            assert_eq!(p.nodes, e.nodes, "chain membership executed as planned");
            assert_eq!(p.shard, e.shard);
            assert_eq!(p.device, e.device);
            assert!(
                (p.saved_seconds - e.saved_seconds).abs() <= 1e-9,
                "planned savings {} vs executed {}",
                p.saved_seconds,
                e.saved_seconds
            );
        }
        assert!(
            b.placement.as_ref().expect("L2 placed").fused_chains.is_empty()
                && b.execution.fused_chains.is_empty(),
            "fusion off plans and executes no chains"
        );
        assert_eq!(
            a.execution.outputs[0].try_rows().unwrap(),
            b.execution.outputs[0].try_rows().unwrap(),
            "fusion must not change result bytes"
        );
        assert!(
            a.makespan() < b.makespan(),
            "device-resident chain beats per-node PCIe round trips \
             ({} vs {})",
            a.makespan(),
            b.makespan()
        );

        // Prometheus round trip: render the registry, parse it back,
        // and find the fused-chain counter.
        let text = pspp_telemetry::prom::render(&fused.metrics().snapshot());
        let samples = pspp_telemetry::prom::parse(&text).expect("well-formed exposition");
        let fused_total: f64 = samples
            .iter()
            .filter(|s| s.name == "pspp_fused_chains")
            .map(|s| s.value)
            .sum();
        assert!(
            fused_total >= 1.0,
            "fused-chain counter exported: {text}"
        );
    }

    /// Contended-device queueing end-to-end: two same-stage training
    /// tasks target the lone TPU, the loser queues behind the winner in
    /// deterministic slot order, the executed queue wait equals the
    /// planned one, and `pspp_device_queue_seconds` survives a
    /// Prometheus render/parse round trip.
    #[test]
    fn contended_devices_queue_and_export_wait_metrics() {
        use pspp_ir::Operator;
        let s = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 5_000,
            vitals_per_patient: 1,
            seed: 7,
        }))
        .accelerators(
            AcceleratorFleet::workstation()
                .with_capacity(pspp_common::DeviceKind::Tpu, 1)
                .with_capacity(pspp_common::DeviceKind::Gpu, 1)
                .with_capacity(pspp_common::DeviceKind::Fpga, 1),
        )
        .opt_level(OptLevel::L2)
        .build()
        .expect("valid config");
        let mut p = Program::new();
        let scan = p.add_source(
            Operator::scan(TableRef::new("db1", "admissions")),
            "sql",
        );
        let train = |p: &mut Program, input| {
            p.add_node(
                Operator::TrainMlp {
                    label_column: "long_stay".into(),
                    hidden: vec![64],
                    epochs: 4,
                    batch_size: 32,
                    learning_rate: 0.3,
                },
                vec![input],
                "ml",
            )
        };
        let t1 = train(&mut p, scan);
        let t2 = train(&mut p, scan);
        p.mark_output(t1);
        p.mark_output(t2);
        let report = s.run_program(p).unwrap();
        let planned = report.placement.as_ref().expect("L2 placed");
        assert!(
            planned.queue_wait_seconds > 0.0,
            "one train queues behind the other on the lone TPU"
        );
        assert!(
            (report.execution.queue_wait_seconds - planned.queue_wait_seconds).abs() <= 1e-9,
            "executed queue wait {} matches planned {}",
            report.execution.queue_wait_seconds,
            planned.queue_wait_seconds
        );
        let text = pspp_telemetry::prom::render(&s.metrics().snapshot());
        let samples = pspp_telemetry::prom::parse(&text).expect("well-formed exposition");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "pspp_device_queue_seconds_count" && s.value >= 1.0),
            "queue-wait histogram exported: {text}"
        );
    }
}

//! Heap tables with secondary B-tree indexes.

use std::collections::BTreeMap;

use pspp_common::{Result, Row, Schema, Value};

use pspp_common::Predicate;

/// A heap of rows plus secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// column name -> (value -> row positions)
    indexes: BTreeMap<String, BTreeMap<Value, Vec<usize>>>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts one row, maintaining all indexes.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::SchemaMismatch`] on invalid rows.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let pos = self.rows.len();
        for (col, index) in &mut self.indexes {
            let idx = self.schema.require(col)?;
            index.entry(row[idx].clone()).or_default().push(pos);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Builds (or rebuilds) a secondary index on `column`.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::ColumnNotFound`] for unknown columns.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let idx = self.schema.require(column)?;
        let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (pos, row) in self.rows.iter().enumerate() {
            index.entry(row[idx].clone()).or_default().push(pos);
        }
        self.indexes.insert(column.to_owned(), index);
        Ok(())
    }

    /// Whether `column` has a secondary index.
    pub fn has_index(&self, column: &str) -> bool {
        self.indexes.contains_key(column)
    }

    /// Columns carrying a secondary index, in name order.
    pub fn indexed_columns(&self) -> Vec<String> {
        self.indexes.keys().cloned().collect()
    }

    /// Replaces the table's entire row set in one step, revalidating
    /// every row and rebuilding existing indexes over the new
    /// positions. This is the rebalance write path: the *physical*
    /// rebuild is wholesale (row positions shift, so indexes must be
    /// re-pointed anyway), while the caller charges only the
    /// incremental cost of the rows that actually moved.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::SchemaMismatch`] on invalid rows;
    /// the table is unchanged on error.
    pub fn replace_rows(&mut self, rows: Vec<Row>) -> Result<()> {
        for row in &rows {
            self.schema.check_row(row)?;
        }
        self.rows = rows;
        let columns = self.indexed_columns();
        for col in columns {
            self.create_index(&col)?;
        }
        Ok(())
    }

    /// Candidate rows for a predicate: the index-selected subset when the
    /// predicate has usable bounds on an indexed column, otherwise every
    /// row. The boolean reports whether an index was used.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::ColumnNotFound`] if the predicate
    /// references unknown columns at bound-extraction time.
    pub fn candidates(&self, predicate: &Predicate) -> Result<(Vec<&Row>, bool)> {
        if let Some((column, lo, hi)) = predicate.index_bounds() {
            if let Some(index) = self.indexes.get(column) {
                let range: Vec<&Row> = match (lo, hi) {
                    (Some(lo), Some(hi)) => index
                        .range(lo.clone()..=hi.clone())
                        .flat_map(|(_, ps)| ps.iter().map(|&p| &self.rows[p]))
                        .collect(),
                    (Some(lo), None) => index
                        .range(lo.clone()..)
                        .flat_map(|(_, ps)| ps.iter().map(|&p| &self.rows[p]))
                        .collect(),
                    (None, Some(hi)) => index
                        .range(..=hi.clone())
                        .flat_map(|(_, ps)| ps.iter().map(|&p| &self.rows[p]))
                        .collect(),
                    (None, None) => self.rows.iter().collect(),
                };
                return Ok((range, true));
            }
        }
        Ok((self.rows.iter().collect(), false))
    }

    /// Total payload bytes.
    pub fn byte_size(&self) -> u64 {
        self.rows.iter().map(|r| r.byte_size() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![("k", DataType::Int), ("v", DataType::Str)]),
        );
        for i in 0..100 {
            t.insert(row![i as i64, format!("v{i}")]).unwrap();
        }
        t
    }

    #[test]
    fn index_candidates_narrow_range() {
        let mut t = table();
        t.create_index("k").unwrap();
        let p = Predicate::between("k", 10i64, 19i64);
        let (cands, used) = t.candidates(&p).unwrap();
        assert!(used);
        assert_eq!(cands.len(), 10);
    }

    #[test]
    fn no_index_means_full_scan() {
        let t = table();
        let (cands, used) = t.candidates(&Predicate::eq("k", 5i64)).unwrap();
        assert!(!used);
        assert_eq!(cands.len(), 100);
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = table();
        t.create_index("k").unwrap();
        t.insert(row![100i64, "new"]).unwrap();
        let (cands, used) = t.candidates(&Predicate::eq("k", 100i64)).unwrap();
        assert!(used);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0][1], Value::from("new"));
    }

    #[test]
    fn open_ranges() {
        let mut t = table();
        t.create_index("k").unwrap();
        let (ge, _) = t.candidates(&Predicate::ge("k", 95i64)).unwrap();
        assert_eq!(ge.len(), 5);
        let (lt, _) = t.candidates(&Predicate::lt("k", 5i64)).unwrap();
        // `Lt` bounds are inclusive at candidate level; the predicate
        // itself re-filters exactly.
        assert!(lt.len() >= 5 && lt.len() <= 6);
    }

    #[test]
    fn replace_rows_rebuilds_indexes_or_leaves_table_untouched() {
        let mut t = table();
        t.create_index("k").unwrap();
        t.replace_rows(vec![row![7i64, "seven"], row![8i64, "eight"]])
            .unwrap();
        assert_eq!(t.len(), 2);
        let (cands, used) = t.candidates(&Predicate::eq("k", 8i64)).unwrap();
        assert!(used);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0][1], Value::from("eight"));
        // A bad row leaves the previous contents in place.
        assert!(t.replace_rows(vec![row!["oops", "v"]]).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn schema_enforced() {
        let mut t = table();
        assert!(t.insert(row!["oops", "v"]).is_err());
        assert_eq!(t.len(), 100);
    }
}

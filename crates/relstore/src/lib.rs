//! A relational data-processing engine (Postgres-like substrate).
//!
//! One of the paper's native engines: "joins in Postgres" (§I) is the
//! capability a polystore exploits by pushing relational operators here.
//! The engine owns tables, secondary B-tree indexes, and native operators
//! (sequential/index scan, filter, project, hash join, sort-merge join,
//! group-by aggregation, order-by), and posts every operator's simulated
//! CPU cost to a [`CostLedger`].
//!
//! # Examples
//!
//! ```
//! use pspp_relstore::{RelationalStore, Predicate};
//! use pspp_common::{Schema, DataType, row};
//!
//! # fn main() -> pspp_common::Result<()> {
//! let mut db = RelationalStore::new("db1");
//! db.create_table("t", Schema::new(vec![("id", DataType::Int), ("v", DataType::Float)]))?;
//! db.insert("t", vec![row![1i64, 0.5], row![2i64, 1.5]])?;
//! let rows = db.scan("t", &Predicate::gt("v", 1.0), None)?;
//! assert_eq!(rows.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ops;

pub mod table;

pub use ops::{Aggregate, AggregateSpec, JoinKind, SortKey};
pub use pspp_common::Predicate;
pub use table::Table;

use std::collections::BTreeMap;

use pspp_accel::kernels::KernelReport;
use pspp_accel::{CostLedger, DeviceProfile, KernelClass};
use pspp_common::{EngineId, Error, Result, Row, Schema, Value};

/// The relational engine: a named collection of [`Table`]s.
#[derive(Debug, Clone)]
pub struct RelationalStore {
    id: EngineId,
    tables: BTreeMap<String, Table>,
    ledger: CostLedger,
    cpu: DeviceProfile,
}

impl RelationalStore {
    /// Creates an empty store with a private cost ledger.
    pub fn new(id: impl Into<EngineId>) -> Self {
        RelationalStore {
            id: id.into(),
            tables: BTreeMap::new(),
            ledger: CostLedger::new(),
            cpu: DeviceProfile::cpu(),
        }
    }

    /// Attaches a shared cost ledger (the middleware account).
    pub fn with_ledger(mut self, ledger: CostLedger) -> Self {
        self.ledger = ledger;
        self
    }

    /// The engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// The cost ledger this engine posts to.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Creates an empty table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("table {name}")));
        }
        self.tables.insert(name.clone(), Table::new(name, schema));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] if absent.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    /// Table names in this store.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Borrow a table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] if absent.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    /// Inserts rows, validating against the schema and maintaining
    /// indexes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] or [`Error::SchemaMismatch`].
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let t = self.table_mut(table)?;
        let n = rows.len();
        let mut bytes = 0u64;
        for row in rows {
            bytes += row.byte_size() as u64;
            t.insert(row)?;
        }
        // ~20 cycles/row insert bookkeeping + 1 cycle per 8 bytes copied.
        let cycles = n as u64 * 20 + bytes / 8;
        self.charge(
            "relstore.insert",
            KernelClass::FilterProject,
            n as u64,
            bytes,
            cycles,
        );
        Ok(n)
    }

    /// Builds a secondary B-tree index on `column`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] / [`Error::ColumnNotFound`].
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let t = self.table_mut(table)?;
        t.create_index(column)?;
        let rows = t.len() as u64;
        // Index build is a sort: n log n * ~6 cycles.
        let cycles = (rows as f64 * (rows.max(2) as f64).log2() * 6.0).ceil() as u64;
        self.charge(
            "relstore.create_index",
            KernelClass::Sort,
            rows,
            rows * 8,
            cycles,
        );
        Ok(())
    }

    /// Replaces `table`'s rows during an incremental rebalance,
    /// charging only for the `moved` rows that actually changed shard
    /// (row copy + per-row B-tree patch on each index) rather than
    /// the full-rebuild price [`RelationalStore::insert`] +
    /// [`RelationalStore::create_index`] would post. Physically the
    /// heap and indexes are rebuilt (positions shift either way); the
    /// ledger records the incremental work the diff saved.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] or [`Error::SchemaMismatch`].
    pub fn rebalance_table(&mut self, table: &str, rows: Vec<Row>, moved: usize) -> Result<usize> {
        // Moved rows are scattered through the set; bill them at the
        // mean row size.
        let total_bytes: u64 = rows.iter().map(|r| r.byte_size() as u64).sum();
        let moved_bytes = match rows.len() {
            0 => 0,
            len => total_bytes * moved as u64 / len as u64,
        };
        let t = self.table_mut(table)?;
        let total = rows.len();
        let indexes = t.indexed_columns().len() as u64;
        t.replace_rows(rows)?;
        // Moved rows pay the insert bookkeeping + copy price; each
        // index patches `moved` B-tree entries (log n descent each).
        let n = moved as u64;
        let log_n = (total.max(2) as f64).log2();
        let patch = (n as f64 * log_n * 6.0).ceil() as u64 * indexes;
        let cycles = n * 20 + moved_bytes / 8 + patch;
        self.charge(
            "relstore.rebalance",
            KernelClass::HashPartition,
            n,
            moved_bytes,
            cycles,
        );
        Ok(total)
    }

    /// Scans `table`, applying `predicate` and an optional projection.
    ///
    /// Uses an index scan when the predicate's leading conjunct is an
    /// equality or range on an indexed column, otherwise a sequential
    /// scan. Costs are charged accordingly (§III-A.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] / [`Error::ColumnNotFound`].
    pub fn scan(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: Option<&[&str]>,
    ) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let (candidate_rows, index_used) = t.candidates(predicate)?;
        let scanned = candidate_rows.len() as u64;
        let mut out = Vec::new();
        let mut scanned_bytes = 0u64;
        for row in candidate_rows {
            scanned_bytes += row.byte_size() as u64;
            if predicate.eval(t.schema(), row)? {
                out.push(row.clone());
            }
        }
        if let Some(cols) = projection {
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| t.schema().require(c))
                .collect::<Result<_>>()?;
            out = out.iter().map(|r| r.project(&idx)).collect();
        }
        let cycles = if index_used {
            // B-tree descent + candidate fetch.
            (scanned * 40).max(60)
        } else {
            // Sequential: predicate eval (3 cyc/row/core) or memory bound.
            let compute = scanned as f64 * 3.0 / 16.0;
            let mem = scanned_bytes as f64 / self.cpu.mem_bw_bps * self.cpu.clock_hz;
            compute.max(mem).ceil() as u64
        };
        let component = if index_used {
            "relstore.index_scan"
        } else {
            "relstore.seq_scan"
        };
        self.charge(
            component,
            KernelClass::FilterProject,
            scanned,
            scanned_bytes,
            cycles,
        );
        Ok(out)
    }

    /// The schema produced by scanning with `projection`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] / [`Error::ColumnNotFound`].
    pub fn scan_schema(&self, table: &str, projection: Option<&[&str]>) -> Result<Schema> {
        let t = self.table(table)?;
        match projection {
            Some(cols) => t.schema().project(cols),
            None => Ok(t.schema().clone()),
        }
    }

    /// Hash join two tables on equality columns, returning joined rows and
    /// the output schema.
    ///
    /// # Errors
    ///
    /// Propagates lookup and schema errors from the underlying tables.
    pub fn join(
        &self,
        left: &str,
        right: &str,
        left_on: &str,
        right_on: &str,
    ) -> Result<(Schema, Vec<Row>)> {
        let lt = self.table(left)?;
        let rt = self.table(right)?;
        let out = ops::hash_join(
            lt.schema(),
            lt.rows(),
            rt.schema(),
            rt.rows(),
            left_on,
            right_on,
            JoinKind::Inner,
        )?;
        let n = (lt.len() + rt.len()) as u64;
        // Build + probe ≈ 24 cycles/row over 16 cores.
        let cycles = n * 24 / 16;
        self.charge(
            "relstore.hash_join",
            KernelClass::HashPartition,
            n,
            n * 16,
            cycles,
        );
        Ok(out)
    }

    /// Sorts a table's rows by `key` columns (ascending), charging the
    /// native CPU sort model. The table itself is not mutated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] / [`Error::ColumnNotFound`].
    pub fn sort(&self, table: &str, keys: &[SortKey]) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let rows = ops::sort_rows(t.schema(), t.rows().to_vec(), keys)?;
        let n = t.len() as u64;
        let cycles = pspp_accel::kernels::BitonicSorter::cycles(&self.cpu, n);
        self.charge("relstore.sort", KernelClass::Sort, n, n * 8, cycles);
        Ok(rows)
    }

    /// Group-by aggregation over a whole table.
    ///
    /// # Errors
    ///
    /// Propagates schema errors.
    pub fn group_by(
        &self,
        table: &str,
        keys: &[&str],
        aggs: &[AggregateSpec],
    ) -> Result<(Schema, Vec<Row>)> {
        let t = self.table(table)?;
        let out = ops::group_by(t.schema(), t.rows(), keys, aggs)?;
        let n = t.len() as u64;
        self.charge(
            "relstore.group_by",
            KernelClass::Aggregate,
            n,
            n * 16,
            n * 12 / 16,
        );
        Ok(out)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    fn charge(&self, component: &str, kernel: KernelClass, elems: u64, bytes: u64, cycles: u64) {
        KernelReport::charge(
            &self.cpu,
            kernel,
            elems,
            bytes,
            cycles,
            Some(&self.ledger),
            component,
        );
    }
}

/// Convenience: the list of distinct values in a column (used by tests and
/// feature extraction).
pub fn distinct_values(schema: &Schema, rows: &[Row], column: &str) -> Result<Vec<Value>> {
    let idx = schema.require(column)?;
    let mut seen = std::collections::BTreeSet::new();
    for r in rows {
        seen.insert(r[idx].clone());
    }
    Ok(seen.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType};

    fn store_with_data() -> RelationalStore {
        let mut db = RelationalStore::new("db1");
        db.create_table(
            "patients",
            Schema::new(vec![
                ("pid", DataType::Int),
                ("age", DataType::Int),
                ("name", DataType::Str),
            ]),
        )
        .unwrap();
        db.insert(
            "patients",
            vec![
                row![1i64, 70i64, "ada"],
                row![2i64, 45i64, "grace"],
                row![3i64, 81i64, "edsger"],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_scan() {
        let db = store_with_data();
        let rows = db
            .scan("patients", &Predicate::gt("age", 50i64), None)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(db.ledger().len() >= 2); // insert + scan charged
    }

    #[test]
    fn projection_reorders_columns() {
        let db = store_with_data();
        let rows = db
            .scan("patients", &Predicate::True, Some(&["name", "pid"]))
            .unwrap();
        assert_eq!(rows[0], row!["ada", 1i64]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = store_with_data();
        assert!(matches!(
            db.create_table("patients", Schema::empty()),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn index_scan_is_used_and_cheaper() {
        let mut db = RelationalStore::new("db");
        db.create_table(
            "t",
            Schema::new(vec![("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        let rows: Vec<Row> = (0..10_000)
            .map(|i| row![i as i64, (i * 2) as i64])
            .collect();
        db.insert("t", rows).unwrap();
        db.create_index("t", "k").unwrap();
        db.ledger().reset();

        let hit = db.scan("t", &Predicate::eq("k", 5i64), None).unwrap();
        assert_eq!(hit.len(), 1);
        let events = db.ledger().events();
        assert!(events.iter().any(|e| e.component == "relstore.index_scan"));

        db.ledger().reset();
        let all = db.scan("t", &Predicate::gt("v", -1i64), None).unwrap();
        assert_eq!(all.len(), 10_000);
        let events = db.ledger().events();
        assert!(events.iter().any(|e| e.component == "relstore.seq_scan"));
    }

    #[test]
    fn rebalance_table_charges_only_moved_rows() {
        let mut db = store_with_data();
        db.create_index("patients", "pid").unwrap();
        db.ledger().reset();
        let rows = db.table("patients").unwrap().rows().to_vec();
        let total = db.rebalance_table("patients", rows.clone(), 1).unwrap();
        assert_eq!(total, 3);
        let events = db.ledger().events();
        let small = events
            .iter()
            .find(|e| e.component == "relstore.rebalance")
            .expect("rebalance charged")
            .duration;
        db.ledger().reset();
        db.rebalance_table("patients", rows, 3).unwrap();
        let events = db.ledger().events();
        let big = events
            .iter()
            .find(|e| e.component == "relstore.rebalance")
            .unwrap()
            .duration;
        assert!(small < big, "1 moved row must cost less than 3");
        // Index still answers after the rebuild.
        let hit = db
            .scan("patients", &Predicate::eq("pid", 2i64), None)
            .unwrap();
        assert_eq!(hit.len(), 1);
    }

    #[test]
    fn join_two_tables() {
        let mut db = store_with_data();
        db.create_table(
            "admissions",
            Schema::new(vec![("pid", DataType::Int), ("ward", DataType::Str)]),
        )
        .unwrap();
        db.insert(
            "admissions",
            vec![row![1i64, "icu"], row![1i64, "general"], row![3i64, "icu"]],
        )
        .unwrap();
        let (schema, rows) = db.join("patients", "admissions", "pid", "pid").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(schema.arity(), 5);
    }

    #[test]
    fn sort_by_key() {
        let db = store_with_data();
        let rows = db.sort("patients", &[SortKey::desc("age")]).unwrap();
        assert_eq!(rows[0][1], Value::Int(81));
        assert_eq!(rows[2][1], Value::Int(45));
    }

    #[test]
    fn group_by_aggregates() {
        let mut db = RelationalStore::new("db");
        db.create_table(
            "t",
            Schema::new(vec![("g", DataType::Str), ("v", DataType::Int)]),
        )
        .unwrap();
        db.insert(
            "t",
            vec![row!["a", 1i64], row!["a", 3i64], row!["b", 10i64]],
        )
        .unwrap();
        let (schema, rows) = db
            .group_by(
                "t",
                &["g"],
                &[AggregateSpec::new(Aggregate::Sum, "v", "total")],
            )
            .unwrap();
        assert_eq!(schema.names(), vec!["g", "total"]);
        let mut sums: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (r[0].as_str().unwrap().to_owned(), r[1].as_f64().unwrap()))
            .collect();
        sums.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(sums, vec![("a".into(), 4.0), ("b".into(), 10.0)]);
    }

    #[test]
    fn missing_table_errors() {
        let db = RelationalStore::new("db");
        assert!(matches!(
            db.scan("nope", &Predicate::True, None),
            Err(Error::TableNotFound(_))
        ));
    }

    #[test]
    fn distinct() {
        let db = store_with_data();
        let t = db.table("patients").unwrap();
        let vals = distinct_values(t.schema(), t.rows(), "age").unwrap();
        assert_eq!(vals.len(), 3);
    }
}

//! Pure relational-algebra operators over row sets.
//!
//! These are the operators the paper's IR lowers SQL into (§III-A.1:
//! "SQL queries get mapped to projection, hash, sort, group-by, and join
//! operators"). They are pure functions over `(Schema, rows)` so the
//! runtime adapter can execute IR fragments on intermediate data, not
//! just on stored tables.

use std::cmp::Ordering;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pspp_common::{Error, Result, Row, Schema, Value};

use pspp_common::Predicate;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Keep only matching pairs.
    Inner,
    /// Keep all left rows, padding right columns with NULL.
    LeftOuter,
}

/// A sort key: column plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Ascending?
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Row count (column ignored).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Count of non-null values in the column — the partial state a
    /// distributed `Avg` ships to its merge stage.
    CountNonNull,
}

/// An aggregate over one column with an output name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Function.
    pub agg: Aggregate,
    /// Input column (ignored by `Count`).
    pub column: String,
    /// Output column name.
    pub output: String,
}

impl AggregateSpec {
    /// Creates a spec.
    pub fn new(agg: Aggregate, column: impl Into<String>, output: impl Into<String>) -> Self {
        AggregateSpec {
            agg,
            column: column.into(),
            output: output.into(),
        }
    }

    /// `COUNT(*) AS output`.
    pub fn count(output: impl Into<String>) -> Self {
        AggregateSpec::new(Aggregate::Count, "*", output)
    }
}

/// Filters rows by a predicate.
///
/// # Errors
///
/// Propagates predicate evaluation errors (unknown columns).
pub fn filter_rows(schema: &Schema, rows: Vec<Row>, predicate: &Predicate) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if predicate.eval(schema, &row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Projects rows onto named columns, returning the new schema.
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown columns.
pub fn project(schema: &Schema, rows: &[Row], columns: &[&str]) -> Result<(Schema, Vec<Row>)> {
    let out_schema = schema.project(columns)?;
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| schema.require(c))
        .collect::<Result<_>>()?;
    let out = rows.iter().map(|r| r.project(&idx)).collect();
    Ok((out_schema, out))
}

/// Stable multi-key sort.
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown key columns.
pub fn sort_rows(schema: &Schema, mut rows: Vec<Row>, keys: &[SortKey]) -> Result<Vec<Row>> {
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| Ok((schema.require(&k.column)?, k.ascending)))
        .collect::<Result<_>>()?;
    rows.sort_by(|a, b| {
        for &(idx, asc) in &resolved {
            let ord = a[idx].cmp(&b[idx]);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(rows)
}

/// Hash join on single-column equality.
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown join columns.
#[allow(clippy::too_many_arguments)]
pub fn hash_join(
    left_schema: &Schema,
    left: &[Row],
    right_schema: &Schema,
    right: &[Row],
    left_on: &str,
    right_on: &str,
    kind: JoinKind,
) -> Result<(Schema, Vec<Row>)> {
    let li = left_schema.require(left_on)?;
    let ri = right_schema.require(right_on)?;
    let out_schema = left_schema.join(right_schema);

    // Build on the smaller side conceptually; here build on right.
    let mut table: HashMap<&Value, Vec<&Row>> = HashMap::new();
    for r in right {
        if !r[ri].is_null() {
            table.entry(&r[ri]).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    let null_right = Row::from(vec![Value::Null; right_schema.arity()]);
    for l in left {
        match table.get(&l[li]) {
            Some(matches) if !l[li].is_null() => {
                for r in matches {
                    out.push(l.concat(r));
                }
            }
            _ => {
                if kind == JoinKind::LeftOuter {
                    out.push(l.concat(&null_right));
                }
            }
        }
    }
    Ok((out_schema, out))
}

/// Number of inner-join matches each `left` (probe) row produces
/// against `right`, in probe order — the bookkeeping a shuffled hash
/// join's barrier uses to splice per-destination-shard outputs back
/// into the gathered probe order (output rows of probe row `i` form a
/// contiguous chunk of length `counts[i]`). Mirrors [`hash_join`]'s
/// inner semantics exactly, including null keys matching nothing.
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown join columns.
pub fn hash_join_match_counts(
    left_schema: &Schema,
    left: &[Row],
    right_schema: &Schema,
    right: &[Row],
    left_on: &str,
    right_on: &str,
) -> Result<Vec<usize>> {
    let li = left_schema.require(left_on)?;
    let ri = right_schema.require(right_on)?;
    let mut table: HashMap<&Value, usize> = HashMap::new();
    for r in right {
        if !r[ri].is_null() {
            *table.entry(&r[ri]).or_default() += 1;
        }
    }
    Ok(left
        .iter()
        .map(|l| {
            if l[li].is_null() {
                0
            } else {
                table.get(&l[li]).copied().unwrap_or(0)
            }
        })
        .collect())
}

/// Merges per-shard partial-aggregation states back into the final
/// group-by result: `partial_rows` are the per-shard outputs of a
/// [`group_by`] over the *partial* aggregate list (see
/// `pspp_ir::partial_agg_specs` — one column per original aggregate,
/// two for `Avg`), concatenated in shard order; `aggs` are the
/// original aggregates. Groups finalize in first-seen order over the
/// concatenated partials, which equals the first-seen order over the
/// gathered input rows — so for exactly-representable sums (integer
/// columns) the merge is byte-identical to a single-site [`group_by`].
///
/// # Errors
///
/// Returns [`Error::SchemaMismatch`] when the partial schema's arity
/// does not match the aggregate layout or a partial state has the
/// wrong type.
pub fn merge_group_partials(
    partial_schema: &Schema,
    partial_rows: &[Row],
    key_count: usize,
    aggs: &[AggregateSpec],
) -> Result<(Schema, Vec<Row>)> {
    use pspp_common::{DataType, Field};

    let state_width = |a: &AggregateSpec| if a.agg == Aggregate::Avg { 2 } else { 1 };
    let expected = key_count + aggs.iter().map(state_width).sum::<usize>();
    if partial_schema.arity() != expected {
        return Err(Error::SchemaMismatch(format!(
            "partial schema has {} columns, aggregate layout needs {expected}",
            partial_schema.arity()
        )));
    }
    let mut out_fields: Vec<Field> = partial_schema.fields()[..key_count].to_vec();
    for a in aggs {
        let dt = match a.agg {
            Aggregate::Count | Aggregate::CountNonNull => DataType::Int,
            _ => DataType::Float,
        };
        out_fields.push(Field::new(a.output.clone(), dt));
    }
    let out_schema = Schema::from_fields(out_fields);

    /// One aggregate's merge state.
    #[derive(Clone)]
    enum MergeAcc {
        /// Count / CountNonNull: running integer total.
        Ints(i64),
        /// Sum: running float total.
        Floats(f64),
        /// Avg: (sum of partial sums, total non-null count).
        Ratio(f64, i64),
        /// Min/Max: current extremum (None until a non-null partial).
        Extremum(Option<Value>),
    }
    let fresh = |a: &AggregateSpec| match a.agg {
        Aggregate::Count | Aggregate::CountNonNull => MergeAcc::Ints(0),
        Aggregate::Sum => MergeAcc::Floats(0.0),
        Aggregate::Avg => MergeAcc::Ratio(0.0, 0),
        Aggregate::Min | Aggregate::Max => MergeAcc::Extremum(None),
    };
    let int_state = |v: &Value| {
        v.as_i64()
            .ok_or_else(|| Error::SchemaMismatch(format!("expected integer partial, got {v:?}")))
    };
    let float_state = |v: &Value| {
        v.as_f64()
            .ok_or_else(|| Error::SchemaMismatch(format!("expected numeric partial, got {v:?}")))
    };

    let mut groups: HashMap<Vec<Value>, Vec<MergeAcc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in partial_rows {
        let key: Vec<Value> = (0..key_count).map(|i| row[i].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            aggs.iter().map(fresh).collect()
        });
        let mut col = key_count;
        for (a, spec) in aggs.iter().enumerate() {
            match &mut accs[a] {
                MergeAcc::Ints(n) => *n += int_state(&row[col])?,
                MergeAcc::Floats(s) => *s += float_state(&row[col])?,
                MergeAcc::Ratio(s, n) => {
                    *s += float_state(&row[col])?;
                    *n += int_state(&row[col + 1])?;
                }
                MergeAcc::Extremum(m) => {
                    let v = &row[col];
                    if !v.is_null() {
                        let better = match (m.as_ref(), spec.agg) {
                            (None, _) => true,
                            (Some(cur), Aggregate::Min) => v < cur,
                            (Some(cur), _) => v > cur,
                        };
                        if better {
                            *m = Some(v.clone());
                        }
                    }
                }
            }
            col += state_width(spec);
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = &groups[&key];
        let mut row: Vec<Value> = key;
        for acc in accs {
            row.push(match acc {
                MergeAcc::Ints(n) => Value::Int(*n),
                MergeAcc::Floats(s) => Value::Float(*s),
                MergeAcc::Ratio(_, 0) => Value::Null,
                MergeAcc::Ratio(s, n) => Value::Float(s / *n as f64),
                MergeAcc::Extremum(m) => m.clone().unwrap_or(Value::Null),
            });
        }
        out.push(Row::from(row));
    }
    Ok((out_schema, out))
}

/// Sort-merge join on single-column equality: sorts both inputs by the
/// join key, then merges. This is the §III worked example's operator
/// ("DB1 performs a sort-merge on 'Date'").
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown join columns.
pub fn sort_merge_join(
    left_schema: &Schema,
    left: Vec<Row>,
    right_schema: &Schema,
    right: Vec<Row>,
    left_on: &str,
    right_on: &str,
) -> Result<(Schema, Vec<Row>)> {
    let li = left_schema.require(left_on)?;
    let ri = right_schema.require(right_on)?;
    let left = sort_rows(left_schema, left, &[SortKey::asc(left_on)])?;
    let right = sort_rows(right_schema, right, &[SortKey::asc(right_on)])?;
    let out_schema = left_schema.join(right_schema);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lv = &left[i][li];
        let rv = &right[j][ri];
        if lv.is_null() {
            i += 1;
            continue;
        }
        if rv.is_null() {
            j += 1;
            continue;
        }
        match lv.cmp(rv) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Emit the cross product of the equal runs.
                let run_start = j;
                while i < left.len() && left[i][li] == *rv {
                    let mut jj = run_start;
                    while jj < right.len() && right[jj][ri] == *rv {
                        out.push(left[i].concat(&right[jj]));
                        jj += 1;
                    }
                    i += 1;
                }
                j = run_start;
                while j < right.len() && right[j][ri] == *rv {
                    j += 1;
                }
            }
        }
    }
    Ok((out_schema, out))
}

/// Group-by aggregation.
///
/// Output schema is `keys ++ aggregate outputs`; `Count` yields `Int`,
/// the numeric aggregates yield `Float`.
///
/// # Errors
///
/// Returns [`Error::ColumnNotFound`] for unknown columns, or
/// [`Error::SchemaMismatch`] when aggregating a non-numeric column.
pub fn group_by(
    schema: &Schema,
    rows: &[Row],
    keys: &[&str],
    aggs: &[AggregateSpec],
) -> Result<(Schema, Vec<Row>)> {
    use pspp_common::{DataType, Field};

    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| schema.require(k))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            if a.agg == Aggregate::Count {
                Ok(None)
            } else {
                schema.require(&a.column).map(Some)
            }
        })
        .collect::<Result<_>>()?;

    let mut out_fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| schema.fields()[i].clone())
        .collect();
    for a in aggs {
        let dt = match a.agg {
            Aggregate::Count | Aggregate::CountNonNull => DataType::Int,
            _ => DataType::Float,
        };
        out_fields.push(Field::new(a.output.clone(), dt));
    }
    let out_schema = Schema::from_fields(out_fields);

    #[derive(Clone)]
    struct Acc {
        count: i64,
        sums: Vec<f64>,
        mins: Vec<Option<Value>>,
        maxs: Vec<Option<Value>>,
        counts: Vec<i64>,
    }
    let mut groups: HashMap<Vec<Value>, Acc> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();

    for row in rows {
        let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        let acc = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Acc {
                count: 0,
                sums: vec![0.0; aggs.len()],
                mins: vec![None; aggs.len()],
                maxs: vec![None; aggs.len()],
                counts: vec![0; aggs.len()],
            }
        });
        acc.count += 1;
        for (a, (spec, idx)) in aggs.iter().zip(&agg_idx).enumerate() {
            let Some(idx) = idx else { continue };
            let v = &row[*idx];
            if v.is_null() {
                continue;
            }
            match spec.agg {
                Aggregate::Sum | Aggregate::Avg => {
                    let x = v.as_f64().ok_or_else(|| {
                        Error::SchemaMismatch(format!("cannot aggregate {v:?} numerically"))
                    })?;
                    acc.sums[a] += x;
                    acc.counts[a] += 1;
                }
                Aggregate::Min => {
                    if acc.mins[a].as_ref().is_none_or(|m| v < m) {
                        acc.mins[a] = Some(v.clone());
                    }
                }
                Aggregate::Max => {
                    if acc.maxs[a].as_ref().is_none_or(|m| v > m) {
                        acc.maxs[a] = Some(v.clone());
                    }
                }
                Aggregate::CountNonNull => acc.counts[a] += 1,
                Aggregate::Count => {}
            }
        }
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let acc = &groups[&key];
        let mut row: Vec<Value> = key.clone();
        for (a, spec) in aggs.iter().enumerate() {
            row.push(match spec.agg {
                Aggregate::Count => Value::Int(acc.count),
                Aggregate::Sum => Value::Float(acc.sums[a]),
                Aggregate::Avg => {
                    if acc.counts[a] == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sums[a] / acc.counts[a] as f64)
                    }
                }
                Aggregate::Min => acc.mins[a].clone().unwrap_or(Value::Null),
                Aggregate::Max => acc.maxs[a].clone().unwrap_or(Value::Null),
                Aggregate::CountNonNull => Value::Int(acc.counts[a]),
            });
        }
        out.push(Row::from(row));
    }
    Ok((out_schema, out))
}

/// Limits rows to the first `n`.
pub fn limit(rows: Vec<Row>, n: usize) -> Vec<Row> {
    let mut rows = rows;
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType};

    fn lr() -> (Schema, Vec<Row>, Schema, Vec<Row>) {
        let ls = Schema::new(vec![("id", DataType::Int), ("x", DataType::Str)]);
        let rs = Schema::new(vec![("id", DataType::Int), ("y", DataType::Float)]);
        let left = vec![row![1i64, "a"], row![2i64, "b"], row![3i64, "c"]];
        let right = vec![
            row![2i64, 0.2],
            row![3i64, 0.3],
            row![3i64, 0.33],
            row![4i64, 0.4],
        ];
        (ls, left, rs, right)
    }

    #[test]
    fn hash_and_merge_joins_agree() {
        let (ls, l, rs, r) = lr();
        let (_, mut h) = hash_join(&ls, &l, &rs, &r, "id", "id", JoinKind::Inner).unwrap();
        let (_, mut m) = sort_merge_join(&ls, l, &rs, r, "id", "id").unwrap();
        h.sort();
        m.sort();
        assert_eq!(h, m);
        assert_eq!(h.len(), 3); // 2->1 match, 3->2 matches
    }

    #[test]
    fn left_outer_pads_nulls() {
        let (ls, l, rs, r) = lr();
        let (schema, rows) = hash_join(&ls, &l, &rs, &r, "id", "id", JoinKind::LeftOuter).unwrap();
        assert_eq!(rows.len(), 4); // id=1 survives with NULLs
        let unmatched = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert!(unmatched[2].is_null() && unmatched[3].is_null());
        assert_eq!(schema.arity(), 4);
        assert_eq!(schema.names(), vec!["id", "x", "id_r", "y"]);
    }

    #[test]
    fn join_skips_null_keys() {
        let ls = Schema::new(vec![("id", DataType::Int)]);
        let l = vec![Row::from(vec![Value::Null]), row![1i64]];
        let r = vec![Row::from(vec![Value::Null]), row![1i64]];
        let (_, rows) = hash_join(&ls, &l, &ls, &r, "id", "id", JoinKind::Inner).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn multi_key_sort_with_direction() {
        let s = Schema::new(vec![("a", DataType::Int), ("b", DataType::Int)]);
        let rows = vec![row![1i64, 2i64], row![1i64, 1i64], row![0i64, 9i64]];
        let sorted = sort_rows(&s, rows, &[SortKey::asc("a"), SortKey::desc("b")]).unwrap();
        assert_eq!(
            sorted,
            vec![row![0i64, 9i64], row![1i64, 2i64], row![1i64, 1i64]]
        );
    }

    #[test]
    fn group_by_all_aggregates() {
        let s = Schema::new(vec![("g", DataType::Str), ("v", DataType::Int)]);
        let rows = vec![row!["a", 1i64], row!["a", 5i64], row!["b", 2i64]];
        let (schema, out) = group_by(
            &s,
            &rows,
            &["g"],
            &[
                AggregateSpec::count("n"),
                AggregateSpec::new(Aggregate::Sum, "v", "sum"),
                AggregateSpec::new(Aggregate::Avg, "v", "avg"),
                AggregateSpec::new(Aggregate::Min, "v", "min"),
                AggregateSpec::new(Aggregate::Max, "v", "max"),
            ],
        )
        .unwrap();
        assert_eq!(schema.arity(), 6);
        let a = out.iter().find(|r| r[0] == Value::from("a")).unwrap();
        assert_eq!(a[1], Value::Int(2));
        assert_eq!(a[2], Value::Float(6.0));
        assert_eq!(a[3], Value::Float(3.0));
        assert_eq!(a[4], Value::Int(1));
        assert_eq!(a[5], Value::Int(5));
    }

    #[test]
    fn match_counts_mirror_the_join_exactly() {
        let ls = Schema::new(vec![("k", DataType::Int)]);
        let rs = Schema::new(vec![("k", DataType::Int), ("v", DataType::Str)]);
        let left = vec![row![1i64], row![Value::Null], row![2i64], row![3i64]];
        let right = vec![row![2i64, "a"], row![2i64, "b"], row![1i64, "c"]];
        let counts = hash_join_match_counts(&ls, &left, &rs, &right, "k", "k").unwrap();
        assert_eq!(counts, vec![1, 0, 2, 0]);
        // The counts partition the join output into per-probe chunks.
        let (_, out) = hash_join(&ls, &left, &rs, &right, "k", "k", JoinKind::Inner).unwrap();
        assert_eq!(out.len(), counts.iter().sum::<usize>());
        assert!(matches!(
            hash_join_match_counts(&ls, &left, &rs, &right, "nope", "k"),
            Err(Error::ColumnNotFound(_))
        ));
    }

    #[test]
    fn merged_partials_equal_single_site_group_by() {
        // Integer columns: float sums are exact, so the merge must be
        // byte-identical to aggregating the gathered rows directly.
        let s = Schema::new(vec![("g", DataType::Str), ("v", DataType::Int)]);
        let rows = vec![
            row!["b", 4i64],
            row!["a", 1i64],
            row!["a", 5i64],
            row!["b", 2i64],
            row!["c", Value::Null],
        ];
        let aggs = [
            AggregateSpec::count("n"),
            AggregateSpec::new(Aggregate::Sum, "v", "sum"),
            AggregateSpec::new(Aggregate::Avg, "v", "avg"),
            AggregateSpec::new(Aggregate::Min, "v", "min"),
            AggregateSpec::new(Aggregate::Max, "v", "max"),
        ];
        // The partial layout `pspp_ir::partial_agg_specs` produces:
        // count, sum, (sum, non-null count), min, max.
        let partial = [
            AggregateSpec::count("__p0_count"),
            AggregateSpec::new(Aggregate::Sum, "v", "__p1_sum"),
            AggregateSpec::new(Aggregate::Sum, "v", "__p2_sum"),
            AggregateSpec::new(Aggregate::CountNonNull, "v", "__p2_n"),
            AggregateSpec::new(Aggregate::Min, "v", "__p3_min"),
            AggregateSpec::new(Aggregate::Max, "v", "__p4_max"),
        ];
        let (expect_schema, expect) = group_by(&s, &rows, &["g"], &aggs).unwrap();
        // Split rows across two "shards" and aggregate each partially.
        let (shard0, shard1) = rows.split_at(2);
        let (ps, mut partial_rows) = group_by(&s, shard0, &["g"], &partial).unwrap();
        let (_, more) = group_by(&s, shard1, &["g"], &partial).unwrap();
        partial_rows.extend(more);
        let (schema, merged) = merge_group_partials(&ps, &partial_rows, 1, &aggs).unwrap();
        assert_eq!(schema, expect_schema);
        assert_eq!(merged, expect, "merge must reproduce the gathered answer");
    }

    #[test]
    fn merge_partials_arity_mismatch_is_typed() {
        let s = Schema::new(vec![("g", DataType::Str), ("x", DataType::Int)]);
        let err = merge_group_partials(&s, &[], 1, &[AggregateSpec::count("n")]);
        assert!(err.is_ok(), "count layout is one column");
        let err = merge_group_partials(&s, &[], 1, &[AggregateSpec::new(Aggregate::Avg, "x", "a")])
            .unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch(_)), "got {err:?}");
    }

    #[test]
    fn count_non_null_counts_only_values() {
        let s = Schema::new(vec![("g", DataType::Str), ("v", DataType::Int)]);
        let rows = vec![row!["a", 1i64], row!["a", Value::Null], row!["a", 3i64]];
        let (schema, out) = group_by(
            &s,
            &rows,
            &["g"],
            &[
                AggregateSpec::count("rows"),
                AggregateSpec::new(Aggregate::CountNonNull, "v", "vals"),
            ],
        )
        .unwrap();
        assert_eq!(schema.names(), vec!["g", "rows", "vals"]);
        assert_eq!(out[0][1], Value::Int(3));
        assert_eq!(out[0][2], Value::Int(2));
    }

    #[test]
    fn group_by_preserves_first_seen_order() {
        let s = Schema::new(vec![("g", DataType::Str)]);
        let rows = vec![row!["z"], row!["a"], row!["z"], row!["m"]];
        let (_, out) = group_by(&s, &rows, &["g"], &[AggregateSpec::count("n")]).unwrap();
        let order: Vec<&str> = out.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(order, vec!["z", "a", "m"]);
    }

    #[test]
    fn filter_project_limit() {
        let s = Schema::new(vec![("a", DataType::Int), ("b", DataType::Int)]);
        let rows: Vec<Row> = (0..10).map(|i| row![i as i64, (i * i) as i64]).collect();
        let f = filter_rows(&s, rows, &Predicate::ge("a", 5i64)).unwrap();
        assert_eq!(f.len(), 5);
        let (ps, p) = project(&s, &f, &["b"]).unwrap();
        assert_eq!(ps.arity(), 1);
        assert_eq!(p[0], row![25i64]);
        assert_eq!(limit(p, 2).len(), 2);
    }

    #[test]
    fn aggregate_non_numeric_errors() {
        let s = Schema::new(vec![("g", DataType::Str)]);
        let rows = vec![row!["a"]];
        assert!(group_by(
            &s,
            &rows,
            &[],
            &[AggregateSpec::new(Aggregate::Sum, "g", "s")]
        )
        .is_err());
    }
}

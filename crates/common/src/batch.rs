//! Column-major batches: the exchange unit of the data migrator.
//!
//! PipeGen-style binary pipes (§III-A.3) get their speedup from typed,
//! columnar buffers that can be memcpy-serialized. [`Batch`] is that format:
//! one typed [`Column`] per field plus a validity mask for NULLs.

use serde::{Deserialize, Serialize};

use crate::value::{DataType, Value};
use crate::{Error, Result, Row, Schema};

/// A typed column of values with an optional validity (non-null) mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Byte arrays.
    Bytes(Vec<Vec<u8>>),
    /// Timestamps (µs since epoch).
    Timestamp(Vec<i64>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(data_type: DataType) -> Column {
        match data_type {
            DataType::Bool => Column::Bool(vec![]),
            DataType::Int => Column::Int(vec![]),
            DataType::Float => Column::Float(vec![]),
            DataType::Str => Column::Str(vec![]),
            DataType::Bytes => Column::Bytes(vec![]),
            DataType::Timestamp => Column::Timestamp(vec![]),
        }
    }

    /// The column's [`DataType`].
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bytes(_) => DataType::Bytes,
            Column::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bytes(v) => v.len(),
            Column::Timestamp(v) => v.len(),
        }
    }

    /// Whether the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` as a [`Value`]. Ignores validity; see
    /// [`Batch::value`] for the null-aware accessor.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn value(&self, idx: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[idx]),
            Column::Int(v) => Value::Int(v[idx]),
            Column::Float(v) => Value::Float(v[idx]),
            Column::Str(v) => Value::Str(v[idx].clone()),
            Column::Bytes(v) => Value::Bytes(v[idx].clone()),
            Column::Timestamp(v) => Value::Timestamp(v[idx]),
        }
    }

    /// Appends `value`, coercing `Null` to the type's default.
    ///
    /// Returns `false` (and appends nothing) on a type mismatch.
    pub fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(*b),
            (Column::Bool(v), Value::Null) => v.push(false),
            (Column::Int(v), Value::Int(x)) => v.push(*x),
            (Column::Int(v), Value::Null) => v.push(0),
            (Column::Float(v), Value::Float(x)) => v.push(*x),
            (Column::Float(v), Value::Null) => v.push(0.0),
            (Column::Str(v), Value::Str(s)) => v.push(s.clone()),
            (Column::Str(v), Value::Null) => v.push(String::new()),
            (Column::Bytes(v), Value::Bytes(b)) => v.push(b.clone()),
            (Column::Bytes(v), Value::Null) => v.push(Vec::new()),
            (Column::Timestamp(v), Value::Timestamp(t)) => v.push(*t),
            (Column::Timestamp(v), Value::Null) => v.push(0),
            _ => return false,
        }
        true
    }

    /// Payload bytes held by the column.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) | Column::Timestamp(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Str(v) => v.iter().map(String::len).sum(),
            Column::Bytes(v) => v.iter().map(Vec::len).sum(),
        }
    }

    /// Borrow as `&[i64]` when the column is `Int`.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]` when the column is `Float`.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[String]` when the column is `Str`.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// A column-major slice of a table: a schema, typed columns and validity
/// masks.
///
/// # Examples
///
/// ```
/// use pspp_common::{Batch, Schema, DataType, row};
/// let schema = Schema::new(vec![("a", DataType::Int), ("b", DataType::Float)]);
/// let batch = Batch::from_rows(&schema, vec![row![1i64, 0.5], row![2i64, 1.5]]).unwrap();
/// assert_eq!(batch.column(0).as_int().unwrap(), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    schema: Schema,
    columns: Vec<Column>,
    /// `validity[c][r]` is false when row `r`, column `c` is NULL.
    validity: Vec<Vec<bool>>,
    num_rows: usize,
}

impl Batch {
    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        let validity = vec![Vec::new(); schema.arity()];
        Batch {
            schema,
            columns,
            validity,
            num_rows: 0,
        }
    }

    /// Builds a batch from rows, validating each against `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] if any row violates the schema.
    pub fn from_rows(schema: &Schema, rows: Vec<Row>) -> Result<Batch> {
        let mut batch = Batch::empty(schema.clone());
        for row in rows {
            batch.push_row(&row)?;
        }
        Ok(batch)
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] if the row violates the schema.
    pub fn push_row(&mut self, row: &Row) -> Result<()> {
        self.schema.check_row(row)?;
        for (c, value) in row.values().iter().enumerate() {
            if !self.columns[c].push(value) {
                return Err(Error::SchemaMismatch(format!(
                    "column {c} type mismatch for {value:?}"
                )));
            }
            self.validity[c].push(!value.is_null());
        }
        self.num_rows += 1;
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The column at position `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Null-aware accessor for cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, row: usize, col: usize) -> Value {
        if self.validity[col][row] {
            self.columns[col].value(row)
        } else {
            Value::Null
        }
    }

    /// Converts back to row-major form.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.num_rows)
            .map(|r| (0..self.schema.arity()).map(|c| self.value(r, c)).collect())
            .collect()
    }

    /// Total payload bytes across columns (excludes validity overhead).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("w", DataType::Float),
        ])
    }

    #[test]
    fn roundtrip_with_nulls() {
        let rows = vec![
            row![1i64, "a", 0.5],
            Row::from(vec![Value::Int(2), Value::Null, Value::Float(1.5)]),
        ];
        let b = Batch::from_rows(&schema(), rows.clone()).unwrap();
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.value(1, 1), Value::Null);
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = Batch::from_rows(&schema(), vec![row!["x", "a", 0.5]]);
        assert!(err.is_err());
    }

    #[test]
    fn typed_accessors() {
        let b = Batch::from_rows(&schema(), vec![row![1i64, "a", 0.5]]).unwrap();
        assert_eq!(b.column(0).as_int().unwrap(), &[1]);
        assert_eq!(b.column(2).as_float().unwrap(), &[0.5]);
        assert!(b.column(0).as_float().is_none());
        assert_eq!(b.column_by_name("name").unwrap().as_str().unwrap()[0], "a");
    }

    #[test]
    fn byte_size_counts_payload() {
        let b = Batch::from_rows(&schema(), vec![row![1i64, "abc", 0.5]]).unwrap();
        assert_eq!(b.byte_size(), 8 + 3 + 8);
    }

    #[test]
    fn empty_batch() {
        let b = Batch::empty(schema());
        assert!(b.is_empty());
        assert_eq!(b.to_rows(), Vec::<Row>::new());
    }
}

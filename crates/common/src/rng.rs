//! Deterministic random number generation for synthetic data and search.
//!
//! Every simulated number in EXPERIMENTS.md must be reproducible, so all
//! randomness in the workspace flows through explicitly seeded generators.
//! [`SplitMix64`] is a tiny, fast, well-distributed PRNG that also serves to
//! seed `rand`-based generators where distributions are needed.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
///
/// # Examples
///
/// ```
/// use pspp_common::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bias is < 2^-32 for the bounds used in data generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_bounded(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.next_bounded((hi - lo) as u64) as i64
    }

    /// Standard normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator (for parallel streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let xs: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(r.next_bounded(10) < 10);
        }
    }

    #[test]
    fn gaussian_mean_is_near_zero() {
        let mut r = SplitMix64::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(4);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn forks_diverge() {
        let mut r = SplitMix64::new(5);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

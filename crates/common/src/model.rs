//! Data-model and engine-kind tags used for placement and migration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical data model a dataset is expressed in (§II-A of the paper).
///
/// The data migrator's CAST layer converts between these models; the
/// optimizer charges a remodeling cost whenever an edge of the program
/// graph crosses models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataModel {
    /// Tables of rows with a fixed schema.
    Relational,
    /// Opaque values addressed by key.
    KeyValue,
    /// Timestamped points grouped into series.
    Timeseries,
    /// Property graph of vertices and edges.
    Graph,
    /// Dense n-dimensional arrays.
    Array,
    /// Free-text documents.
    Text,
    /// Append-only event streams.
    Stream,
    /// Dense numeric tensors (ML features / weights).
    Tensor,
}

impl DataModel {
    /// All models, in a stable order.
    pub fn all() -> [DataModel; 8] {
        [
            DataModel::Relational,
            DataModel::KeyValue,
            DataModel::Timeseries,
            DataModel::Graph,
            DataModel::Array,
            DataModel::Text,
            DataModel::Stream,
            DataModel::Tensor,
        ]
    }

    /// Relative cost factor of remodeling *into* this model from
    /// `from`, on top of byte movement (1.0 = plain copy).
    ///
    /// These factors encode the paper's observation that "overheads
    /// incurred by data movement and transformation across domains can
    /// quickly exceed benefits of acceleration" (§IV-A.b).
    pub fn remodel_factor(from: DataModel, to: DataModel) -> f64 {
        if from == to {
            return 1.0;
        }
        use DataModel::*;
        match (from, to) {
            // Tabular shapes convert cheaply among themselves.
            (Relational, Timeseries) | (Timeseries, Relational) => 1.3,
            (Relational, KeyValue) | (KeyValue, Relational) => 1.4,
            (Timeseries, KeyValue) | (KeyValue, Timeseries) => 1.5,
            // Feature extraction into tensors is a compute-heavy remodel.
            (Relational, Tensor) | (Timeseries, Tensor) => 2.0,
            (Tensor, Relational) => 1.6,
            (Array, Tensor) | (Tensor, Array) => 1.1,
            // Text must be tokenized / vectorized.
            (Text, Tensor) => 3.0,
            (Text, Relational) => 2.2,
            // Graphs flatten into edge tables and back.
            (Graph, Relational) | (Relational, Graph) => 1.8,
            // Streams materialize into tables or series.
            (Stream, Relational) | (Stream, Timeseries) => 1.2,
            _ => 2.5,
        }
    }
}

impl fmt::Display for DataModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataModel::Relational => "relational",
            DataModel::KeyValue => "keyvalue",
            DataModel::Timeseries => "timeseries",
            DataModel::Graph => "graph",
            DataModel::Array => "array",
            DataModel::Text => "text",
            DataModel::Stream => "stream",
            DataModel::Tensor => "tensor",
        };
        f.write_str(s)
    }
}

/// The kind of data-processing engine hosting a dataset (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Relational store (Postgres-like).
    Relational,
    /// Key/value store (Accumulo-like).
    KeyValue,
    /// Timeseries store (TimescaleDB-like).
    Timeseries,
    /// Graph store (Neo4j-like).
    Graph,
    /// Array store (SciDB-like).
    Array,
    /// Text store (inverted-index search engine).
    Text,
    /// Stream store (Kafka/Saber-like).
    Stream,
    /// ML/DL engine (Tensorflow-like).
    Ml,
}

impl EngineKind {
    /// The native [`DataModel`] of this engine kind.
    pub fn native_model(self) -> DataModel {
        match self {
            EngineKind::Relational => DataModel::Relational,
            EngineKind::KeyValue => DataModel::KeyValue,
            EngineKind::Timeseries => DataModel::Timeseries,
            EngineKind::Graph => DataModel::Graph,
            EngineKind::Array => DataModel::Array,
            EngineKind::Text => DataModel::Text,
            EngineKind::Stream => DataModel::Stream,
            EngineKind::Ml => DataModel::Tensor,
        }
    }

    /// All engine kinds, in a stable order.
    pub fn all() -> [EngineKind; 8] {
        [
            EngineKind::Relational,
            EngineKind::KeyValue,
            EngineKind::Timeseries,
            EngineKind::Graph,
            EngineKind::Array,
            EngineKind::Text,
            EngineKind::Stream,
            EngineKind::Ml,
        ]
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Relational => "relational",
            EngineKind::KeyValue => "keyvalue",
            EngineKind::Timeseries => "timeseries",
            EngineKind::Graph => "graph",
            EngineKind::Array => "array",
            EngineKind::Text => "text",
            EngineKind::Stream => "stream",
            EngineKind::Ml => "ml",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_remodel_is_free() {
        for m in DataModel::all() {
            assert_eq!(DataModel::remodel_factor(m, m), 1.0);
        }
    }

    #[test]
    fn cross_model_remodel_costs_more() {
        for a in DataModel::all() {
            for b in DataModel::all() {
                if a != b {
                    assert!(
                        DataModel::remodel_factor(a, b) > 1.0,
                        "{a} -> {b} should cost more than a copy"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_native_models_are_distinct() {
        let models: std::collections::HashSet<_> = EngineKind::all()
            .into_iter()
            .map(EngineKind::native_model)
            .collect();
        assert_eq!(models.len(), EngineKind::all().len());
    }
}

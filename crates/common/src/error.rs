//! The error type shared across the Polystore++ workspace.

use std::fmt;

/// Errors produced by any Polystore++ component.
///
/// One workspace-wide error enum keeps cross-crate plumbing simple: every
/// crate's fallible API returns [`Result`], and the middleware can surface
/// any failure uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A referenced column does not exist.
    ColumnNotFound(String),
    /// A referenced table / collection / series does not exist.
    TableNotFound(String),
    /// A referenced engine is not registered with the middleware.
    EngineNotFound(String),
    /// A row or value does not match the expected schema.
    SchemaMismatch(String),
    /// Query text failed to parse.
    Parse(String),
    /// A semantically invalid program (type error, unknown reference).
    Semantic(String),
    /// A plan stage could not be executed.
    Execution(String),
    /// Data migration between engines failed.
    Migration(String),
    /// An optimizer invariant was violated or a design space was empty.
    Optimizer(String),
    /// Accelerator configuration or kernel launch failure.
    Accelerator(String),
    /// Invalid configuration supplied by the user.
    Config(String),
    /// Duplicate key or object on creation.
    AlreadyExists(String),
    /// Arbitrary invariant violation with context.
    Invalid(String),
    /// The query service shed load: admission queue full or shut down.
    Overloaded {
        /// Why admission shed the work.
        reason: String,
        /// Suggested client back-off before resubmitting, in simulated
        /// microseconds, derived from the admission queue depth and the
        /// recent mean service time (`0` = no estimate, e.g. shutdown).
        retry_after_micros: u64,
    },
    /// A partition spec or shard route resolved to zero shards.
    EmptyShardSet(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            Error::TableNotFound(t) => write!(f, "table not found: {t}"),
            Error::EngineNotFound(e) => write!(f, "engine not found: {e}"),
            Error::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Semantic(m) => write!(f, "semantic error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Migration(m) => write!(f, "migration error: {m}"),
            Error::Optimizer(m) => write!(f, "optimizer error: {m}"),
            Error::Accelerator(m) => write!(f, "accelerator error: {m}"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Invalid(m) => write!(f, "invalid operation: {m}"),
            Error::Overloaded {
                reason,
                retry_after_micros,
            } => {
                if *retry_after_micros > 0 {
                    write!(
                        f,
                        "service overloaded: {reason} (retry after {retry_after_micros}us)"
                    )
                } else {
                    write!(f, "service overloaded: {reason}")
                }
            }
            Error::EmptyShardSet(m) => write!(f, "empty shard set: {m}"),
        }
    }
}

impl Error {
    /// Build an [`Error::Overloaded`] with a back-off hint.
    ///
    /// `retry_after_micros` is the admission controller's estimate of how
    /// long (in simulated microseconds) the caller should wait before the
    /// queue has drained enough to admit a resubmission; pass `0` when no
    /// estimate exists (e.g. the service is shutting down).
    pub fn overloaded(reason: impl Into<String>, retry_after_micros: u64) -> Self {
        Error::Overloaded {
            reason: reason.into(),
            retry_after_micros,
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = Error::TableNotFound("t".into());
        let s = e.to_string();
        assert!(s.starts_with("table not found"));
        assert!(!s.ends_with('.'));
    }
}

//! The distribution property: how a plan node's output rows are spread
//! across shard replicas, and when two distributions are compatible
//! enough to join without gathering.
//!
//! [`PartitionSpec`] describes how a *stored table* is laid out;
//! [`Distribution`] is the planning-time property that layout induces
//! on every operator's output as it propagates through a program
//! (BigDAWG's islands meet exchange-free planning: a join whose inputs
//! are compatibly partitioned on the join keys executes per shard —
//! *colocated* — instead of gathering both sides to one replica).
//!
//! The property forms a small lattice, ordered by how much layout
//! knowledge the planner retains:
//!
//! ```text
//!        Hashed(k) x N      Ranged(k) x N     (partitioned: one task/shard)
//!               \                /
//!                Replicated x N                (full copy on every shard)
//!                       |
//!                    Single                    (one site; the gather result)
//! ```
//!
//! Filters preserve the property, projections preserve it only while
//! the partition key survives, and every other operator degrades its
//! output to [`Distribution::Single`] via an explicit exchange — a
//! gather, or a [`Distribution::repartition`] shuffle that re-hashes
//! rows to a new key's layout so the consumer can stay per-shard.
//!
//! Width-1 layouts carry no useful placement knowledge (all rows on one
//! shard), so [`Distribution::normalize`] folds them into
//! [`Distribution::Single`]; every planning entry point applies it,
//! which is the single rule deciding when "partitioned" means
//! "multi-shard".

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::partition::{PartitionSpec, ShardId};
use crate::{Result, Row, Schema, Value};

/// How one plan node's output rows are distributed across shard
/// replicas.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum Distribution {
    /// All rows live at one site (unsharded data, or the result of an
    /// explicit gather).
    #[default]
    Single,
    /// Every shard holds a full copy of the rows; any one replica can
    /// serve a read, and any shard of a partitioned partner can join
    /// against its local copy (broadcast).
    Replicated {
        /// Number of shard replicas holding a copy.
        shards: u32,
    },
    /// Rows are hash-partitioned on `column` across `shards` shards
    /// (the layout a [`PartitionSpec::Hash`] table induces).
    Hashed {
        /// Partition key column.
        column: String,
        /// Number of shard replicas.
        shards: u32,
    },
    /// Rows are range-partitioned on `column` by the given ascending
    /// split points (the layout a [`PartitionSpec::Range`] table
    /// induces). Two ranged distributions are compatible only when
    /// their boundaries are identical.
    Ranged {
        /// Partition key column.
        column: String,
        /// Ascending split points (`boundaries.len() + 1` shards).
        boundaries: Vec<Value>,
    },
}

/// The outcome of planning a join over two distributed inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinDistribution {
    /// The inputs' shard layouts align on the join keys: the join
    /// executes as one task per shard (build + probe on that shard's
    /// rows) and its output keeps `output` as its distribution.
    Colocated {
        /// Distribution of the colocated join's output.
        output: Distribution,
    },
    /// The layouts do not align; the planner must insert an explicit
    /// gather of the partitioned inputs before the join runs at one
    /// site.
    Gather,
}

impl Distribution {
    /// The distribution a stored table's partition spec induces on a
    /// full scan of that table.
    pub fn from_spec(spec: &PartitionSpec) -> Self {
        match spec {
            PartitionSpec::Hash { column, shards } => Distribution::Hashed {
                column: column.clone(),
                shards: *shards,
            },
            PartitionSpec::Range { column, boundaries } => Distribution::Ranged {
                column: column.clone(),
                boundaries: boundaries.clone(),
            },
            PartitionSpec::Replicated { shards } => Distribution::Replicated { shards: *shards },
        }
    }

    /// The target layout of an exchange that re-hashes rows on `key`
    /// across `width` shards — the shuffle destination a repartitioning
    /// exchange routes into. Normalized: a width-1 target is
    /// [`Distribution::Single`] (shuffling everything to one shard is a
    /// gather).
    pub fn repartition(key: impl Into<String>, width: u32) -> Distribution {
        Distribution::Hashed {
            column: key.into(),
            shards: width,
        }
        .normalize()
    }

    /// The unified width-1 rule: a hashed or ranged layout spanning a
    /// single shard plans exactly like unsharded data — one task, no
    /// partial retention, no colocation bookkeeping — so it folds to
    /// [`Distribution::Single`]. Multi-shard layouts (and replicated
    /// copies, whose replica count still matters for broadcasts) pass
    /// through unchanged.
    pub fn normalize(self) -> Distribution {
        match &self {
            Distribution::Hashed { shards, .. } if *shards <= 1 => Distribution::Single,
            Distribution::Ranged { boundaries, .. } if boundaries.is_empty() => {
                Distribution::Single
            }
            _ => self,
        }
    }

    /// The deterministic row-routing rule of a repartitioning exchange:
    /// the destination-shard bucket each of `rows` lands in under this
    /// layout, as per-shard index lists (stable FNV-1a hash for
    /// [`Distribution::Hashed`], boundary search for
    /// [`Distribution::Ranged`] — the same routing stored tables use).
    /// Within each bucket, indices stay in input order, so splicing
    /// buckets in (source order, destination shard) order is
    /// reproducible bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Invalid`] for layouts without a routing
    /// rule ([`Single`] and [`Replicated`] rows are not routed) and
    /// [`crate::Error::ColumnNotFound`] when the key column is missing.
    ///
    /// [`Single`]: Distribution::Single
    /// [`Replicated`]: Distribution::Replicated
    pub fn route_indices(&self, schema: &Schema, rows: &[Row]) -> Result<Vec<Vec<usize>>> {
        let spec = match self {
            Distribution::Hashed { column, shards } => PartitionSpec::hash(column.clone(), *shards),
            Distribution::Ranged { column, boundaries } => {
                PartitionSpec::range(column.clone(), boundaries.clone())
            }
            other => {
                return Err(crate::Error::Invalid(format!(
                    "distribution {other} has no row-routing rule"
                )))
            }
        };
        spec.validate()?;
        let idx = schema.require(spec.partition_column().expect("hash/range specs are keyed"))?;
        let mut buckets: Vec<Vec<usize>> = (0..self.shard_count()).map(|_| Vec::new()).collect();
        for (i, row) in rows.iter().enumerate() {
            let shard = spec.shard_for_value(&row[idx])?;
            buckets[shard.index()].push(i);
        }
        Ok(buckets)
    }

    /// Number of shard replicas the rows span (1 for [`Single`]).
    ///
    /// [`Single`]: Distribution::Single
    pub fn shard_count(&self) -> usize {
        match self {
            Distribution::Single => 1,
            Distribution::Replicated { shards } | Distribution::Hashed { shards, .. } => {
                *shards as usize
            }
            Distribution::Ranged { boundaries, .. } => boundaries.len() + 1,
        }
    }

    /// The shard tasks a node with this output distribution fans out
    /// into, in gather (merge) order: every shard for partitioned
    /// distributions, a single shard-0 task otherwise (replicated
    /// reads are served by one replica). A zero-shard replicated
    /// layout yields the empty set, which spec validation rejects as
    /// [`crate::Error::EmptyShardSet`].
    pub fn scatter(&self) -> Vec<ShardId> {
        match self {
            Distribution::Single => vec![ShardId::ZERO],
            Distribution::Replicated { shards } if *shards > 0 => vec![ShardId::ZERO],
            _ => (0..self.shard_count() as u32).map(ShardId).collect(),
        }
    }

    /// The partition key column, when the distribution has one.
    pub fn key(&self) -> Option<&str> {
        match self {
            Distribution::Hashed { column, .. } | Distribution::Ranged { column, .. } => {
                Some(column)
            }
            _ => None,
        }
    }

    /// Whether rows are genuinely split across shards (hashed or
    /// ranged) — the distributions whose per-shard partials a
    /// colocated consumer reads.
    pub fn is_partitioned(&self) -> bool {
        matches!(
            self,
            Distribution::Hashed { .. } | Distribution::Ranged { .. }
        )
    }

    /// The distribution after projecting to `columns`: partitioned
    /// distributions survive only while the partition key is kept
    /// (a re-keying projection degrades to [`Distribution::Single`] —
    /// the rows are still physically split, but no downstream join can
    /// rely on the dropped key, so the planner gathers). Replicated
    /// and single inputs are unaffected.
    pub fn after_projection(&self, columns: &[String]) -> Distribution {
        match self.key() {
            Some(key) if columns.iter().any(|c| c == key) => self.clone(),
            Some(_) => Distribution::Single,
            None => self.clone(),
        }
    }

    /// Plans a hash-join over inputs distributed as `left`/`right`,
    /// joining `left_on = right_on`.
    ///
    /// Colocation rules:
    ///
    /// * `Hashed(left_on) x N` ⋈ `Hashed(right_on) x N` — equal shard
    ///   counts and keys matching the join keys: matching rows share a
    ///   hash, hence a shard. Output stays `Hashed(left_on) x N`.
    /// * `Ranged(left_on, B)` ⋈ `Ranged(right_on, B)` — identical
    ///   boundaries: matching keys land in the same range slot. Output
    ///   stays `Ranged(left_on, B)`.
    /// * partitioned-on-`left_on` ⋈ `Replicated` — broadcast join: any
    ///   hashed or ranged probe side is colocatable with a replicated
    ///   partner, because every shard task can build against a full
    ///   copy. Output keeps the probe side's distribution.
    ///
    /// The broadcast rule is asymmetric by design: the executor's hash
    /// join probes *left* rows in input order, so a partitioned left
    /// against a replicated right gathers bit-identically (output
    /// order is the left gather order). A replicated *left* against a
    /// partitioned right would emit output grouped by the right side's
    /// shards — a different row order than the gathered plan — so the
    /// planner gathers instead. Never a silent reorder, never a wrong
    /// answer.
    pub fn join(
        left: &Distribution,
        left_on: &str,
        right: &Distribution,
        right_on: &str,
    ) -> JoinDistribution {
        use Distribution::{Hashed, Ranged, Replicated};
        match (left, right) {
            (
                Hashed {
                    column: lc,
                    shards: ln,
                },
                Hashed {
                    column: rc,
                    shards: rn,
                },
            ) if lc == left_on && rc == right_on && ln == rn => JoinDistribution::Colocated {
                output: left.clone(),
            },
            (
                Ranged {
                    column: lc,
                    boundaries: lb,
                },
                Ranged {
                    column: rc,
                    boundaries: rb,
                },
            ) if lc == left_on && rc == right_on && lb == rb => JoinDistribution::Colocated {
                output: left.clone(),
            },
            (partitioned, Replicated { .. })
                if partitioned.is_partitioned() && partitioned.key() == Some(left_on) =>
            {
                JoinDistribution::Colocated {
                    output: partitioned.clone(),
                }
            }
            _ => JoinDistribution::Gather,
        }
    }
}

impl From<&PartitionSpec> for Distribution {
    fn from(spec: &PartitionSpec) -> Self {
        Distribution::from_spec(spec)
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Single => write!(f, "single"),
            Distribution::Replicated { shards } => write!(f, "replicated x {shards}"),
            Distribution::Hashed { column, shards } => write!(f, "hashed({column}) x {shards}"),
            Distribution::Ranged { column, boundaries } => {
                write!(f, "ranged({column}) x {}", boundaries.len() + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashed(column: &str, shards: u32) -> Distribution {
        Distribution::Hashed {
            column: column.into(),
            shards,
        }
    }

    fn ranged(column: &str, boundaries: Vec<Value>) -> Distribution {
        Distribution::Ranged {
            column: column.into(),
            boundaries,
        }
    }

    #[test]
    fn spec_induces_distribution() {
        assert_eq!(
            Distribution::from_spec(&PartitionSpec::hash("pid", 4)),
            hashed("pid", 4)
        );
        assert_eq!(
            Distribution::from(&PartitionSpec::replicated(3)),
            Distribution::Replicated { shards: 3 }
        );
        let spec = PartitionSpec::range("pid", vec![Value::Int(5)]);
        let d = Distribution::from_spec(&spec);
        assert_eq!(d.shard_count(), 2);
        assert_eq!(d.key(), Some("pid"));
    }

    #[test]
    fn scatter_fans_partitioned_and_serves_replicated_from_one() {
        assert_eq!(
            hashed("k", 3).scatter(),
            vec![ShardId(0), ShardId(1), ShardId(2)]
        );
        assert_eq!(
            Distribution::Replicated { shards: 3 }.scatter(),
            vec![ShardId::ZERO]
        );
        assert_eq!(Distribution::Single.scatter(), vec![ShardId::ZERO]);
    }

    #[test]
    fn matching_hash_layouts_colocate() {
        let out = Distribution::join(&hashed("pid", 4), "pid", &hashed("pid", 4), "pid");
        assert_eq!(
            out,
            JoinDistribution::Colocated {
                output: hashed("pid", 4)
            }
        );
        // Key names may differ between the two sides, as long as each
        // matches its own join key.
        let out = Distribution::join(&hashed("pid", 2), "pid", &hashed("patient", 2), "patient");
        assert!(matches!(out, JoinDistribution::Colocated { .. }));
    }

    #[test]
    fn mismatched_hash_layouts_gather() {
        // Different shard counts.
        assert_eq!(
            Distribution::join(&hashed("pid", 4), "pid", &hashed("pid", 2), "pid"),
            JoinDistribution::Gather
        );
        // Partitioned on a column other than the join key.
        assert_eq!(
            Distribution::join(&hashed("age", 4), "pid", &hashed("pid", 4), "pid"),
            JoinDistribution::Gather
        );
        // Hash x range never aligns.
        assert_eq!(
            Distribution::join(
                &hashed("pid", 2),
                "pid",
                &ranged("pid", vec![Value::Int(5)]),
                "pid"
            ),
            JoinDistribution::Gather
        );
    }

    #[test]
    fn equal_range_boundaries_colocate_unequal_gather() {
        let b = vec![Value::Int(10), Value::Int(20)];
        assert!(matches!(
            Distribution::join(&ranged("pid", b.clone()), "pid", &ranged("pid", b), "pid"),
            JoinDistribution::Colocated { .. }
        ));
        assert_eq!(
            Distribution::join(
                &ranged("pid", vec![Value::Int(10)]),
                "pid",
                &ranged("pid", vec![Value::Int(11)]),
                "pid"
            ),
            JoinDistribution::Gather
        );
    }

    #[test]
    fn replicated_broadcasts_against_any_partitioned_probe_side() {
        // The satellite regression: a replicated table is colocatable
        // with any hashed partner, whatever the partner's shard count.
        for shards in [1u32, 2, 8] {
            let out = Distribution::join(
                &hashed("pid", shards),
                "pid",
                &Distribution::Replicated { shards: 3 },
                "pid",
            );
            assert_eq!(
                out,
                JoinDistribution::Colocated {
                    output: hashed("pid", shards)
                },
                "broadcast must colocate at {shards} shards"
            );
        }
        // Ranged probe sides broadcast too.
        assert!(matches!(
            Distribution::join(
                &ranged("pid", vec![Value::Int(5)]),
                "pid",
                &Distribution::Replicated { shards: 2 },
                "pid"
            ),
            JoinDistribution::Colocated { .. }
        ));
        // Replicated on the *left* gathers: the probe side drives the
        // output row order, so broadcasting it would reorder.
        assert_eq!(
            Distribution::join(
                &Distribution::Replicated { shards: 2 },
                "pid",
                &hashed("pid", 2),
                "pid"
            ),
            JoinDistribution::Gather
        );
        // Replicated x replicated is a single-site join already.
        assert_eq!(
            Distribution::join(
                &Distribution::Replicated { shards: 2 },
                "pid",
                &Distribution::Replicated { shards: 2 },
                "pid"
            ),
            JoinDistribution::Gather
        );
    }

    #[test]
    fn single_inputs_always_gather() {
        assert_eq!(
            Distribution::join(&Distribution::Single, "pid", &hashed("pid", 2), "pid"),
            JoinDistribution::Gather
        );
        assert_eq!(
            Distribution::join(&hashed("pid", 2), "pid", &Distribution::Single, "pid"),
            JoinDistribution::Gather
        );
    }

    #[test]
    fn projection_preserves_while_key_survives() {
        let d = hashed("pid", 4);
        assert_eq!(
            d.after_projection(&["pid".into(), "age".into()]),
            hashed("pid", 4)
        );
        // Re-keying projection degrades to single.
        assert_eq!(d.after_projection(&["age".into()]), Distribution::Single);
        // Keyless distributions are unaffected.
        assert_eq!(
            Distribution::Replicated { shards: 2 }.after_projection(&["age".into()]),
            Distribution::Replicated { shards: 2 }
        );
        assert_eq!(
            Distribution::Single.after_projection(&["age".into()]),
            Distribution::Single
        );
    }

    #[test]
    fn repartition_targets_normalize_width_one_to_single() {
        assert_eq!(Distribution::repartition("pid", 4), hashed("pid", 4));
        assert_eq!(Distribution::repartition("pid", 1), Distribution::Single);
        assert_eq!(Distribution::repartition("pid", 0), Distribution::Single);
        // The same rule folds width-1 stored layouts.
        assert_eq!(hashed("pid", 1).normalize(), Distribution::Single);
        assert_eq!(ranged("pid", vec![]).normalize(), Distribution::Single);
        assert_eq!(hashed("pid", 2).normalize(), hashed("pid", 2));
        assert_eq!(
            Distribution::Replicated { shards: 1 }.normalize(),
            Distribution::Replicated { shards: 1 },
            "replica counts still matter for broadcasts"
        );
    }

    #[test]
    fn route_indices_is_a_stable_partition_of_the_input() {
        use crate::{row, DataType, Schema};
        let schema = Schema::new(vec![("k", DataType::Int), ("v", DataType::Str)]);
        let rows: Vec<crate::Row> = (0..50).map(|i| row![i as i64, format!("r{i}")]).collect();
        let dist = Distribution::repartition("k", 4);
        let a = dist.route_indices(&schema, &rows).unwrap();
        let b = dist.route_indices(&schema, &rows).unwrap();
        assert_eq!(a, b, "routing must be deterministic");
        assert_eq!(a.len(), 4);
        let mut flat: Vec<usize> = a.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, (0..50).collect::<Vec<_>>(), "a true partition");
        for bucket in &a {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]), "input order kept");
        }
        // The routing agrees with the stored-table rule: the same rows
        // distributed by the equivalent PartitionSpec land identically.
        let spec = PartitionSpec::hash("k", 4);
        let stored = spec.distribute(&schema, &rows).unwrap();
        for (bucket, rows_in_shard) in a.iter().zip(&stored) {
            let routed: Vec<_> = bucket.iter().map(|&i| rows[i].clone()).collect();
            assert_eq!(&routed, rows_in_shard);
        }
    }

    #[test]
    fn route_indices_rejects_unrouteable_layouts() {
        use crate::{DataType, Schema};
        let schema = Schema::new(vec![("k", DataType::Int)]);
        assert!(matches!(
            Distribution::Single.route_indices(&schema, &[]),
            Err(crate::Error::Invalid(_))
        ));
        assert!(matches!(
            Distribution::Replicated { shards: 2 }.route_indices(&schema, &[]),
            Err(crate::Error::Invalid(_))
        ));
        assert!(matches!(
            hashed("nope", 2).route_indices(&schema, &[]),
            Err(crate::Error::ColumnNotFound(_))
        ));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Distribution::Single.to_string(), "single");
        assert_eq!(hashed("pid", 4).to_string(), "hashed(pid) x 4");
        assert_eq!(
            ranged("pid", vec![Value::Int(1)]).to_string(),
            "ranged(pid) x 2"
        );
        assert_eq!(
            Distribution::Replicated { shards: 2 }.to_string(),
            "replicated x 2"
        );
    }
}

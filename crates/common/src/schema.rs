//! Column schemas shared by the relational model and the CAST layer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::DataType;
use crate::{Error, Result, Row};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a [`Schema`].
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL field.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)?;
        if !self.nullable {
            f.write_str(" not null")?;
        }
        Ok(())
    }
}

/// An ordered list of [`Field`]s describing a record shape.
///
/// # Examples
///
/// ```
/// use pspp_common::{Schema, DataType};
/// let s = Schema::new(vec![("id", DataType::Int), ("name", DataType::Str)]);
/// assert_eq!(s.index_of("name"), Some(1));
/// assert_eq!(s.arity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema of nullable fields from `(name, type)` pairs.
    pub fn new<N: Into<String>>(fields: Vec<(N, DataType)>) -> Self {
        Schema {
            fields: fields.into_iter().map(|(n, t)| Field::new(n, t)).collect(),
        }
    }

    /// Builds a schema from explicit [`Field`]s.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// An empty schema (zero columns).
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of column `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field named `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Position of column `name`, or a [`Error::ColumnNotFound`].
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::ColumnNotFound(name.to_owned()))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema keeping only the named columns, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] if any name is absent.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let idx = self.require(n)?;
            fields.push(self.fields[idx].clone());
        }
        Ok(Schema { fields })
    }

    /// Concatenates two schemas (e.g. for join output). Duplicate names on
    /// the right side are suffixed with `_r`.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let mut f = f.clone();
            if self.index_of(&f.name).is_some() {
                f.name = format!("{}_r", f.name);
            }
            fields.push(f);
        }
        Schema { fields }
    }

    /// Validates `row` against this schema (arity, types, nullability).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] describing the first violation.
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.arity() {
            return Err(Error::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.arity(),
                row.len()
            )));
        }
        for (field, value) in self.fields.iter().zip(row.values()) {
            if value.is_null() {
                if !field.nullable {
                    return Err(Error::SchemaMismatch(format!(
                        "null in not-null column {}",
                        field.name
                    )));
                }
                continue;
            }
            if value.data_type() != Some(field.data_type) {
                return Err(Error::SchemaMismatch(format!(
                    "column {} expects {}, got {:?}",
                    field.name, field.data_type, value
                )));
            }
        }
        Ok(())
    }

    /// Bytes per row for fixed-width columns, plus an estimate for varlen.
    ///
    /// Used by cost models before any data exists.
    pub fn estimated_row_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.data_type.fixed_width().unwrap_or(24))
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str(")")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample() -> Schema {
        Schema::new(vec![
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.index_of("score"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("nope").is_err());
        assert_eq!(s.field("name").unwrap().data_type, DataType::Str);
    }

    #[test]
    fn project_keeps_order() {
        let s = sample().project(&["score", "id"]).unwrap();
        assert_eq!(s.names(), vec!["score", "id"]);
    }

    #[test]
    fn join_renames_duplicates() {
        let left = sample();
        let right = Schema::new(vec![("id", DataType::Int), ("city", DataType::Str)]);
        let j = left.join(&right);
        assert_eq!(j.names(), vec!["id", "name", "score", "id_r", "city"]);
    }

    #[test]
    fn check_row_catches_violations() {
        let s = Schema::from_fields(vec![
            Field::required("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]);
        assert!(s
            .check_row(&Row::from(vec![Value::Int(1), Value::from("a")]))
            .is_ok());
        assert!(s
            .check_row(&Row::from(vec![Value::Null, Value::from("a")]))
            .is_err());
        assert!(s
            .check_row(&Row::from(vec![Value::Int(1), Value::Int(2)]))
            .is_err());
        assert!(s.check_row(&Row::from(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn row_bytes_estimate() {
        assert_eq!(sample().estimated_row_bytes(), 8 + 24 + 8);
    }
}

//! The device-kind vocabulary shared between the IR, optimizer and the
//! accelerator simulator.
//!
//! Device *models* (clocks, power, efficiencies) live in `pspp-accel`;
//! only the enumeration lives here so that plan annotations can name a
//! target device without depending on the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The class of computing unit executing a kernel (§II-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    /// General-purpose multicore host CPU.
    Cpu,
    /// Wide-SIMD throughput device (hundreds of low-clocked cores).
    Gpu,
    /// Reconfigurable pipeline fabric (LUT-based), low clock, deep pipelines.
    Fpga,
    /// Coarse-grain reconfigurable array (Plasticine-like): pattern units,
    /// microsecond reconfiguration.
    Cgra,
    /// Fixed-function systolic matrix engine (TPU/Brainwave-like).
    Tpu,
}

impl DeviceKind {
    /// All device kinds, in a stable order.
    pub fn all() -> [DeviceKind; 5] {
        [
            DeviceKind::Cpu,
            DeviceKind::Gpu,
            DeviceKind::Fpga,
            DeviceKind::Cgra,
            DeviceKind::Tpu,
        ]
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::Fpga => "fpga",
            DeviceKind::Cgra => "cgra",
            DeviceKind::Tpu => "tpu",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_distinct_and_displayable() {
        let mut names: Vec<String> = DeviceKind::all().iter().map(|d| d.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}

//! Row-major records: the native exchange unit of the executor.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A single record: an ordered list of [`Value`]s matching some schema.
///
/// # Examples
///
/// ```
/// use pspp_common::{Row, Value};
/// let r = Row::from(vec![Value::Int(7), Value::from("x")]);
/// assert_eq!(r[0], Value::Int(7));
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Row(Vec<Value>);

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row(Vec::new())
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at `idx`, if in bounds.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Appends a value in place.
    pub fn push(&mut self, value: Value) {
        self.0.push(value);
    }

    /// Consumes the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// A new row keeping only the columns at `indices`, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenates two rows (join output).
    pub fn concat(&self, right: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + right.len());
        values.extend_from_slice(&self.0);
        values.extend_from_slice(&right.0);
        Row(values)
    }

    /// Total payload bytes (sum of [`Value::byte_size`]).
    pub fn byte_size(&self) -> usize {
        self.0.iter().map(Value::byte_size).sum()
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl IntoIterator for Row {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Row {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Extend<Value> for Row {
    fn extend<T: IntoIterator<Item = Value>>(&mut self, iter: T) {
        self.0.extend(iter);
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

/// Convenience macro for building a [`Row`] from heterogeneous literals.
///
/// ```
/// use pspp_common::{row, Row, Value};
/// let r: Row = row![1i64, "abc", 2.5];
/// assert_eq!(r.len(), 3);
/// assert_eq!(r[1], Value::from("abc"));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let r = row![1i64, "a", 2.0];
        assert_eq!(r.project(&[2, 0]), row![2.0, 1i64]);
        let s = r.concat(&row![true]);
        assert_eq!(s.len(), 4);
        assert_eq!(s[3], Value::Bool(true));
    }

    #[test]
    fn macro_in_function_scope() {
        let r = row![42i64];
        assert_eq!(r[0].as_i64(), Some(42));
    }

    #[test]
    fn byte_size_sums_values() {
        assert_eq!(row![1i64, "abc"].byte_size(), 8 + 3);
    }

    #[test]
    fn iteration() {
        let r = row![1i64, 2i64];
        let total: i64 = r.iter().filter_map(Value::as_i64).sum();
        assert_eq!(total, 3);
        let owned: Vec<Value> = r.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }
}

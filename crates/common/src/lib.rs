//! Common data model and utilities shared by every Polystore++ crate.
//!
//! A polystore federates engines with *different* data models (relational,
//! key/value, timeseries, graph, array, text, stream, tensor — §II-A of the
//! paper). This crate defines the lowest common denominator those engines
//! exchange: dynamically typed [`Value`]s, [`Schema`]s, row-major [`Row`]s
//! and column-major [`Batch`]es, plus the [`DataModel`]/[`EngineKind`] tags
//! the middleware uses to reason about placement and migration.
//!
//! # Examples
//!
//! ```
//! use pspp_common::{Schema, DataType, Row, Value, Batch};
//!
//! let schema = Schema::new(vec![
//!     ("pid", DataType::Int),
//!     ("name", DataType::Str),
//! ]);
//! let rows = vec![
//!     Row::from(vec![Value::Int(1), Value::from("ada")]),
//!     Row::from(vec![Value::Int(2), Value::from("grace")]),
//! ];
//! let batch = Batch::from_rows(&schema, rows.clone()).unwrap();
//! assert_eq!(batch.num_rows(), 2);
//! assert_eq!(batch.to_rows(), rows);
//! ```

pub mod batch;
pub mod device;
pub mod distribution;
pub mod error;
pub mod ids;
pub mod model;
pub mod partition;
pub mod predicate;
pub mod repartition;
pub mod rng;
pub mod row;
pub mod schema;
pub mod value;

pub use batch::{Batch, Column};
pub use device::DeviceKind;
pub use distribution::{Distribution, JoinDistribution};
pub use error::{Error, Result};
pub use ids::{EngineId, TableRef};
pub use model::{DataModel, EngineKind};
pub use partition::{hash_grow_moved_fraction, PartitionLookup, PartitionSpec, ShardId};
pub use predicate::Predicate;
pub use repartition::{CopyKey, MaterializedRepartitions, RepartitionStats};
pub use rng::SplitMix64;
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{DataType, Value};

/// Number of bytes in one mebibyte; used across cost models and reports.
pub const MIB: u64 = 1 << 20;

/// Number of bytes in one gibibyte; used across cost models and reports.
pub const GIB: u64 = 1 << 30;

//! Sharding primitives: [`ShardId`] and [`PartitionSpec`].
//!
//! A polystore scales out by partitioning a logical table across N
//! replicas of its engine (BigDAWG's islands, the tri-store's
//! partitioned routing). The catalog carries one [`PartitionSpec`] per
//! partitioned table; the runtime's sharded registry uses it to route
//! scans to shard replicas and the executor scatter-gathers partial
//! results in shard order so sharded and unsharded deployments are
//! bit-identical.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Error, Result, Row, Schema, Value};

/// Identifies one shard replica of an engine (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard every unsharded engine lives on.
    pub const ZERO: ShardId = ShardId(0);

    /// The shard index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// How a logical table's rows are distributed across shard replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionSpec {
    /// Rows route by a stable hash of the key column, modulo `shards`.
    Hash {
        /// Partition key column.
        column: String,
        /// Number of shard replicas.
        shards: u32,
    },
    /// Rows route by the key column's position among sorted split
    /// points: shard `s` holds values in `[boundaries[s-1],
    /// boundaries[s])` (first shard unbounded below, last unbounded
    /// above). `boundaries.len() + 1` shards.
    Range {
        /// Partition key column.
        column: String,
        /// Ascending split points.
        boundaries: Vec<Value>,
    },
    /// Every shard holds a full copy; reads may be served by any one
    /// replica (the runtime picks shard 0 for determinism).
    Replicated {
        /// Number of shard replicas.
        shards: u32,
    },
}

impl PartitionSpec {
    /// A hash partition over `column` with `shards` replicas.
    pub fn hash(column: impl Into<String>, shards: u32) -> Self {
        PartitionSpec::Hash {
            column: column.into(),
            shards,
        }
    }

    /// A range partition over `column` with the given split points.
    pub fn range(column: impl Into<String>, boundaries: Vec<Value>) -> Self {
        PartitionSpec::Range {
            column: column.into(),
            boundaries,
        }
    }

    /// A replicated table with `shards` full copies.
    pub fn replicated(shards: u32) -> Self {
        PartitionSpec::Replicated { shards }
    }

    /// Number of shard replicas this spec distributes over.
    pub fn shard_count(&self) -> usize {
        match self {
            PartitionSpec::Hash { shards, .. } | PartitionSpec::Replicated { shards } => {
                *shards as usize
            }
            PartitionSpec::Range { boundaries, .. } => boundaries.len() + 1,
        }
    }

    /// The shard ids a scatter-gather *scan* must visit, in merge
    /// order. Replicated tables are served by a single replica — but
    /// note this is a read-path decision only: as a **join input** a
    /// replicated table is colocatable with any hashed or ranged
    /// partner (broadcast join), because every shard task can build
    /// against a full copy. Join planning therefore goes through
    /// [`crate::Distribution::join`], never through this scatter set.
    ///
    /// Delegates to [`crate::Distribution::scatter`], the single
    /// source of truth for shard fan-out.
    pub fn scatter_shards(&self) -> Vec<ShardId> {
        crate::Distribution::from_spec(self).scatter()
    }

    /// The partition key column, when the spec has one.
    pub fn partition_column(&self) -> Option<&str> {
        match self {
            PartitionSpec::Hash { column, .. } | PartitionSpec::Range { column, .. } => {
                Some(column)
            }
            PartitionSpec::Replicated { .. } => None,
        }
    }

    /// Checks internal consistency: a non-empty shard set and sorted
    /// range boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyShardSet`] for zero shards and
    /// [`Error::Config`] for unsorted boundaries.
    pub fn validate(&self) -> Result<()> {
        if self.shard_count() == 0 {
            return Err(Error::EmptyShardSet(format!(
                "partition spec {self:?} yields zero shards"
            )));
        }
        if let PartitionSpec::Range { boundaries, .. } = self {
            if boundaries.windows(2).any(|w| w[0] > w[1]) {
                return Err(Error::Config(
                    "range partition boundaries must be ascending".into(),
                ));
            }
        }
        Ok(())
    }

    /// The shard a row with key `value` lives on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyShardSet`] for zero shards and
    /// [`Error::Invalid`] for replicated specs (every shard holds the
    /// row; there is no single home).
    pub fn shard_for_value(&self, value: &Value) -> Result<ShardId> {
        self.validate()?;
        self.route(value)
    }

    /// [`PartitionSpec::shard_for_value`] without re-validating —
    /// bulk callers validate once up front.
    fn route(&self, value: &Value) -> Result<ShardId> {
        match self {
            PartitionSpec::Hash { shards, .. } => {
                Ok(ShardId((value_hash(value) % u64::from(*shards)) as u32))
            }
            PartitionSpec::Range { boundaries, .. } => {
                let s = boundaries.partition_point(|b| b <= value);
                Ok(ShardId(s as u32))
            }
            PartitionSpec::Replicated { .. } => Err(Error::Invalid(
                "replicated tables have no single home shard".into(),
            )),
        }
    }

    /// Distributes `rows` into per-shard buckets by partition key
    /// (replicated specs clone the full row set into every shard).
    /// Within each shard, rows keep their input order, so a
    /// shard-ordered gather of a range partition over a key the rows
    /// are sorted by reproduces the input order exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] when the key column is missing
    /// from `schema` and [`Error::EmptyShardSet`] for zero shards.
    pub fn distribute(&self, schema: &Schema, rows: &[Row]) -> Result<Vec<Vec<Row>>> {
        self.validate()?;
        let n = self.shard_count();
        if let PartitionSpec::Replicated { .. } = self {
            return Ok((0..n).map(|_| rows.to_vec()).collect());
        }
        let column = self
            .partition_column()
            .expect("hash/range specs always have a key column");
        let idx = schema.require(column)?;
        let mut buckets: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
        for row in rows {
            let shard = self.route(&row[idx])?;
            buckets[shard.index()].push(row.clone());
        }
        Ok(buckets)
    }
    /// Destination shard of every row under this spec, in input
    /// order — the diffing primitive behind incremental rebalance.
    /// The registry routes each *source* shard's rows under the new
    /// spec and moves only those whose destination differs, instead
    /// of gathering and redistributing everything.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] when the key column is
    /// missing from `schema`, [`Error::EmptyShardSet`] for zero
    /// shards and [`Error::Invalid`] for replicated specs (every
    /// shard holds every row; there is nothing to diff).
    pub fn route_rows(&self, schema: &Schema, rows: &[Row]) -> Result<Vec<ShardId>> {
        self.validate()?;
        let column = self
            .partition_column()
            .ok_or_else(|| Error::Invalid("replicated tables have no single home shard".into()))?;
        let idx = schema.require(column)?;
        rows.iter().map(|row| self.route(&row[idx])).collect()
    }
}

/// Expected moved-row fraction when a hash partition grows from
/// `from` to `to` shards with `from | to`: a row stays exactly when
/// `hash % to < from` lands it back on its old shard, so the expected
/// moved fraction over a uniform hash is `1 - from/to` (0.5 for
/// 2→4). Returns `None` for non-grow or non-divisible width pairs,
/// where no closed form holds. This is an *expectation* — guards on
/// specific datasets should allow sampling tolerance.
pub fn hash_grow_moved_fraction(from: u32, to: u32) -> Option<f64> {
    if from == 0 || to <= from || !to.is_multiple_of(from) {
        return None;
    }
    Some(1.0 - f64::from(from) / f64::from(to))
}

/// Anything that can answer "how is this table partitioned?" — the
/// frontend catalog (planning-time declarations) and the runtime's
/// sharded registry (deployment truth) both implement it, so the
/// distribution-planning pass accepts either.
pub trait PartitionLookup {
    /// The partition spec routing `table`, when it is partitioned.
    fn partition_spec(&self, table: &crate::TableRef) -> Option<&PartitionSpec>;
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionSpec::Hash { column, shards } => write!(f, "hash({column}) x {shards}"),
            PartitionSpec::Range { column, boundaries } => {
                write!(f, "range({column}) x {}", boundaries.len() + 1)
            }
            PartitionSpec::Replicated { shards } => write!(f, "replicated x {shards}"),
        }
    }
}

/// The 64-bit FNV-1a offset basis — the seed for [`fnv1a`].
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Folds `bytes` into a 64-bit FNV-1a hash state. Stable across runs,
/// platforms and versions (never `std::hash`'s randomized state) —
/// shard routing and benchmark digests both depend on this exact
/// function, so there is exactly one copy of it in the workspace.
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A stable FNV-1a hash over a value's canonical bytes, seeding shard
/// routing for hash partitions.
fn value_hash(value: &Value) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        h = fnv1a(bytes, h);
    };
    match value {
        Value::Null => eat(&[0]),
        Value::Bool(b) => eat(&[1, u8::from(*b)]),
        Value::Int(v) => {
            eat(&[2]);
            eat(&v.to_le_bytes());
        }
        Value::Float(v) => {
            eat(&[3]);
            eat(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            eat(&[4]);
            eat(s.as_bytes());
        }
        Value::Bytes(b) => {
            eat(&[5]);
            eat(b);
        }
        Value::Timestamp(v) => {
            eat(&[6]);
            eat(&v.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, DataType};

    fn schema() -> Schema {
        Schema::new(vec![("k", DataType::Int), ("v", DataType::Str)])
    }

    #[test]
    fn hash_distribution_is_stable_and_total() {
        let spec = PartitionSpec::hash("k", 4);
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("r{i}")]).collect();
        let a = spec.distribute(&schema(), &rows).unwrap();
        let b = spec.distribute(&schema(), &rows).unwrap();
        assert_eq!(a, b, "hash routing must be deterministic");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        assert!(a.iter().all(|bucket| !bucket.is_empty()));
    }

    #[test]
    fn range_distribution_preserves_sorted_order_on_gather() {
        let spec = PartitionSpec::range("k", vec![Value::Int(33), Value::Int(66)]);
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("r{i}")]).collect();
        let buckets = spec.distribute(&schema(), &rows).unwrap();
        assert_eq!(buckets.len(), 3);
        let gathered: Vec<Row> = buckets.into_iter().flatten().collect();
        assert_eq!(gathered, rows, "shard-ordered gather = original order");
    }

    #[test]
    fn range_boundary_is_exclusive_on_the_left_shard() {
        let spec = PartitionSpec::range("k", vec![Value::Int(10)]);
        assert_eq!(spec.shard_for_value(&Value::Int(10)).unwrap(), ShardId(1));
        assert_eq!(spec.shard_for_value(&Value::Int(9)).unwrap(), ShardId(0));
    }

    #[test]
    fn replicated_clones_every_shard() {
        let spec = PartitionSpec::replicated(3);
        let rows: Vec<Row> = (0..5).map(|i| row![i as i64, "x"]).collect();
        let buckets = spec.distribute(&schema(), &rows).unwrap();
        assert!(buckets.iter().all(|b| *b == rows));
        assert_eq!(spec.scatter_shards(), vec![ShardId::ZERO]);
        assert!(spec.shard_for_value(&Value::Int(0)).is_err());
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let spec = PartitionSpec::hash("k", 0);
        assert!(matches!(spec.validate(), Err(Error::EmptyShardSet(_))));
        assert!(matches!(
            spec.distribute(&schema(), &[]),
            Err(Error::EmptyShardSet(_))
        ));
    }

    #[test]
    fn unknown_key_column_is_a_typed_error() {
        let spec = PartitionSpec::hash("nope", 2);
        let rows = vec![row![1i64, "a"]];
        assert!(matches!(
            spec.distribute(&schema(), &rows),
            Err(Error::ColumnNotFound(_))
        ));
    }

    #[test]
    fn unsorted_boundaries_rejected() {
        let spec = PartitionSpec::range("k", vec![Value::Int(5), Value::Int(1)]);
        assert!(matches!(spec.validate(), Err(Error::Config(_))));
    }

    #[test]
    fn route_rows_matches_distribute() {
        let spec = PartitionSpec::hash("k", 4);
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("r{i}")]).collect();
        let routes = spec.route_rows(&schema(), &rows).unwrap();
        let buckets = spec.distribute(&schema(), &rows).unwrap();
        for (row, shard) in rows.iter().zip(&routes) {
            assert!(buckets[shard.index()].contains(row));
        }
        let spec = PartitionSpec::replicated(2);
        assert!(matches!(
            spec.route_rows(&schema(), &rows),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn hash_grow_moved_fraction_closed_form() {
        assert_eq!(hash_grow_moved_fraction(2, 4), Some(0.5));
        assert_eq!(hash_grow_moved_fraction(1, 4), Some(0.75));
        assert_eq!(hash_grow_moved_fraction(4, 2), None, "shrink has no bound");
        assert_eq!(hash_grow_moved_fraction(2, 3), None, "non-divisible");
        assert_eq!(hash_grow_moved_fraction(0, 4), None);
        // Empirical check: routing 10k ints 2 -> 4 moves about half.
        let old = PartitionSpec::hash("k", 2);
        let new = PartitionSpec::hash("k", 4);
        let rows: Vec<Row> = (0..10_000).map(|i| row![i as i64, "x"]).collect();
        let before = old.route_rows(&schema(), &rows).unwrap();
        let after = new.route_rows(&schema(), &rows).unwrap();
        let moved =
            before.iter().zip(&after).filter(|(b, a)| b != a).count() as f64 / rows.len() as f64;
        assert!(
            (moved - 0.5).abs() < 0.05,
            "moved fraction {moved} should track the 0.5 expectation"
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(PartitionSpec::hash("pid", 4).to_string(), "hash(pid) x 4");
        assert_eq!(
            PartitionSpec::range("pid", vec![Value::Int(1)]).to_string(),
            "range(pid) x 2"
        );
        assert_eq!(ShardId(2).to_string(), "shard2");
    }
}

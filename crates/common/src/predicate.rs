//! Scan predicates: a small expression tree evaluated against rows.

use serde::{Deserialize, Serialize};

use crate::{Result, Row, Schema, Value};

/// A boolean predicate over a row.
///
/// # Examples
///
/// ```
/// use pspp_common::Predicate;
/// use pspp_common::{Schema, DataType, row};
///
/// let schema = Schema::new(vec![("age", DataType::Int)]);
/// let p = Predicate::ge("age", 65i64).and(Predicate::lt("age", 90i64));
/// assert!(p.eval(&schema, &row![70i64]).unwrap());
/// assert!(!p.eval(&schema, &row![30i64]).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Predicate {
    /// Always true (full scan).
    #[default]
    True,
    /// `column = value`.
    Eq(String, Value),
    /// `column != value`.
    Ne(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    Le(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    Ge(String, Value),
    /// `lo <= column <= hi`.
    Between(String, Value, Value),
    /// `column IN (values)`.
    In(String, Vec<Value>),
    /// `column IS NULL`.
    IsNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(column.into(), value.into())
    }

    /// `column != value`.
    pub fn ne(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Ne(column.into(), value.into())
    }

    /// `column < value`.
    pub fn lt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Lt(column.into(), value.into())
    }

    /// `column <= value`.
    pub fn le(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Le(column.into(), value.into())
    }

    /// `column > value`.
    pub fn gt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Gt(column.into(), value.into())
    }

    /// `column >= value`.
    pub fn ge(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Ge(column.into(), value.into())
    }

    /// `lo <= column <= hi`.
    pub fn between(column: impl Into<String>, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between(column.into(), lo.into(), hi.into())
    }

    /// Conjunction with `other`.
    #[allow(clippy::should_implement_trait)]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with `other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates against a row.
    ///
    /// NULL comparisons follow SQL three-valued logic collapsed to
    /// `false` (a NULL never satisfies a comparison except `IsNull`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::ColumnNotFound`] for unknown columns.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x == *v),
            Predicate::Ne(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x != *v),
            Predicate::Lt(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x < *v),
            Predicate::Le(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x <= *v),
            Predicate::Gt(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x > *v),
            Predicate::Ge(c, v) => Self::cmp_col(schema, row, c)?.is_some_and(|x| x >= *v),
            Predicate::Between(c, lo, hi) => {
                Self::cmp_col(schema, row, c)?.is_some_and(|x| x >= *lo && x <= *hi)
            }
            Predicate::In(c, vs) => Self::cmp_col(schema, row, c)?.is_some_and(|x| vs.contains(&x)),
            Predicate::IsNull(c) => row[schema.require(c)?].is_null(),
            Predicate::And(a, b) => a.eval(schema, row)? && b.eval(schema, row)?,
            Predicate::Or(a, b) => a.eval(schema, row)? || b.eval(schema, row)?,
            Predicate::Not(p) => !p.eval(schema, row)?,
        })
    }

    fn cmp_col(schema: &Schema, row: &Row, column: &str) -> Result<Option<Value>> {
        let idx = schema.require(column)?;
        let v = &row[idx];
        Ok(if v.is_null() { None } else { Some(v.clone()) })
    }

    /// If the predicate (or its leading conjunct) is a point/range lookup
    /// on one column, returns `(column, lo, hi)` bounds usable by an
    /// index scan (either bound may be `None` for open ranges).
    pub fn index_bounds(&self) -> Option<(&str, Option<&Value>, Option<&Value>)> {
        match self {
            Predicate::Eq(c, v) => Some((c, Some(v), Some(v))),
            Predicate::Between(c, lo, hi) => Some((c, Some(lo), Some(hi))),
            Predicate::Lt(c, v) | Predicate::Le(c, v) => Some((c, None, Some(v))),
            Predicate::Gt(c, v) | Predicate::Ge(c, v) => Some((c, Some(v), None)),
            Predicate::And(a, _) => a.index_bounds(),
            _ => None,
        }
    }

    /// Rough selectivity estimate in (0, 1]; used by the optimizer's
    /// cardinality model before execution.
    pub fn selectivity(&self) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Eq(..) => 0.05,
            Predicate::Ne(..) => 0.95,
            Predicate::Lt(..) | Predicate::Le(..) | Predicate::Gt(..) | Predicate::Ge(..) => 0.33,
            Predicate::Between(..) => 0.2,
            Predicate::In(_, vs) => (0.05 * vs.len() as f64).min(1.0),
            Predicate::IsNull(_) => 0.02,
            Predicate::And(a, b) => a.selectivity() * b.selectivity(),
            Predicate::Or(a, b) => (a.selectivity() + b.selectivity()).min(1.0),
            Predicate::Not(p) => 1.0 - p.selectivity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, DataType};

    fn schema() -> Schema {
        Schema::new(vec![("a", DataType::Int), ("s", DataType::Str)])
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row![5i64, "x"];
        assert!(Predicate::eq("a", 5i64).eval(&s, &r).unwrap());
        assert!(Predicate::ne("a", 4i64).eval(&s, &r).unwrap());
        assert!(Predicate::between("a", 1i64, 9i64).eval(&s, &r).unwrap());
        assert!(Predicate::In("s".into(), vec!["x".into(), "y".into()])
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::lt("a", 5i64).eval(&s, &r).unwrap());
    }

    #[test]
    fn null_never_matches_comparison() {
        let s = schema();
        let r = Row::from(vec![Value::Null, Value::from("x")]);
        assert!(!Predicate::eq("a", 5i64).eval(&s, &r).unwrap());
        assert!(!Predicate::ne("a", 5i64).eval(&s, &r).unwrap());
        assert!(Predicate::IsNull("a".into()).eval(&s, &r).unwrap());
    }

    #[test]
    fn boolean_composition() {
        let s = schema();
        let r = row![5i64, "x"];
        let p = Predicate::gt("a", 0i64)
            .and(Predicate::eq("s", "x"))
            .or(Predicate::eq("a", -1i64));
        assert!(p.eval(&s, &r).unwrap());
        assert!(!p.clone().not().eval(&s, &r).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        assert!(Predicate::eq("zzz", 1i64)
            .eval(&s, &row![1i64, "x"])
            .is_err());
    }

    #[test]
    fn index_bounds_extraction() {
        let p = Predicate::eq("k", 5i64).and(Predicate::gt("v", 1i64));
        let (c, lo, hi) = p.index_bounds().unwrap();
        assert_eq!(c, "k");
        assert_eq!(lo, Some(&Value::Int(5)));
        assert_eq!(hi, Some(&Value::Int(5)));
        assert!(Predicate::IsNull("k".into()).index_bounds().is_none());
    }

    #[test]
    fn selectivity_sane() {
        assert!(Predicate::True.selectivity() == 1.0);
        let and = Predicate::eq("a", 1i64).and(Predicate::eq("s", "x"));
        assert!(and.selectivity() < Predicate::eq("a", 1i64).selectivity());
        for p in [
            Predicate::eq("a", 1i64),
            Predicate::between("a", 1i64, 2i64),
            Predicate::IsNull("a".into()),
        ] {
            let s = p.selectivity();
            assert!(s > 0.0 && s <= 1.0);
        }
    }
}

//! Materialized repartitions: persisted shuffle layouts that amortize
//! repeated `ShuffleHash` exchanges to zero.
//!
//! A mismatched-key join re-routes the same probe rows on every
//! execution. The executor's shuffle barrier already computes the
//! per-shard bucket assignment; this module lets it *keep* that
//! assignment as a secondary partitioned copy keyed by
//! `(table, key, width, plan signature)`. The next plan with the same
//! join key consults the store ([`MaterializedRepartitions::contains`])
//! and keeps the shuffle edge but serves it from the copy — zero rows
//! routed, zero bytes billed. Copies are invalidated wholesale by the
//! registry epoch: any reshard, rebalance or DDL bumps the epoch and
//! every stored layout becomes stale on its next lookup.
//!
//! Entries store *index lists* (bucket -> input row positions), not
//! row clones: the serving path replays the stored routing against the
//! live gathered input, so served and routed executions are
//! byte-identical by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::TableRef;

/// Identity of one materialized shuffle layout: which subtree's
/// output was routed, on which key, to how many shards. `signature`
/// is a stable digest of the operator subtree feeding the shuffle
/// (scan + pushed-down filters/projections), so a copy of a filtered
/// scan never serves the unfiltered one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CopyKey {
    /// The stored table at the leaf of the shuffled subtree.
    pub table: TableRef,
    /// The shuffle (join) key column.
    pub column: String,
    /// Shard fan-out of the shuffle.
    pub width: u32,
    /// Stable digest of the operator subtree feeding the shuffle.
    pub signature: u64,
}

/// One persisted layout: the bucket assignment of the shuffled
/// subtree's output at the epoch it was routed.
#[derive(Debug, Clone)]
struct CopyEntry {
    /// `buckets[shard]` = input-row positions routed there, in input
    /// order (exactly what `Distribution::route_indices` produced).
    buckets: Vec<Vec<usize>>,
    rows: usize,
    bytes: u64,
    epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    copies: HashMap<CopyKey, CopyEntry>,
    /// Cumulative simulated seconds spent shuffling each key since
    /// the last epoch change — the evidence `repartition_pays` weighs
    /// against the one-time copy cost.
    pending_seconds: HashMap<CopyKey, f64>,
    pending_epoch: u64,
    hits: u64,
    stores: u64,
    invalidations: u64,
}

/// Counters describing the store's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepartitionStats {
    /// Shuffle edges served from a stored layout.
    pub hits: u64,
    /// Layouts persisted.
    pub stores: u64,
    /// Stale layouts dropped on epoch change.
    pub invalidations: u64,
    /// Live layouts.
    pub len: usize,
}

/// Shared store of materialized shuffle layouts, epoch-validated
/// against the registry it mirrors. Cloning shares state.
#[derive(Debug, Clone)]
pub struct MaterializedRepartitions {
    /// The registry's epoch counter — shared, not copied, so any
    /// registry mutation invalidates every stored layout.
    epoch: Arc<AtomicU64>,
    inner: Arc<Mutex<Inner>>,
}

impl MaterializedRepartitions {
    /// A store validating entries against `epoch` (the owning
    /// registry's live epoch counter).
    pub fn new(epoch: Arc<AtomicU64>) -> Self {
        MaterializedRepartitions {
            epoch,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether a live (current-epoch) layout exists for `key` — the
    /// planner's consultation; does not count as a hit.
    pub fn contains(&self, key: &CopyKey) -> bool {
        let epoch = self.current_epoch();
        let inner = self.inner.lock().expect("repartition store poisoned");
        matches!(inner.copies.get(key), Some(e) if e.epoch == epoch)
    }

    /// The stored bucket assignment for `key` when live, dropping it
    /// (and counting an invalidation) when stale. `rows` must match
    /// the stored input cardinality — a mismatch means the underlying
    /// data changed without an epoch bump, and the entry is dropped
    /// rather than served wrong.
    pub fn lookup(&self, key: &CopyKey, rows: usize) -> Option<Vec<Vec<usize>>> {
        let epoch = self.current_epoch();
        let mut inner = self.inner.lock().expect("repartition store poisoned");
        match inner.copies.get(key) {
            Some(e) if e.epoch == epoch && e.rows == rows => {
                let buckets = e.buckets.clone();
                inner.hits += 1;
                Some(buckets)
            }
            Some(_) => {
                inner.copies.remove(key);
                inner.invalidations += 1;
                None
            }
            None => None,
        }
    }

    /// Records `seconds` of shuffle work on `key` and returns the
    /// cumulative total this epoch — the caller feeds it to the cost
    /// rule deciding whether persisting the layout now pays.
    pub fn observe(&self, key: &CopyKey, seconds: f64) -> f64 {
        let epoch = self.current_epoch();
        let mut inner = self.inner.lock().expect("repartition store poisoned");
        if inner.pending_epoch != epoch {
            inner.pending_epoch = epoch;
            inner.pending_seconds.clear();
        }
        let total = inner.pending_seconds.entry(key.clone()).or_insert(0.0);
        *total += seconds;
        *total
    }

    /// Persists a routed layout at the current epoch.
    pub fn store(&self, key: CopyKey, buckets: Vec<Vec<usize>>, bytes: u64) {
        let epoch = self.current_epoch();
        let rows = buckets.iter().map(Vec::len).sum();
        let mut inner = self.inner.lock().expect("repartition store poisoned");
        inner.copies.insert(
            key,
            CopyEntry {
                buckets,
                rows,
                bytes,
                epoch,
            },
        );
        inner.stores += 1;
    }

    /// Total bytes held by live layouts.
    pub fn bytes(&self) -> u64 {
        let epoch = self.current_epoch();
        let inner = self.inner.lock().expect("repartition store poisoned");
        inner
            .copies
            .values()
            .filter(|e| e.epoch == epoch)
            .map(|e| e.bytes)
            .sum()
    }

    /// Lifetime counters plus the live entry count.
    pub fn stats(&self) -> RepartitionStats {
        let epoch = self.current_epoch();
        let inner = self.inner.lock().expect("repartition store poisoned");
        RepartitionStats {
            hits: inner.hits,
            stores: inner.stores,
            invalidations: inner.invalidations,
            len: inner.copies.values().filter(|e| e.epoch == epoch).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sig: u64) -> CopyKey {
        CopyKey {
            table: TableRef::new("db1", "t"),
            column: "k".into(),
            width: 4,
            signature: sig,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let epoch = Arc::new(AtomicU64::new(3));
        let store = MaterializedRepartitions::new(Arc::clone(&epoch));
        assert!(!store.contains(&key(1)));
        store.store(key(1), vec![vec![0, 2], vec![1]], 24);
        assert!(store.contains(&key(1)));
        assert_eq!(store.lookup(&key(1), 3), Some(vec![vec![0, 2], vec![1]]));
        assert_eq!(store.bytes(), 24);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.stores, stats.len), (1, 1, 1));
    }

    #[test]
    fn epoch_bump_invalidates_on_next_lookup() {
        let epoch = Arc::new(AtomicU64::new(0));
        let store = MaterializedRepartitions::new(Arc::clone(&epoch));
        store.store(key(1), vec![vec![0]], 8);
        epoch.fetch_add(1, Ordering::SeqCst);
        assert!(!store.contains(&key(1)));
        assert_eq!(store.lookup(&key(1), 1), None);
        assert_eq!(store.stats().invalidations, 1);
        assert_eq!(store.stats().len, 0);
    }

    #[test]
    fn cardinality_mismatch_drops_the_entry() {
        let store = MaterializedRepartitions::new(Arc::new(AtomicU64::new(0)));
        store.store(key(1), vec![vec![0, 1]], 16);
        assert_eq!(store.lookup(&key(1), 99), None);
        assert_eq!(store.stats().invalidations, 1);
    }

    #[test]
    fn observe_accumulates_until_the_epoch_moves() {
        let epoch = Arc::new(AtomicU64::new(0));
        let store = MaterializedRepartitions::new(Arc::clone(&epoch));
        assert_eq!(store.observe(&key(7), 0.5), 0.5);
        assert_eq!(store.observe(&key(7), 0.25), 0.75);
        epoch.fetch_add(1, Ordering::SeqCst);
        assert_eq!(store.observe(&key(7), 0.1), 0.1, "epoch change resets");
    }
}

//! Dynamically typed scalar values exchanged between engines.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The scalar type of a [`Value`] / a column in a [`crate::Schema`].
///
/// # Examples
///
/// ```
/// use pspp_common::{DataType, Value};
/// assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
/// assert_eq!(DataType::Float.fixed_width(), Some(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Signed 64-bit integer.
    Int,
    /// IEEE-754 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Raw byte array.
    Bytes,
    /// Microseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Width in bytes when the type is fixed-width, `None` for `Str`/`Bytes`.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Bool => Some(1),
            DataType::Int | DataType::Float | DataType::Timestamp => Some(8),
            DataType::Str | DataType::Bytes => None,
        }
    }

    /// Whether values of this type are numeric (castable to `f64`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }

    /// All supported types, in a stable order.
    pub fn all() -> [DataType; 6] {
        [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bytes,
            DataType::Timestamp,
        ]
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bytes => "bytes",
            DataType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Value` is the unit of data exchanged across engine boundaries: the CAST
/// layer of the paper's architecture maps every native representation into
/// and out of this type. A total order is defined (nulls first, then by
/// type, floats by IEEE total order) so values can be used as sort keys in
/// any engine.
///
/// # Examples
///
/// ```
/// use pspp_common::Value;
/// let v = Value::from(2.5);
/// assert_eq!(v.as_f64(), Some(2.5));
/// assert!(Value::Null < v);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absent / SQL NULL.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    Int(i64),
    /// IEEE-754 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The [`DataType`] of this value, or `None` for [`Value::Null`].
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload (`Int` or `Timestamp`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// A numeric view: `Int`, `Float` and `Timestamp` cast to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The byte payload, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory size of the payload in bytes.
    ///
    /// Used by every cost model to account for bytes moved; must therefore
    /// stay cheap and deterministic.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }

    /// Lossy cast to `target`, following SQL-ish coercion rules.
    ///
    /// Returns `None` when the cast is not meaningful (e.g. `Bytes -> Int`).
    /// `Null` casts to `Null` of any type.
    pub fn cast(&self, target: DataType) -> Option<Value> {
        if self.is_null() {
            return Some(Value::Null);
        }
        match (self, target) {
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(v), DataType::Float) => Some(Value::Float(*v as f64)),
            (Value::Int(v), DataType::Timestamp) => Some(Value::Timestamp(*v)),
            (Value::Int(v), DataType::Bool) => Some(Value::Bool(*v != 0)),
            (Value::Int(v), DataType::Str) => Some(Value::Str(v.to_string())),
            (Value::Float(v), DataType::Int) => Some(Value::Int(*v as i64)),
            (Value::Float(v), DataType::Str) => Some(Value::Str(v.to_string())),
            (Value::Timestamp(v), DataType::Int) => Some(Value::Int(*v)),
            (Value::Timestamp(v), DataType::Float) => Some(Value::Float(*v as f64)),
            (Value::Bool(v), DataType::Int) => Some(Value::Int(i64::from(*v))),
            (Value::Bool(v), DataType::Str) => Some(Value::Str(v.to_string())),
            (Value::Str(s), DataType::Int) => s.trim().parse().ok().map(Value::Int),
            (Value::Str(s), DataType::Float) => s.trim().parse().ok().map(Value::Float),
            (Value::Str(s), DataType::Bool) => match s.as_str() {
                "true" | "t" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Str(s), DataType::Bytes) => Some(Value::Bytes(s.clone().into_bytes())),
            (Value::Bytes(b), DataType::Str) => String::from_utf8(b.clone()).ok().map(Value::Str),
            _ => None,
        }
    }

    /// Rank used to order values of different types; nulls sort first.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Timestamp(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(v) | Value::Timestamp(v) => v.hash(state),
            // Hash the bit pattern; `eq` uses total_cmp so this is consistent
            // for all values that compare equal except Int==Float pairs,
            // which are never mixed inside one hashed column.
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_roundtrip() {
        for (v, t) in [
            (Value::Bool(true), DataType::Bool),
            (Value::Int(1), DataType::Int),
            (Value::Float(1.5), DataType::Float),
            (Value::from("x"), DataType::Str),
            (Value::Bytes(vec![1]), DataType::Bytes),
            (Value::Timestamp(7), DataType::Timestamp),
        ] {
            assert_eq!(v.data_type(), Some(t));
        }
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Int(-5)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(-5));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(2.5) > Value::Int(2));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(f64::NEG_INFINITY),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Float(f64::NEG_INFINITY));
        assert_eq!(vs[1], Value::Float(1.0));
    }

    #[test]
    fn casts() {
        assert_eq!(Value::Int(3).cast(DataType::Float), Some(Value::Float(3.0)));
        assert_eq!(Value::from("42").cast(DataType::Int), Some(Value::Int(42)));
        assert_eq!(Value::from("x").cast(DataType::Int), None);
        assert_eq!(Value::Null.cast(DataType::Int), Some(Value::Null));
        assert_eq!(Value::Bool(true).cast(DataType::Int), Some(Value::Int(1)));
        assert_eq!(Value::Bytes(vec![0xff]).cast(DataType::Int), None);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::from("abc").byte_size(), 3);
        assert_eq!(Value::Null.byte_size(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::Str(String::new()),
            Value::Bytes(vec![]),
            Value::Timestamp(0),
        ] {
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }
}

//! Identifier newtypes for engines and datasets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::EngineKind;

/// Identifies a registered engine instance within a Polystore++ deployment.
///
/// Multiple instances of the same [`EngineKind`] may coexist (the paper's
/// DB1/DB2 example in §III both speak relational).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EngineId(String);

impl EngineId {
    /// Creates an id from a human-readable name (e.g. `"db1"`).
    pub fn new(name: impl Into<String>) -> Self {
        EngineId(name.into())
    }

    /// The underlying name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EngineId {
    fn from(s: &str) -> Self {
        EngineId::new(s)
    }
}

impl From<String> for EngineId {
    fn from(s: String) -> Self {
        EngineId(s)
    }
}

/// A fully qualified reference to a dataset: which engine holds it and its
/// name inside that engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableRef {
    /// Hosting engine.
    pub engine: EngineId,
    /// Dataset name within the engine (table / series / index / log name).
    pub name: String,
}

impl TableRef {
    /// Creates a reference.
    pub fn new(engine: impl Into<EngineId>, name: impl Into<String>) -> Self {
        TableRef {
            engine: engine.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.engine, self.name)
    }
}

/// A placement target: a kind of engine plus an instance id; used by plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EngineInstance {
    /// Instance id.
    pub id: EngineId,
    /// Engine kind.
    pub kind: EngineKind,
}

impl fmt::Display for EngineInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_display() {
        let t = TableRef::new("db1", "admissions");
        assert_eq!(t.to_string(), "db1.admissions");
    }

    #[test]
    fn engine_id_ordering_is_lexicographic() {
        assert!(EngineId::new("a") < EngineId::new("b"));
    }
}

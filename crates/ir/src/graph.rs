//! The program DAG: nodes, edges, validation, topological order, stages,
//! and DOT export.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use pspp_common::{Error, Result};

use crate::op::Operator;
use crate::Annotations;

/// Identifies a node inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node: an operator, its data inputs, its subprogram tag (the
/// control level of the hierarchical IR) and plan annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramNode {
    /// Node id.
    pub id: NodeId,
    /// The operator.
    pub op: Operator,
    /// Data inputs, in positional order.
    pub inputs: Vec<NodeId>,
    /// Which subprogram (source language block) produced this node —
    /// Fig. 5's control nodes.
    pub subprogram: String,
    /// Optimizer annotations.
    pub annotations: Annotations,
}

/// One scheduler stage of a program (see [`Program::execution_stages`]):
/// `compute` nodes are mutually independent and may execute
/// concurrently; `forwards` are fused pass-through nodes resolved
/// before the stage runs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Stage {
    /// Fused nodes that alias their single input (in id order).
    pub forwards: Vec<NodeId>,
    /// Independently executable nodes (in id order).
    pub compute: Vec<NodeId>,
}

/// A heterogeneous program as a data-flow DAG of typed operators.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    nodes: Vec<ProgramNode>,
    outputs: Vec<NodeId>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a source node (no inputs).
    pub fn add_source(&mut self, op: Operator, subprogram: impl Into<String>) -> NodeId {
        self.add_node(op, vec![], subprogram)
    }

    /// Adds a node with inputs.
    ///
    /// # Panics
    ///
    /// Panics if any input id is unknown (construction-time programming
    /// error; use [`Program::validate`] for semantic checks).
    pub fn add_node(
        &mut self,
        op: Operator,
        inputs: Vec<NodeId>,
        subprogram: impl Into<String>,
    ) -> NodeId {
        for i in &inputs {
            assert!(i.0 < self.nodes.len(), "unknown input {i}");
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(ProgramNode {
            id,
            op,
            inputs,
            subprogram: subprogram.into(),
            annotations: Annotations::default(),
        });
        id
    }

    /// Marks a node as a program output.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// The output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ProgramNode] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics on unknown id.
    pub fn node(&self, id: NodeId) -> &ProgramNode {
        &self.nodes[id.0]
    }

    /// Mutable node lookup.
    ///
    /// # Panics
    ///
    /// Panics on unknown id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut ProgramNode {
        &mut self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the program has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Consumers of each node.
    pub fn consumers(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut m: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for n in &self.nodes {
            for &i in &n.inputs {
                m.entry(i).or_default().push(n.id);
            }
        }
        m
    }

    /// Checks arity and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        for n in &self.nodes {
            if n.inputs.len() != n.op.arity() {
                return Err(Error::Semantic(format!(
                    "{} ({}) expects {} inputs, has {}",
                    n.id,
                    n.op.name(),
                    n.op.arity(),
                    n.inputs.len()
                )));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order (Kahn). Fails on cycles.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let mut in_deg: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        let consumers = self.consumers();
        let mut queue: VecDeque<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.inputs.is_empty())
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &c in consumers.get(&id).map_or(&[][..], Vec::as_slice) {
                in_deg[c.0] -= 1;
                if in_deg[c.0] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(Error::Semantic("program graph has a cycle".into()));
        }
        Ok(order)
    }

    /// Groups nodes into pipeline stages: stage `k` holds nodes whose
    /// longest path from a source has length `k`. Nodes in one stage can
    /// run concurrently; consecutive stages can be pipelined (§IV-D: "the
    /// optimized IR may be considered to be a sequence of stages").
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if the graph has a cycle.
    pub fn stages(&self) -> Result<Vec<Vec<NodeId>>> {
        let order = self.topo_order()?;
        let mut level: HashMap<NodeId, usize> = HashMap::new();
        let mut max_level = 0usize;
        for id in order {
            let node = self.node(id);
            let l = node.inputs.iter().map(|i| level[i] + 1).max().unwrap_or(0);
            level.insert(id, l);
            max_level = max_level.max(l);
        }
        let mut stages = vec![Vec::new(); max_level + 1];
        for (id, l) in level {
            stages[l].push(id);
        }
        for s in &mut stages {
            s.sort();
        }
        Ok(stages)
    }

    /// Groups nodes into scheduler-ready stages: [`Program::stages`]
    /// with each stage's fused pass-through nodes separated from its
    /// compute nodes.
    ///
    /// The concurrency contract the executor relies on: every node in
    /// one stage depends only on nodes in strictly earlier stages, so a
    /// stage's `compute` nodes are mutually independent and may run on
    /// separate threads. `forwards` nodes (fused into their consumer by
    /// L1 rewrites) just alias their single input and are resolved
    /// before the stage's compute set launches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if the graph has a cycle.
    pub fn execution_stages(&self) -> Result<Vec<Stage>> {
        Ok(self
            .stages()?
            .into_iter()
            .map(|ids| {
                let (forwards, compute) = ids
                    .into_iter()
                    .partition(|id| self.node(*id).annotations.fused_into_consumer);
                Stage { forwards, compute }
            })
            .collect())
    }

    /// Edges whose endpoints live in different subprograms — the
    /// cross-engine data transfers of Fig. 5 (dotted lines), each of
    /// which the migrator must service.
    pub fn cross_subprogram_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for n in &self.nodes {
            for &i in &n.inputs {
                if self.node(i).subprogram != n.subprogram {
                    out.push((i, n.id));
                }
            }
        }
        out
    }

    /// The distinct subprogram tags, in first-appearance order.
    pub fn subprograms(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for n in &self.nodes {
            if seen.insert(n.subprogram.as_str()) {
                out.push(n.subprogram.as_str());
            }
        }
        out
    }

    /// Counts nodes per operator name (used by E4's IR statistics).
    pub fn op_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for n in &self.nodes {
            *m.entry(n.op.name()).or_insert(0) += 1;
        }
        m
    }

    /// GraphViz DOT rendering, clustered by subprogram (the visual shape
    /// of Fig. 5).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph program {\n  rankdir=LR;\n");
        for (ci, sub) in self.subprograms().iter().enumerate() {
            s.push_str(&format!(
                "  subgraph cluster_{ci} {{\n    label=\"{sub}\";\n"
            ));
            for n in self.nodes.iter().filter(|n| n.subprogram == *sub) {
                let extra = n
                    .annotations
                    .device
                    .map(|d| format!("\\n@{d}"))
                    .unwrap_or_default();
                s.push_str(&format!(
                    "    {} [label=\"{}{}\"];\n",
                    n.id,
                    n.op.name(),
                    extra
                ));
            }
            s.push_str("  }\n");
        }
        for n in &self.nodes {
            for &i in &n.inputs {
                let style = if self.node(i).subprogram != n.subprogram {
                    " [style=dashed]" // cross-engine migration edge
                } else {
                    ""
                };
                s.push_str(&format!("  {} -> {}{};\n", i, n.id, style));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{Predicate, TableRef};

    fn sample() -> Program {
        // Fig. 5 in miniature: SQL scan -> sort (postgres) joined with a
        // graph match (neo4j), consumed by an ML train (spark).
        let mut p = Program::new();
        let scan = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![crate::op::SortSpec {
                    column: "date".into(),
                    ascending: true,
                }],
            },
            vec![scan],
            "sql",
        );
        let gmatch = p.add_source(
            Operator::GraphMatch {
                table: TableRef::new("neo", "patients"),
                start_label: "Patient".into(),
                steps: vec![(Some("HAS".into()), None)],
            },
            "cypher",
        );
        let join = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![sort, gmatch],
            "python",
        );
        p.mark_output(join);
        p
    }

    #[test]
    fn topo_order_respects_edges() {
        let p = sample();
        let order = p.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in p.nodes() {
            for i in &n.inputs {
                assert!(pos[i] < pos[&n.id]);
            }
        }
    }

    #[test]
    fn stages_group_by_depth() {
        let p = sample();
        let stages = p.stages().unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].len(), 2); // both sources
        assert_eq!(stages[2], vec![NodeId(3)]);
    }

    #[test]
    fn cross_subprogram_edges_found() {
        let p = sample();
        let cross = p.cross_subprogram_edges();
        assert_eq!(cross.len(), 2); // sort->join and match->join
        assert_eq!(p.subprograms(), vec!["sql", "cypher", "python"]);
    }

    #[test]
    fn validate_catches_bad_arity() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("e", "t")), "sql");
        p.add_node(
            Operator::HashJoin {
                left_on: "a".into(),
                right_on: "b".into(),
            },
            vec![s], // needs 2 inputs
            "sql",
        );
        assert!(matches!(p.validate(), Err(Error::Semantic(_))));
    }

    #[test]
    fn validate_ok_on_sample() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn cycle_detected() {
        let mut p = sample();
        // Force a cycle by editing the raw inputs.
        p.node_mut(NodeId(0)).inputs = vec![NodeId(3)];
        assert!(p.topo_order().is_err());
    }

    #[test]
    fn dot_contains_clusters_and_dashed_migrations() {
        let p = sample();
        let dot = p.to_dot();
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("hash_join"));
    }

    #[test]
    fn histogram_counts_ops() {
        let p = sample();
        let h = p.op_histogram();
        assert_eq!(h["scan"], 1);
        assert_eq!(h["hash_join"], 1);
    }

    #[test]
    fn outputs_deduplicated() {
        let mut p = sample();
        p.mark_output(NodeId(3));
        assert_eq!(p.outputs().len(), 1);
    }

    #[test]
    fn filter_predicate_embedded() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("e", "t")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::gt("age", 64i64),
            },
            vec![s],
            "sql",
        );
        match &p.node(f).op {
            Operator::Filter { predicate } => {
                assert_eq!(
                    predicate.selectivity(),
                    Predicate::gt("age", 64i64).selectivity()
                );
            }
            _ => panic!("wrong op"),
        }
    }
}

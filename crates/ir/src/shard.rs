//! The physical shard plan: every IR node annotated with its output
//! [`Distribution`], scatter set, and one typed [`ExchangeKind`] per
//! input edge, computed once at planning time.
//!
//! Polystore++ argues cross-engine data movement is the dominant cost
//! and must be optimizer-visible rather than an executor side effect
//! (§IV-A.b); BigDAWG routes cross-island queries through explicit
//! CAST/migration steps the same way. [`ShardPlan::plan`] therefore
//! makes *every* re-layout an explicit exchange edge the cost model can
//! price:
//!
//! * a `Scan` of a partitioned table inherits its
//!   [`PartitionSpec`]'s distribution (normalized: width-1 layouts plan
//!   as [`Distribution::Single`] — see [`Distribution::normalize`], the
//!   one rule deciding when "partitioned" means "multi-shard") and fans
//!   out over its scatter set;
//! * `Filter` preserves its input's distribution and `Project`
//!   preserves it only while the partition key survives — both consume
//!   the input through [`ExchangeKind::Local`] edges (aligned per-shard
//!   partials, no data movement);
//! * a `HashJoin` whose inputs are compatibly partitioned on the join
//!   keys (see [`Distribution::join`]) stays partitioned and executes
//!   *colocated*; a replicated build side rides an
//!   [`ExchangeKind::Broadcast`] edge. A `HashJoin` on *mismatched*
//!   layouts no longer collapses to a single gathered task: when the
//!   exchange pays (see [`exchange_pays`]) the planner emits
//!   [`ExchangeKind::ShuffleHash`] edges that re-hash each side's rows
//!   to the join key's layout, keeping the join one build+probe task
//!   per destination shard;
//! * `GroupBy` over a partitioned input splits into per-shard stages:
//!   *partition-wise* (a plain colocated fan-out) when the group keys
//!   contain the partition key, or per-shard partial aggregation
//!   spliced by an [`ExchangeKind::MergePartials`] edge otherwise;
//! * every other operator gathers its partitioned inputs through
//!   explicit [`ExchangeKind::Gather`] edges and produces
//!   [`Distribution::Single`] output. (`SortMergeJoin` deliberately
//!   gathers: its output is globally key-sorted, which a shard-ordered
//!   concatenation of per-shard merges would not reproduce.)
//!
//! The gather-vs-shuffle choice is a pure function of the program's
//! cardinality annotations ([`exchange_pays`]), so the optimizer's
//! pricing pass and the executor's planning pass — which both call
//! [`ShardPlan::plan`] on the same annotated program — always agree on
//! the plan that runs.

use serde::{Deserialize, Serialize};

use pspp_common::partition::{fnv1a, FNV_OFFSET};
use pspp_common::{
    CopyKey, Distribution, JoinDistribution, PartitionSpec, Result, ShardId, TableRef,
};

use crate::graph::{NodeId, Program};
use crate::op::Operator;

/// Simulated per-destination-shard overhead of an exchange, in row
/// units: the fixed cost of opening a shard bucket, the barrier join,
/// and the ordered splice, expressed as "rows' worth of routing work".
/// An exchange over `w` destinations pays `w * EXCHANGE_OVERHEAD_ROWS`
/// up front; re-laying-out `r` rows saves `r * (1 - 1/w)` rows of
/// single-site work, which is the crossover [`exchange_pays`] tests.
pub const EXCHANGE_OVERHEAD_ROWS: f64 = 256.0;

/// The cost rule choosing shuffle/merge-partials over a gather: an
/// exchange over `width` destination shards pays when the per-shard
/// parallelism it buys (`rows * (1 - 1/width)` rows of work saved)
/// exceeds its per-shard overhead (`width * `[`EXCHANGE_OVERHEAD_ROWS`]
/// rows of routing work). With no cardinality estimate (`None` — the
/// program was never costed) the planner defaults to the exchange,
/// matching the executor's exchange-on default.
pub fn exchange_pays(est_rows: Option<f64>, width: usize) -> bool {
    let w = width as f64;
    match est_rows {
        None => true,
        Some(rows) => rows * (1.0 - 1.0 / w) > w * EXCHANGE_OVERHEAD_ROWS,
    }
}

/// Memory bandwidth assumed for persisting an already-routed shuffle
/// layout as a materialized copy: the rows are in memory and bucketed,
/// so the copy streams at DRAM speed rather than the interconnect's.
pub const REPARTITION_COPY_BPS: f64 = 10e9;

/// The cost rule deciding when a shuffle layout is worth persisting:
/// materialize once the *cumulative* simulated seconds spent
/// re-shuffling the same subtree this epoch exceed the one-time cost
/// of copying its `bytes` at memory speed. A single 10GbE shuffle of
/// N bytes already costs ~8x the memory copy, so a hot layout
/// materializes on its first routing; a layout whose shuffles are
/// dominated by fixed overhead waits until repetition proves it hot.
pub fn repartition_pays(cumulative_shuffle_seconds: f64, bytes: u64) -> bool {
    cumulative_shuffle_seconds > bytes as f64 / REPARTITION_COPY_BPS
}

/// A stable digest of the operator subtree rooted at `id`: the ops of
/// every reachable node folded in a deterministic DFS order. Two
/// shuffles share a digest exactly when they route the output of an
/// identical operator chain — pushed-down filters and projections
/// change the digest, so a materialized copy of a filtered scan never
/// serves the unfiltered one.
pub fn subtree_signature(program: &Program, id: NodeId) -> u64 {
    fn visit(program: &Program, id: NodeId, seen: &mut Vec<bool>, hash: &mut u64) {
        if std::mem::replace(&mut seen[id.0], true) {
            return;
        }
        let node = program.node(id);
        *hash = fnv1a(format!("{:?}", node.op).as_bytes(), *hash);
        *hash = fnv1a(&[u8::from(node.annotations.fused_into_consumer)], *hash);
        for &input in &node.inputs {
            visit(program, input, seen, hash);
        }
    }
    let mut hash = FNV_OFFSET;
    let mut seen = vec![false; program.len()];
    visit(program, id, &mut seen, &mut hash);
    hash
}

/// The single stored table feeding the subtree rooted at `id`, when
/// exactly one scan does — the anchor of a materialized repartition's
/// [`CopyKey`]. Multi-table subtrees (a shuffled join of joins) return
/// `None` and are never materialized.
pub fn subtree_source_table(program: &Program, id: NodeId) -> Option<TableRef> {
    fn visit(program: &Program, id: NodeId, seen: &mut Vec<bool>, tables: &mut Vec<TableRef>) {
        if std::mem::replace(&mut seen[id.0], true) {
            return;
        }
        let node = program.node(id);
        if let Some(t) = node.op.source_table() {
            if !tables.contains(t) {
                tables.push(t.clone());
            }
        }
        for &input in &node.inputs {
            visit(program, input, seen, tables);
        }
    }
    let mut seen = vec![false; program.len()];
    let mut tables = Vec::new();
    visit(program, id, &mut seen, &mut tables);
    match tables.as_slice() {
        [one] => Some(one.clone()),
        _ => None,
    }
}

/// The [`CopyKey`] identifying a materialized layout of input edge
/// `input` shuffled on `key` to `width` shards — `None` when the
/// subtree has no single source table to anchor the copy.
pub fn shuffle_copy_key(
    program: &Program,
    input: NodeId,
    key: &str,
    width: u32,
) -> Option<CopyKey> {
    let table = subtree_source_table(program, input)?;
    Some(CopyKey {
        table,
        column: key.to_owned(),
        width,
        signature: subtree_signature(program, input),
    })
}

/// How one input edge's rows reach the consuming node's tasks — the
/// typed exchange vocabulary every re-layout goes through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExchangeKind {
    /// No data movement: a single-site consumer reads the input's
    /// gathered result in place, or an aligned colocated task reads its
    /// own shard's partial.
    Local,
    /// The input's per-shard partials are spliced to one site in shard
    /// order before the (single-task) consumer runs.
    Gather,
    /// Every destination task reads the input's full copy (a replicated
    /// build side, or an unsharded input feeding a fanned-out join).
    Broadcast,
    /// The input's rows are re-hashed on `key` into `width` destination
    /// buckets by the stable FNV routing rule
    /// ([`Distribution::route_indices`]); destination task `k` consumes
    /// bucket `k`.
    ShuffleHash {
        /// Column whose hash routes each row.
        key: String,
        /// Number of destination shards.
        width: u32,
    },
    /// The consumer runs a per-shard *partial* aggregation over the
    /// input's partials, and a merge stage combines the partial states
    /// in shard order (partial-aggregate + merge `GroupBy`).
    MergePartials,
}

impl ExchangeKind {
    /// Whether the edge physically moves rows between shards (priced
    /// like migration by the cost model).
    pub fn moves_rows(&self) -> bool {
        !matches!(self, ExchangeKind::Local)
    }
}

impl std::fmt::Display for ExchangeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeKind::Local => write!(f, "local"),
            ExchangeKind::Gather => write!(f, "gather"),
            ExchangeKind::Broadcast => write!(f, "broadcast"),
            ExchangeKind::ShuffleHash { key, width } => write!(f, "shuffle({key}) x {width}"),
            ExchangeKind::MergePartials => write!(f, "merge-partials"),
        }
    }
}

/// Exchange-edge totals over a plan, reported by the optimizer's
/// placement summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExchangeCounts {
    /// [`ExchangeKind::Gather`] edges.
    pub gathers: usize,
    /// [`ExchangeKind::Broadcast`] edges.
    pub broadcasts: usize,
    /// [`ExchangeKind::ShuffleHash`] edges that still route rows.
    pub shuffles: usize,
    /// [`ExchangeKind::MergePartials`] edges.
    pub merge_partials: usize,
    /// [`ExchangeKind::ShuffleHash`] edges served from a materialized
    /// repartition: the layout is persisted, so no rows move.
    #[serde(default)]
    pub materialized: usize,
}

impl ExchangeCounts {
    /// Total number of row-moving exchange edges (a materialized
    /// shuffle moves none).
    pub fn total(&self) -> usize {
        self.gathers + self.broadcasts + self.shuffles + self.merge_partials
    }
}

/// Switches for the distribution-planning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Execute compatibly-partitioned joins (and distribution-preserving
    /// filters/projections/aggregations) per shard. Off reverts every
    /// non-source node to a gather — the PR-3 baseline plan.
    pub colocate: bool,
    /// Emit shuffle/merge-partials exchanges for mismatched-key joins
    /// and non-partition-wise `GroupBy`s. Off reverts those nodes to
    /// gathers — the gathered baseline E19 compares against.
    pub exchange: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            colocate: true,
            exchange: true,
        }
    }
}

impl PlanOptions {
    /// The PR-3 gather-everything baseline.
    pub fn gathered() -> Self {
        PlanOptions {
            colocate: false,
            exchange: false,
        }
    }
}

/// One node's slice of the shard plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeShard {
    /// How the node's output rows are distributed across shards.
    pub distribution: Distribution,
    /// The shard tasks the node fans out into, in gather order.
    pub scatter: Vec<ShardId>,
    /// Whether the node executes colocated: one task per scatter
    /// entry, each consuming its aligned inputs' per-shard partials
    /// through [`ExchangeKind::Local`] edges.
    pub colocated: bool,
    /// Whether a fanned-out consumer reads this node's per-shard
    /// partials, so the executor must retain them past the gather.
    pub partials_needed: bool,
    /// How each input edge's rows reach this node's tasks, parallel to
    /// the node's input list (empty for sources).
    pub exchanges: Vec<ExchangeKind>,
    /// Parallel to `exchanges` when non-empty: `true` marks a
    /// [`ExchangeKind::ShuffleHash`] edge whose routing is served from
    /// a materialized repartition (no rows move). Empty means no edge
    /// is served.
    #[serde(default)]
    pub copy_served: Vec<bool>,
}

impl NodeShard {
    /// The plan entry of unsharded work: single-site output, one
    /// shard-0 task.
    pub fn single() -> Self {
        NodeShard {
            distribution: Distribution::Single,
            scatter: vec![ShardId::ZERO],
            colocated: false,
            partials_needed: false,
            exchanges: Vec::new(),
            copy_served: Vec::new(),
        }
    }

    /// Whether input edge `idx`'s shuffle is served from a
    /// materialized repartition.
    pub fn is_copy_served(&self, idx: usize) -> bool {
        self.copy_served.get(idx).copied().unwrap_or(false)
    }

    /// Number of tasks the node fans out into.
    pub fn scatter_width(&self) -> usize {
        self.scatter.len()
    }

    /// The exchange on input edge `idx` ([`ExchangeKind::Local`] when
    /// the plan recorded none — sources and default entries).
    pub fn exchange(&self, idx: usize) -> &ExchangeKind {
        self.exchanges.get(idx).unwrap_or(&ExchangeKind::Local)
    }

    /// Whether any input edge is a [`ExchangeKind::ShuffleHash`].
    pub fn shuffles(&self) -> bool {
        self.exchanges
            .iter()
            .any(|e| matches!(e, ExchangeKind::ShuffleHash { .. }))
    }

    /// Whether any input edge is a [`ExchangeKind::MergePartials`].
    pub fn merges_partials(&self) -> bool {
        self.exchanges
            .iter()
            .any(|e| matches!(e, ExchangeKind::MergePartials))
    }

    /// The inputs this node consumes through an explicit gather.
    pub fn gathered_input_count(&self) -> usize {
        self.exchanges
            .iter()
            .filter(|e| matches!(e, ExchangeKind::Gather))
            .count()
    }
}

impl Default for NodeShard {
    fn default() -> Self {
        NodeShard::single()
    }
}

/// The physical distribution plan for one program: a [`NodeShard`] per
/// IR node.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardPlan {
    nodes: Vec<NodeShard>,
}

impl ShardPlan {
    /// Plans distribution for `program`: propagates each source
    /// table's partition spec (`spec_of`) through the operator
    /// lattice, emitting one typed [`ExchangeKind`] per input edge.
    /// The gather-vs-shuffle choice reads the program's `est_rows`
    /// annotations through [`exchange_pays`], so a costed program plans
    /// identically under the optimizer and the executor.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::Semantic`] on cyclic programs and
    /// [`pspp_common::Error::EmptyShardSet`]/[`pspp_common::Error::Config`]
    /// for invalid partition specs.
    pub fn plan<F>(program: &Program, spec_of: F, options: PlanOptions) -> Result<ShardPlan>
    where
        F: Fn(&TableRef) -> Option<PartitionSpec>,
    {
        Self::plan_with_copies(program, spec_of, |_| false, options)
    }

    /// [`ShardPlan::plan`] consulting a materialized-repartition store:
    /// `copy_of` answers whether a live persisted layout exists for a
    /// [`CopyKey`]. Shuffle edges whose layout is stored are marked
    /// [`NodeShard::is_copy_served`] — the executor serves them from
    /// the copy (zero rows routed) and the cost model prices them
    /// free — and a fully-served shuffle is planned even when
    /// [`exchange_pays`] alone would have gathered.
    ///
    /// # Errors
    ///
    /// As [`ShardPlan::plan`].
    pub fn plan_with_copies<F, C>(
        program: &Program,
        spec_of: F,
        copy_of: C,
        options: PlanOptions,
    ) -> Result<ShardPlan>
    where
        F: Fn(&TableRef) -> Option<PartitionSpec>,
        C: Fn(&CopyKey) -> bool,
    {
        let order = program.topo_order()?;
        let mut nodes: Vec<NodeShard> = vec![NodeShard::single(); program.len()];
        for id in order {
            let node = program.node(id);
            let entry = if node.annotations.fused_into_consumer {
                // A fused pass-through aliases its input: consumers see
                // through it to the producer's distribution.
                node.inputs.first().map_or_else(NodeShard::single, |i| {
                    let mut e = nodes[i.0].clone();
                    e.colocated = false;
                    e.partials_needed = false;
                    e.exchanges.clear();
                    e.copy_served.clear();
                    e
                })
            } else if let Some(table) = node.op.source_table() {
                match spec_of(table) {
                    Some(spec) => {
                        spec.validate()?;
                        // The one width rule: width-1 layouts plan as
                        // unsharded work.
                        let distribution = Distribution::from_spec(&spec).normalize();
                        NodeShard {
                            scatter: distribution.scatter(),
                            distribution,
                            colocated: false,
                            partials_needed: false,
                            exchanges: Vec::new(),
                            copy_served: Vec::new(),
                        }
                    }
                    None => NodeShard::single(),
                }
            } else {
                match &node.op {
                    Operator::Filter { .. } if options.colocate => {
                        Self::preserve(&nodes, node.inputs[0], None)
                    }
                    Operator::Project { columns } if options.colocate => {
                        Self::preserve(&nodes, node.inputs[0], Some(columns))
                    }
                    Operator::HashJoin { left_on, right_on } if options.colocate => {
                        Self::plan_hash_join(
                            program, &nodes, id, left_on, right_on, &copy_of, options,
                        )
                    }
                    Operator::GroupBy { keys, .. } if options.colocate => {
                        Self::plan_group_by(program, &nodes, id, keys, options)
                    }
                    _ => Self::gather_all(&nodes, node.inputs.iter()),
                }
            };
            nodes[id.0] = entry;
        }
        // Mark the executing producer (resolving through fused
        // aliases) of every input whose per-shard partials a
        // fanned-out consumer reads — Local edges of colocated nodes
        // and every MergePartials edge — so the executor retains them
        // past the gather.
        for n in program.nodes() {
            if n.annotations.fused_into_consumer {
                continue;
            }
            let entry = nodes[n.id.0].clone();
            for (idx, &input) in n.inputs.iter().enumerate() {
                let reads_partials = match entry.exchange(idx) {
                    ExchangeKind::Local => {
                        entry.colocated && nodes[input.0].distribution.is_partitioned()
                    }
                    ExchangeKind::MergePartials => true,
                    _ => false,
                };
                if !reads_partials {
                    continue;
                }
                let mut p = input;
                loop {
                    nodes[p.0].partials_needed = true;
                    if program.node(p).annotations.fused_into_consumer {
                        p = program.node(p).inputs[0];
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(ShardPlan { nodes })
    }

    /// Plans a hash join: colocated when the layouts align, otherwise a
    /// cost-chosen shuffle (re-hash both sides to the join keys'
    /// layout) or an explicit gather. Shuffle edges whose routed
    /// layout is already materialized (`copy_of`) are marked served —
    /// and a join whose every shuffle edge is served plans the shuffle
    /// even when [`exchange_pays`] would have gathered, because the
    /// movement it prices no longer happens.
    fn plan_hash_join(
        program: &Program,
        nodes: &[NodeShard],
        id: NodeId,
        left_on: &str,
        right_on: &str,
        copy_of: &impl Fn(&CopyKey) -> bool,
        options: PlanOptions,
    ) -> NodeShard {
        let inputs = &program.node(id).inputs;
        let (l, r) = (&nodes[inputs[0].0], &nodes[inputs[1].0]);
        match Distribution::join(&l.distribution, left_on, &r.distribution, right_on) {
            JoinDistribution::Colocated { output } => NodeShard {
                // A colocated outcome always has a multi-shard
                // partitioned probe (left) side — width-1 layouts were
                // normalized to Single at the source — and its scatter
                // drives the join's tasks. The build side is either
                // aligned (Local) or a replicated broadcast.
                scatter: l.scatter.clone(),
                distribution: output,
                colocated: true,
                partials_needed: false,
                exchanges: vec![
                    ExchangeKind::Local,
                    if r.distribution.is_partitioned() {
                        ExchangeKind::Local
                    } else {
                        ExchangeKind::Broadcast
                    },
                ],
                copy_served: Vec::new(),
            },
            JoinDistribution::Gather => {
                // Mismatched layouts: shuffle both sides to the join
                // keys' layout when the exchange pays, else gather.
                let width = [l, r]
                    .iter()
                    .filter(|n| n.distribution.is_partitioned())
                    .map(|n| n.distribution.shard_count())
                    .max()
                    .unwrap_or(1);
                let est = Self::edge_rows(program, inputs.iter());
                let w = width as u32;
                let served = |input: NodeId, key: &str| {
                    shuffle_copy_key(program, input, key, w).is_some_and(|k| copy_of(&k))
                };
                let left_served = width > 1 && served(inputs[0], left_on);
                let right_shuffles = r.distribution.is_partitioned();
                let right_served = right_shuffles && width > 1 && served(inputs[1], right_on);
                let all_served = left_served && (!right_shuffles || right_served);
                if options.exchange && width > 1 && (all_served || exchange_pays(est, width)) {
                    NodeShard {
                        // The splice restores the gathered probe order,
                        // so the shuffled join's output is Single — a
                        // downstream consumer sees exactly the gathered
                        // plan's bytes.
                        distribution: Distribution::Single,
                        scatter: (0..w).map(ShardId).collect(),
                        colocated: false,
                        partials_needed: false,
                        exchanges: vec![
                            ExchangeKind::ShuffleHash {
                                key: left_on.to_owned(),
                                width: w,
                            },
                            if right_shuffles {
                                ExchangeKind::ShuffleHash {
                                    key: right_on.to_owned(),
                                    width: w,
                                }
                            } else {
                                ExchangeKind::Broadcast
                            },
                        ],
                        copy_served: vec![left_served, right_served],
                    }
                } else {
                    Self::gather_all(nodes, inputs.iter())
                }
            }
        }
    }

    /// Plans a group-by over a partitioned input: partition-wise when
    /// the group keys contain the partition key (each group lives
    /// wholly on one shard, so per-shard aggregation concatenated in
    /// shard order is the gathered answer), partial-aggregate + merge
    /// when the exchange pays, an explicit gather otherwise.
    fn plan_group_by(
        program: &Program,
        nodes: &[NodeShard],
        id: NodeId,
        keys: &[String],
        options: PlanOptions,
    ) -> NodeShard {
        let inputs = &program.node(id).inputs;
        let src = &nodes[inputs[0].0];
        if !src.distribution.is_partitioned() {
            return Self::gather_all(nodes, inputs.iter());
        }
        let partition_key = src
            .distribution
            .key()
            .expect("partitioned layouts are keyed");
        if keys.iter().any(|k| k == partition_key) {
            // Partition-wise: the group keys pin every group to one
            // shard, and the key column survives into the output.
            return NodeShard {
                distribution: src.distribution.clone(),
                scatter: src.scatter.clone(),
                colocated: true,
                partials_needed: false,
                exchanges: vec![ExchangeKind::Local],
                copy_served: Vec::new(),
            };
        }
        let width = src.scatter.len();
        let est = Self::edge_rows(program, inputs.iter());
        if options.exchange && exchange_pays(est, width) {
            NodeShard {
                distribution: Distribution::Single,
                scatter: src.scatter.clone(),
                colocated: false,
                partials_needed: false,
                exchanges: vec![ExchangeKind::MergePartials],
                copy_served: Vec::new(),
            }
        } else {
            Self::gather_all(nodes, inputs.iter())
        }
    }

    /// Total estimated rows crossing the given input edges, from the
    /// program's cardinality annotations; `None` when any edge is
    /// un-estimated (an uncosted program).
    fn edge_rows<'a>(program: &Program, inputs: impl Iterator<Item = &'a NodeId>) -> Option<f64> {
        let mut total = 0.0;
        for &i in inputs {
            total += program.node(i).annotations.est_rows?;
        }
        Some(total)
    }

    /// A single-input node preserving its input's distribution: when
    /// the input is partitioned the node executes colocated (one task
    /// per shard partial); `columns` applies the projection rule.
    fn preserve(nodes: &[NodeShard], input: NodeId, columns: Option<&Vec<String>>) -> NodeShard {
        let src = &nodes[input.0];
        let distribution = match columns {
            Some(cols) => src.distribution.after_projection(cols),
            None => src.distribution.clone(),
        };
        if distribution.is_partitioned() && src.distribution.is_partitioned() {
            NodeShard {
                scatter: src.scatter.clone(),
                distribution,
                colocated: true,
                partials_needed: false,
                exchanges: vec![ExchangeKind::Local],
                copy_served: Vec::new(),
            }
        } else if src.distribution.is_partitioned() {
            // Re-keyed projection: explicit gather of the input.
            NodeShard {
                exchanges: vec![ExchangeKind::Gather],
                ..NodeShard::single()
            }
        } else {
            NodeShard {
                distribution,
                exchanges: vec![ExchangeKind::Local],
                ..NodeShard::single()
            }
        }
    }

    /// A node that gathers every partitioned input and runs at one
    /// site.
    fn gather_all<'a>(nodes: &[NodeShard], inputs: impl Iterator<Item = &'a NodeId>) -> NodeShard {
        NodeShard {
            exchanges: inputs
                .map(|i| {
                    if nodes[i.0].distribution.is_partitioned() {
                        ExchangeKind::Gather
                    } else {
                        ExchangeKind::Local
                    }
                })
                .collect(),
            ..NodeShard::single()
        }
    }

    /// One node's plan entry.
    ///
    /// # Panics
    ///
    /// Panics on ids from a different program.
    pub fn node(&self, id: NodeId) -> &NodeShard {
        &self.nodes[id.0]
    }

    /// Number of shard tasks `id` fans out into.
    pub fn scatter_width(&self, id: NodeId) -> usize {
        self.nodes[id.0].scatter_width()
    }

    /// Number of planned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The colocated nodes, in id order.
    pub fn colocated_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.colocated)
            .map(|(i, _)| NodeId(i))
    }

    /// Exchange-edge totals across the plan, by kind.
    pub fn exchange_counts(&self) -> ExchangeCounts {
        let mut counts = ExchangeCounts::default();
        for node in &self.nodes {
            for (idx, e) in node.exchanges.iter().enumerate() {
                match e {
                    ExchangeKind::Local => {}
                    ExchangeKind::Gather => counts.gathers += 1,
                    ExchangeKind::Broadcast => counts.broadcasts += 1,
                    ExchangeKind::ShuffleHash { .. } if node.is_copy_served(idx) => {
                        counts.materialized += 1;
                    }
                    ExchangeKind::ShuffleHash { .. } => counts.shuffles += 1,
                    ExchangeKind::MergePartials => counts.merge_partials += 1,
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AggFn, AggSpec};
    use pspp_common::{Predicate, Value};

    fn spec_map(
        specs: Vec<(TableRef, PartitionSpec)>,
    ) -> impl Fn(&TableRef) -> Option<PartitionSpec> {
        move |t: &TableRef| {
            specs
                .iter()
                .find(|(table, _)| table == t)
                .map(|(_, s)| s.clone())
        }
    }

    fn join_program(left: TableRef, right: TableRef, on: &str) -> (Program, NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(left), "sql");
        let b = p.add_source(Operator::scan(right), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: on.into(),
                right_on: on.into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        (p, j)
    }

    fn group_program(table: TableRef, keys: &[&str]) -> (Program, NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(table), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                keys: keys.iter().map(|k| (*k).into()).collect(),
                aggs: vec![AggSpec {
                    func: AggFn::Count,
                    column: "*".into(),
                    output: "n".into(),
                }],
            },
            vec![a],
            "sql",
        );
        p.mark_output(g);
        (p, g)
    }

    #[test]
    fn unpartitioned_program_is_all_single() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "k");
        let plan = ShardPlan::plan(&p, |_| None, PlanOptions::default()).unwrap();
        assert_eq!(plan.len(), 3);
        for n in p.nodes() {
            assert_eq!(plan.node(n.id).distribution, Distribution::Single);
            assert!(!plan.node(n.id).colocated);
            assert!(!plan.node(n.id).shuffles());
        }
        assert_eq!(plan.scatter_width(j), 1);
        assert_eq!(plan.exchange_counts(), ExchangeCounts::default());
    }

    #[test]
    fn compatible_hash_join_colocates_and_keeps_distribution() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 4)),
        ]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        let join = plan.node(j);
        assert!(join.colocated);
        assert_eq!(join.scatter_width(), 4);
        assert_eq!(join.distribution.key(), Some("pid"));
        assert_eq!(
            join.exchanges,
            vec![ExchangeKind::Local, ExchangeKind::Local]
        );
        // Both scan producers must retain their per-shard partials.
        assert!(plan.node(NodeId(0)).partials_needed);
        assert!(plan.node(NodeId(1)).partials_needed);
        assert_eq!(plan.colocated_nodes().collect::<Vec<_>>(), vec![j]);
    }

    #[test]
    fn mismatched_keys_shuffle_both_sides_by_default() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            // Partitioned on the wrong column: cannot colocate, but the
            // shuffle keeps the join per-shard.
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        let join = plan.node(j);
        assert!(!join.colocated);
        assert!(join.shuffles());
        assert_eq!(join.scatter_width(), 4, "one build+probe task per shard");
        assert_eq!(
            join.exchanges,
            vec![
                ExchangeKind::ShuffleHash {
                    key: "pid".into(),
                    width: 4
                },
                ExchangeKind::ShuffleHash {
                    key: "pid".into(),
                    width: 4
                },
            ]
        );
        // The spliced output is the gathered plan's bytes.
        assert_eq!(join.distribution, Distribution::Single);
        // Shuffle reads gathered inputs, not partials.
        assert!(!plan.node(NodeId(0)).partials_needed);
        assert_eq!(plan.exchange_counts().shuffles, 2);
    }

    #[test]
    fn small_estimated_joins_gather_instead_of_shuffling() {
        let (mut p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        // Tiny estimated inputs: the per-shard exchange overhead beats
        // the parallelism, so the planner gathers.
        for id in [NodeId(0), NodeId(1)] {
            p.node_mut(id).annotations.est_rows = Some(100.0);
        }
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        let join = plan.node(j);
        assert!(!join.shuffles());
        assert_eq!(join.gathered_input_count(), 2);
        assert_eq!(join.scatter_width(), 1);

        // Large estimates flip the same plan to a shuffle.
        for id in [NodeId(0), NodeId(1)] {
            p.node_mut(id).annotations.est_rows = Some(100_000.0);
        }
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        assert!(plan.node(j).shuffles());
        assert_eq!(plan.node(j).scatter_width(), 4);
    }

    #[test]
    fn exchange_off_reverts_mismatched_joins_to_gather() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        let plan = ShardPlan::plan(
            &p,
            &specs,
            PlanOptions {
                colocate: true,
                exchange: false,
            },
        )
        .unwrap();
        let join = plan.node(j);
        assert!(!join.shuffles(), "exchange(false) is the gathered baseline");
        assert_eq!(join.gathered_input_count(), 2);
        assert_eq!(join.distribution, Distribution::Single);
        // Compatible joins still colocate under exchange(false).
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 4)),
        ]);
        let plan = ShardPlan::plan(
            &p,
            &specs,
            PlanOptions {
                colocate: true,
                exchange: false,
            },
        )
        .unwrap();
        assert!(plan.node(j).colocated);
    }

    #[test]
    fn shuffle_against_an_unsharded_side_broadcasts_it() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("age", 4),
        )]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        let join = plan.node(j);
        assert!(join.shuffles());
        assert_eq!(
            join.exchanges[1],
            ExchangeKind::Broadcast,
            "the unsharded build side is broadcast to every task"
        );
        assert_eq!(plan.exchange_counts().broadcasts, 1);
    }

    #[test]
    fn group_by_on_partition_key_is_partition_wise() {
        let (p, g) = group_program(TableRef::new("db1", "a"), &["pid", "age"]);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 4),
        )]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        let group = plan.node(g);
        assert!(group.colocated, "each group lives wholly on one shard");
        assert_eq!(group.scatter_width(), 4);
        assert_eq!(group.distribution.key(), Some("pid"));
        assert_eq!(group.exchanges, vec![ExchangeKind::Local]);
        assert!(plan.node(NodeId(0)).partials_needed);
        // Partition-wise grouping is a colocation feature, not an
        // exchange: it survives exchange(false) like colocated joins
        // do, and reverts only with colocate(false).
        let plan = ShardPlan::plan(
            &p,
            &specs,
            PlanOptions {
                colocate: true,
                exchange: false,
            },
        )
        .unwrap();
        assert!(plan.node(g).colocated);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::gathered()).unwrap();
        assert!(!plan.node(g).colocated);
        assert_eq!(plan.node(g).gathered_input_count(), 1);
    }

    #[test]
    fn group_by_off_partition_key_splits_into_partial_plus_merge() {
        let (p, g) = group_program(TableRef::new("db1", "a"), &["age"]);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 4),
        )]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        let group = plan.node(g);
        assert!(!group.colocated);
        assert!(group.merges_partials());
        assert_eq!(group.scatter_width(), 4, "one partial task per shard");
        assert_eq!(group.distribution, Distribution::Single);
        assert!(
            plan.node(NodeId(0)).partials_needed,
            "partial aggregation reads the scan's per-shard partials"
        );
        assert_eq!(plan.exchange_counts().merge_partials, 1);

        // The exchange toggle reverts it to a gather.
        let plan = ShardPlan::plan(
            &p,
            &specs,
            PlanOptions {
                colocate: true,
                exchange: false,
            },
        )
        .unwrap();
        assert!(!plan.node(g).merges_partials());
        assert_eq!(plan.node(g).gathered_input_count(), 1);
    }

    #[test]
    fn tiny_group_by_gathers_by_cost() {
        let (mut p, g) = group_program(TableRef::new("db1", "a"), &["age"]);
        p.node_mut(NodeId(0)).annotations.est_rows = Some(50.0);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 4),
        )]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        assert!(!plan.node(g).merges_partials());
        assert_eq!(plan.node(g).gathered_input_count(), 1);
    }

    #[test]
    fn width_one_layouts_plan_as_single_everywhere() {
        // The unified width-1 rule: a hashed x1 layout must not take
        // any colocated/partial code path — it plans exactly like
        // unsharded data.
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 1)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 1)),
        ]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        for n in p.nodes() {
            let e = plan.node(n.id);
            assert_eq!(e.distribution, Distribution::Single, "node {}", n.id);
            assert!(!e.colocated && !e.partials_needed && !e.shuffles());
            assert_eq!(e.scatter_width(), 1);
        }
        assert_eq!(plan.exchange_counts(), ExchangeCounts::default());
        assert_eq!(plan.scatter_width(j), 1);
    }

    #[test]
    fn filter_preserves_and_join_colocates_through_it() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 10i64),
            },
            vec![a],
            "sql",
        );
        let b = p.add_source(Operator::scan(TableRef::new("db2", "b")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 2)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 2)),
        ]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        let filter = plan.node(f);
        assert!(filter.colocated, "filter executes per shard");
        assert_eq!(filter.distribution.key(), Some("pid"));
        assert_eq!(filter.scatter_width(), 2);
        assert!(filter.partials_needed, "join reads the filter's partials");
        assert!(plan.node(j).colocated);
    }

    #[test]
    fn projection_keeping_key_preserves_dropping_key_degrades() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let keep = p.add_node(
            Operator::Project {
                columns: vec!["pid".into(), "age".into()],
            },
            vec![a],
            "sql",
        );
        let drop = p.add_node(
            Operator::Project {
                columns: vec!["age".into()],
            },
            vec![keep],
            "sql",
        );
        p.mark_output(drop);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 3),
        )]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        assert!(plan.node(keep).colocated);
        assert_eq!(plan.node(keep).distribution.key(), Some("pid"));
        // Re-keying projection degrades to single with an explicit
        // gather of its (still partitioned) input.
        let rekeyed = plan.node(drop);
        assert!(!rekeyed.colocated);
        assert_eq!(rekeyed.distribution, Distribution::Single);
        assert_eq!(rekeyed.exchanges, vec![ExchangeKind::Gather]);
    }

    #[test]
    fn fused_aliases_are_transparent_to_colocation() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![a],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let b = p.add_source(Operator::scan(TableRef::new("db2", "b")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 2)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 2)),
        ]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        assert!(plan.node(j).colocated, "colocation sees through fusion");
        assert_eq!(plan.node(f).distribution.key(), Some("pid"));
        assert!(
            plan.node(a).partials_needed,
            "the executing producer behind the alias retains partials"
        );
        assert!(
            plan.node(f).partials_needed,
            "the alias forwards partials too"
        );
    }

    #[test]
    fn sort_gathers_partitioned_inputs() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let s = p.add_node(
            Operator::Sort {
                keys: vec![crate::op::SortSpec {
                    column: "pid".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        p.mark_output(s);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::range("pid", vec![Value::Int(10)]),
        )]);
        let plan = ShardPlan::plan(&p, specs, PlanOptions::default()).unwrap();
        assert_eq!(plan.node(a).scatter_width(), 2);
        assert_eq!(plan.node(s).distribution, Distribution::Single);
        assert_eq!(plan.node(s).exchanges, vec![ExchangeKind::Gather]);
    }

    #[test]
    fn colocate_off_reverts_to_gathered_joins() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 4)),
        ]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::gathered()).unwrap();
        assert!(!plan.node(j).colocated);
        assert_eq!(plan.node(j).gathered_input_count(), 2);
        // Scans still scatter: the PR-3 baseline keeps scan speedup.
        assert_eq!(plan.node(NodeId(0)).scatter_width(), 4);
    }

    #[test]
    fn materialized_copies_mark_shuffle_edges_served() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        // No copies: a plain shuffle.
        let plan =
            ShardPlan::plan_with_copies(&p, &specs, |_| false, PlanOptions::default()).unwrap();
        assert!(plan.node(j).shuffles());
        assert!(!plan.node(j).is_copy_served(0));
        assert_eq!(plan.exchange_counts().shuffles, 2);
        assert_eq!(plan.exchange_counts().materialized, 0);

        // Every layout materialized: both edges served, counted apart.
        let plan =
            ShardPlan::plan_with_copies(&p, &specs, |_| true, PlanOptions::default()).unwrap();
        let join = plan.node(j);
        assert!(join.shuffles(), "the edge kind is still a shuffle");
        assert!(join.is_copy_served(0) && join.is_copy_served(1));
        let counts = plan.exchange_counts();
        assert_eq!((counts.shuffles, counts.materialized), (0, 2));

        // Only the probe side materialized: the build still routes.
        let probe_key = shuffle_copy_key(&p, NodeId(0), "pid", 4).unwrap();
        assert_eq!(probe_key.table, TableRef::new("db1", "a"));
        let plan =
            ShardPlan::plan_with_copies(&p, &specs, |k| *k == probe_key, PlanOptions::default())
                .unwrap();
        let join = plan.node(j);
        assert!(join.is_copy_served(0) && !join.is_copy_served(1));
        let counts = plan.exchange_counts();
        assert_eq!((counts.shuffles, counts.materialized), (1, 1));
    }

    #[test]
    fn served_copies_flip_a_cost_gather_back_to_shuffle() {
        let (mut p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        // Tiny estimates gather without copies...
        for id in [NodeId(0), NodeId(1)] {
            p.node_mut(id).annotations.est_rows = Some(100.0);
        }
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        let plan = ShardPlan::plan(&p, &specs, PlanOptions::default()).unwrap();
        assert!(!plan.node(j).shuffles());
        // ...but with every layout persisted the shuffle is free, so
        // the planner keeps it.
        let plan =
            ShardPlan::plan_with_copies(&p, &specs, |_| true, PlanOptions::default()).unwrap();
        assert!(plan.node(j).shuffles());
        assert!(plan.node(j).is_copy_served(0));
    }

    #[test]
    fn subtree_signatures_distinguish_pushed_work() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 10i64),
            },
            vec![a],
            "sql",
        );
        p.mark_output(f);
        assert_ne!(
            subtree_signature(&p, a),
            subtree_signature(&p, f),
            "a filtered scan must not share a copy with the bare scan"
        );
        assert_eq!(subtree_source_table(&p, f), Some(TableRef::new("db1", "a")));
        // A join of two tables has no single anchor table.
        let (p2, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        assert_eq!(subtree_source_table(&p2, j), None);
        assert!(shuffle_copy_key(&p2, j, "pid", 4).is_none());
    }

    #[test]
    fn repartition_pays_weighs_cumulative_shuffles_against_the_copy() {
        let bytes = 1_000_000u64; // 1 MB -> 100 us memory copy
        assert!(!repartition_pays(50e-6, bytes));
        assert!(repartition_pays(150e-6, bytes));
        assert!(repartition_pays(1e-9, 0), "empty layouts are free to keep");
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let (p, _) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 0),
        )]);
        assert!(matches!(
            ShardPlan::plan(&p, specs, PlanOptions::default()),
            Err(pspp_common::Error::EmptyShardSet(_))
        ));
    }
}

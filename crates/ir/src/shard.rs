//! The physical shard plan: every IR node annotated with its output
//! [`Distribution`] and scatter set, computed once at planning time.
//!
//! PR 3 made sharding an *execution-time* detail: the executor widened
//! partitioned scans into per-shard tasks but gathered everything
//! before any multi-input operator, and the optimizer priced every
//! node as unsharded. [`ShardPlan::plan`] lifts distribution into a
//! first-class plan property instead (§IV-B.3: the core decides where
//! each task runs with a model that sees the real layout):
//!
//! * a `Scan` of a partitioned table inherits its
//!   [`PartitionSpec`]'s distribution and fans out over its scatter
//!   set;
//! * `Filter` preserves its input's distribution (a per-shard filter
//!   followed by a shard-ordered gather is bit-identical to filtering
//!   the gathered rows);
//! * `Project` preserves it only while the partition key survives the
//!   column list — a re-keying projection degrades to
//!   [`Distribution::Single`];
//! * a `HashJoin` whose inputs are compatibly partitioned on the join
//!   keys (see [`Distribution::join`]) stays partitioned and executes
//!   *colocated* — one task per shard, build + probe on that shard's
//!   rows; incompatible layouts get an explicit gather, recorded in
//!   [`NodeShard::gathered_inputs`] — never a silent wrong answer;
//! * every other operator gathers its inputs and produces
//!   [`Distribution::Single`] output. (`SortMergeJoin` deliberately
//!   gathers: its output is globally key-sorted, which a shard-ordered
//!   concatenation of per-shard merges would not reproduce.)
//!
//! The runtime's `Placer::plan_distribution` wraps this pass with
//! deployment validation; the optimizer's `CostModel` runs the same
//! pass to price sharded scans and colocated joins at
//! `rows / shard_count` plus a gather term.

use serde::{Deserialize, Serialize};

use pspp_common::{Distribution, JoinDistribution, PartitionSpec, Result, ShardId, TableRef};

use crate::graph::{NodeId, Program};
use crate::op::Operator;

/// One node's slice of the shard plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeShard {
    /// How the node's output rows are distributed across shards.
    pub distribution: Distribution,
    /// The shard tasks the node fans out into, in gather order.
    pub scatter: Vec<ShardId>,
    /// Whether the node executes colocated: one task per scatter
    /// entry, each consuming its inputs' per-shard partials (joins)
    /// or partial (filter/project) instead of the gathered result.
    pub colocated: bool,
    /// Whether a colocated consumer reads this node's per-shard
    /// partials, so the executor must retain them past the gather.
    pub partials_needed: bool,
    /// Inputs whose partitioned output this node consumes through an
    /// explicit gather (the planner found no colocation).
    pub gathered_inputs: Vec<NodeId>,
}

impl NodeShard {
    /// The plan entry of unsharded work: single-site output, one
    /// shard-0 task.
    pub fn single() -> Self {
        NodeShard {
            distribution: Distribution::Single,
            scatter: vec![ShardId::ZERO],
            colocated: false,
            partials_needed: false,
            gathered_inputs: Vec::new(),
        }
    }

    /// Number of tasks the node fans out into.
    pub fn scatter_width(&self) -> usize {
        self.scatter.len()
    }
}

impl Default for NodeShard {
    fn default() -> Self {
        NodeShard::single()
    }
}

/// The physical distribution plan for one program: a [`NodeShard`] per
/// IR node.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardPlan {
    nodes: Vec<NodeShard>,
}

impl ShardPlan {
    /// Plans distribution for `program`: propagates each source
    /// table's partition spec (`spec_of`) through the operator
    /// lattice. With `colocate` false, every non-source node gathers —
    /// the PR-3 baseline plan used for colocated-vs-gathered
    /// comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::Semantic`] on cyclic programs and
    /// [`pspp_common::Error::EmptyShardSet`]/[`pspp_common::Error::Config`]
    /// for invalid partition specs.
    pub fn plan<F>(program: &Program, spec_of: F, colocate: bool) -> Result<ShardPlan>
    where
        F: Fn(&TableRef) -> Option<PartitionSpec>,
    {
        let order = program.topo_order()?;
        let mut nodes: Vec<NodeShard> = vec![NodeShard::single(); program.len()];
        for id in order {
            let node = program.node(id);
            let entry = if node.annotations.fused_into_consumer {
                // A fused pass-through aliases its input: consumers see
                // through it to the producer's distribution.
                let src = node.inputs.first().map_or_else(NodeShard::single, |i| {
                    let mut e = nodes[i.0].clone();
                    e.colocated = false;
                    e.partials_needed = false;
                    e.gathered_inputs.clear();
                    e
                });
                src
            } else if let Some(table) = node.op.source_table() {
                match spec_of(table) {
                    Some(spec) => {
                        spec.validate()?;
                        let distribution = Distribution::from_spec(&spec);
                        NodeShard {
                            scatter: distribution.scatter(),
                            distribution,
                            colocated: false,
                            partials_needed: false,
                            gathered_inputs: Vec::new(),
                        }
                    }
                    None => NodeShard::single(),
                }
            } else {
                match &node.op {
                    Operator::Filter { .. } if colocate => {
                        Self::preserve(&nodes, node.inputs[0], None)
                    }
                    Operator::Project { columns } if colocate => {
                        Self::preserve(&nodes, node.inputs[0], Some(columns))
                    }
                    Operator::HashJoin { left_on, right_on } if colocate => {
                        let (l, r) = (&nodes[node.inputs[0].0], &nodes[node.inputs[1].0]);
                        match Distribution::join(
                            &l.distribution,
                            left_on,
                            &r.distribution,
                            right_on,
                        ) {
                            JoinDistribution::Colocated { output } => NodeShard {
                                // A colocated outcome always has a
                                // partitioned probe (left) side; its
                                // scatter drives the join's tasks. At
                                // width 1 the "colocated" and gathered
                                // plans are the same single task, so
                                // execute gathered and skip the
                                // partial-retention machinery.
                                scatter: l.scatter.clone(),
                                distribution: output,
                                colocated: l.scatter.len() > 1,
                                partials_needed: false,
                                gathered_inputs: Vec::new(),
                            },
                            JoinDistribution::Gather => {
                                Self::gather_all(&nodes, node.inputs.iter())
                            }
                        }
                    }
                    _ => Self::gather_all(&nodes, node.inputs.iter()),
                }
            };
            nodes[id.0] = entry;
        }
        // Mark the executing producer (resolving through fused
        // aliases) of every partitioned input a colocated node reads,
        // so the executor retains its per-shard partials.
        for n in program.nodes() {
            if !nodes[n.id.0].colocated || n.annotations.fused_into_consumer {
                continue;
            }
            for &input in &n.inputs {
                if !nodes[input.0].distribution.is_partitioned() {
                    continue;
                }
                let mut p = input;
                loop {
                    nodes[p.0].partials_needed = true;
                    if program.node(p).annotations.fused_into_consumer {
                        p = program.node(p).inputs[0];
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(ShardPlan { nodes })
    }

    /// A single-input node preserving its input's distribution: when
    /// the input is partitioned the node executes colocated (one task
    /// per shard partial); `columns` applies the projection rule.
    fn preserve(nodes: &[NodeShard], input: NodeId, columns: Option<&Vec<String>>) -> NodeShard {
        let src = &nodes[input.0];
        let distribution = match columns {
            Some(cols) => src.distribution.after_projection(cols),
            None => src.distribution.clone(),
        };
        if distribution.is_partitioned() && src.distribution.is_partitioned() {
            NodeShard {
                scatter: src.scatter.clone(),
                distribution,
                // Width-1 layouts execute gathered (same single task).
                colocated: src.scatter.len() > 1,
                partials_needed: false,
                gathered_inputs: Vec::new(),
            }
        } else if src.distribution.is_partitioned() {
            // Re-keyed projection: explicit gather of the input.
            NodeShard {
                gathered_inputs: vec![input],
                ..NodeShard::single()
            }
        } else {
            NodeShard {
                distribution,
                ..NodeShard::single()
            }
        }
    }

    /// A node that gathers every partitioned input and runs at one
    /// site.
    fn gather_all<'a>(nodes: &[NodeShard], inputs: impl Iterator<Item = &'a NodeId>) -> NodeShard {
        NodeShard {
            gathered_inputs: inputs
                .filter(|i| nodes[i.0].distribution.is_partitioned())
                .copied()
                .collect(),
            ..NodeShard::single()
        }
    }

    /// One node's plan entry.
    ///
    /// # Panics
    ///
    /// Panics on ids from a different program.
    pub fn node(&self, id: NodeId) -> &NodeShard {
        &self.nodes[id.0]
    }

    /// Number of shard tasks `id` fans out into.
    pub fn scatter_width(&self, id: NodeId) -> usize {
        self.nodes[id.0].scatter_width()
    }

    /// Number of planned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The colocated nodes, in id order.
    pub fn colocated_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.colocated)
            .map(|(i, _)| NodeId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{Predicate, Value};

    fn spec_map(
        specs: Vec<(TableRef, PartitionSpec)>,
    ) -> impl Fn(&TableRef) -> Option<PartitionSpec> {
        move |t: &TableRef| {
            specs
                .iter()
                .find(|(table, _)| table == t)
                .map(|(_, s)| s.clone())
        }
    }

    fn join_program(left: TableRef, right: TableRef, on: &str) -> (Program, NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(left), "sql");
        let b = p.add_source(Operator::scan(right), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: on.into(),
                right_on: on.into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        (p, j)
    }

    #[test]
    fn unpartitioned_program_is_all_single() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "k");
        let plan = ShardPlan::plan(&p, |_| None, true).unwrap();
        assert_eq!(plan.len(), 3);
        for n in p.nodes() {
            assert_eq!(plan.node(n.id), &NodeShard::single());
        }
        assert_eq!(plan.scatter_width(j), 1);
    }

    #[test]
    fn compatible_hash_join_colocates_and_keeps_distribution() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 4)),
        ]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        let join = plan.node(j);
        assert!(join.colocated);
        assert_eq!(join.scatter_width(), 4);
        assert_eq!(join.distribution.key(), Some("pid"));
        assert!(join.gathered_inputs.is_empty());
        // Both scan producers must retain their per-shard partials.
        assert!(plan.node(NodeId(0)).partials_needed);
        assert!(plan.node(NodeId(1)).partials_needed);
        assert_eq!(plan.colocated_nodes().collect::<Vec<_>>(), vec![j]);
    }

    #[test]
    fn mismatched_keys_force_an_explicit_gather() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            // Partitioned on the wrong column: cannot colocate.
            (TableRef::new("db2", "b"), PartitionSpec::hash("age", 4)),
        ]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        let join = plan.node(j);
        assert!(!join.colocated, "mismatched keys must not colocate");
        assert_eq!(join.distribution, Distribution::Single);
        assert_eq!(
            join.gathered_inputs,
            vec![NodeId(0), NodeId(1)],
            "the gather is explicit in the plan"
        );
        assert!(!plan.node(NodeId(0)).partials_needed);
    }

    #[test]
    fn filter_preserves_and_join_colocates_through_it() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 10i64),
            },
            vec![a],
            "sql",
        );
        let b = p.add_source(Operator::scan(TableRef::new("db2", "b")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 2)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 2)),
        ]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        let filter = plan.node(f);
        assert!(filter.colocated, "filter executes per shard");
        assert_eq!(filter.distribution.key(), Some("pid"));
        assert_eq!(filter.scatter_width(), 2);
        assert!(filter.partials_needed, "join reads the filter's partials");
        assert!(plan.node(j).colocated);
    }

    #[test]
    fn projection_keeping_key_preserves_dropping_key_degrades() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let keep = p.add_node(
            Operator::Project {
                columns: vec!["pid".into(), "age".into()],
            },
            vec![a],
            "sql",
        );
        let drop = p.add_node(
            Operator::Project {
                columns: vec!["age".into()],
            },
            vec![keep],
            "sql",
        );
        p.mark_output(drop);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 3),
        )]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        assert!(plan.node(keep).colocated);
        assert_eq!(plan.node(keep).distribution.key(), Some("pid"));
        // Re-keying projection degrades to single with an explicit
        // gather of its (still partitioned) input.
        let rekeyed = plan.node(drop);
        assert!(!rekeyed.colocated);
        assert_eq!(rekeyed.distribution, Distribution::Single);
        assert_eq!(rekeyed.gathered_inputs, vec![keep]);
    }

    #[test]
    fn fused_aliases_are_transparent_to_colocation() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![a],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let b = p.add_source(Operator::scan(TableRef::new("db2", "b")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 2)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 2)),
        ]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        assert!(plan.node(j).colocated, "colocation sees through fusion");
        assert_eq!(plan.node(f).distribution.key(), Some("pid"));
        assert!(
            plan.node(a).partials_needed,
            "the executing producer behind the alias retains partials"
        );
        assert!(
            plan.node(f).partials_needed,
            "the alias forwards partials too"
        );
    }

    #[test]
    fn sort_and_group_by_gather_partitioned_inputs() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "a")), "sql");
        let s = p.add_node(
            Operator::Sort {
                keys: vec![crate::op::SortSpec {
                    column: "pid".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        p.mark_output(s);
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::range("pid", vec![Value::Int(10)]),
        )]);
        let plan = ShardPlan::plan(&p, specs, true).unwrap();
        assert_eq!(plan.node(a).scatter_width(), 2);
        assert_eq!(plan.node(s).distribution, Distribution::Single);
        assert_eq!(plan.node(s).gathered_inputs, vec![a]);
    }

    #[test]
    fn colocate_off_reverts_to_gathered_joins() {
        let (p, j) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![
            (TableRef::new("db1", "a"), PartitionSpec::hash("pid", 4)),
            (TableRef::new("db2", "b"), PartitionSpec::hash("pid", 4)),
        ]);
        let plan = ShardPlan::plan(&p, &specs, false).unwrap();
        assert!(!plan.node(j).colocated);
        assert_eq!(plan.node(j).gathered_inputs.len(), 2);
        // Scans still scatter: the PR-3 baseline keeps scan speedup.
        assert_eq!(plan.node(NodeId(0)).scatter_width(), 4);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let (p, _) = join_program(TableRef::new("db1", "a"), TableRef::new("db2", "b"), "pid");
        let specs = spec_map(vec![(
            TableRef::new("db1", "a"),
            PartitionSpec::hash("pid", 0),
        )]);
        assert!(matches!(
            ShardPlan::plan(&p, specs, true),
            Err(pspp_common::Error::EmptyShardSet(_))
        ));
    }
}

//! Typed data-flow operators: the vocabulary every frontend lowers into
//! (§III-A.1 lists the operator families per engine).

use serde::{Deserialize, Serialize};

use pspp_common::{Predicate, TableRef};

/// Aggregate functions at the IR level (mapped to engine-native
/// aggregates by the adapters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of non-null values in the column (the partial state a
    /// distributed `Avg` ships to its merge stage; no frontend surfaces
    /// it directly).
    CountNonNull,
}

/// One aggregate column specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Function.
    pub func: AggFn,
    /// Input column (`*` for Count).
    pub column: String,
    /// Output column name.
    pub output: String,
}

/// The per-shard *partial* aggregate list a distributed `GroupBy`
/// executes before its merge stage: each original aggregate maps to the
/// partial state that merges losslessly in shard order — `Count` and
/// `Sum` ship themselves, `Min`/`Max` ship their extremum, and `Avg`
/// splits into a sum plus a non-null count so the merge can divide
/// once at the end. Partial columns are named `__p{index}_{state}`;
/// the merge side walks the same layout (one column per aggregate, two
/// for `Avg`), so the mapping lives in exactly one place.
pub fn partial_agg_specs(aggs: &[AggSpec]) -> Vec<AggSpec> {
    let mut out = Vec::new();
    for (j, a) in aggs.iter().enumerate() {
        match a.func {
            AggFn::Count => out.push(AggSpec {
                func: AggFn::Count,
                column: "*".into(),
                output: format!("__p{j}_count"),
            }),
            AggFn::Sum => out.push(AggSpec {
                func: AggFn::Sum,
                column: a.column.clone(),
                output: format!("__p{j}_sum"),
            }),
            AggFn::Avg => {
                out.push(AggSpec {
                    func: AggFn::Sum,
                    column: a.column.clone(),
                    output: format!("__p{j}_sum"),
                });
                out.push(AggSpec {
                    func: AggFn::CountNonNull,
                    column: a.column.clone(),
                    output: format!("__p{j}_n"),
                });
            }
            AggFn::Min => out.push(AggSpec {
                func: AggFn::Min,
                column: a.column.clone(),
                output: format!("__p{j}_min"),
            }),
            AggFn::Max => out.push(AggSpec {
                func: AggFn::Max,
                column: a.column.clone(),
                output: format!("__p{j}_max"),
            }),
            AggFn::CountNonNull => out.push(AggSpec {
                func: AggFn::CountNonNull,
                column: a.column.clone(),
                output: format!("__p{j}_n"),
            }),
        }
    }
    out
}

/// A sort key at the IR level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortSpec {
    /// Column name.
    pub column: String,
    /// Ascending?
    pub ascending: bool,
}

/// Timeseries window aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TsAgg {
    /// Mean of points in the window.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Count.
    Count,
    /// Last point in the window.
    Last,
}

/// Text search modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextSearchMode {
    /// Documents containing all terms.
    All,
    /// Documents containing any term.
    Any,
    /// TF-IDF top-k.
    Ranked(usize),
}

/// A typed IR operator.
///
/// The variants cover the operator families of every native engine plus
/// the ML patterns of Figs. 3 and 7. Arity convention: sources take no
/// inputs, transforms take one, joins take two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    // ---- relational ----
    /// Table scan with pushed-down predicate and projection.
    Scan {
        /// Which engine/table to read.
        table: TableRef,
        /// Pushed-down filter ([`Predicate::True`] = scan all).
        predicate: Predicate,
        /// Pushed-down projection (None = all columns).
        projection: Option<Vec<String>>,
    },
    /// Row filter.
    Filter {
        /// Keep rows matching this.
        predicate: Predicate,
    },
    /// Column projection.
    Project {
        /// Output columns, in order.
        columns: Vec<String>,
    },
    /// Multi-key sort.
    Sort {
        /// Sort keys, most significant first.
        keys: Vec<SortSpec>,
    },
    /// Equality hash join (inputs: left, right).
    HashJoin {
        /// Left join column.
        left_on: String,
        /// Right join column.
        right_on: String,
    },
    /// Equality sort-merge join (inputs: left, right) — the §III example.
    SortMergeJoin {
        /// Left join column.
        left_on: String,
        /// Right join column.
        right_on: String,
    },
    /// Group-by aggregation.
    GroupBy {
        /// Grouping keys.
        keys: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Row limit.
    Limit {
        /// Maximum rows.
        n: usize,
    },

    // ---- key/value ----
    /// Prefix scan over a KV store.
    KvPrefixScan {
        /// Which engine holds the keys.
        table: TableRef,
        /// Key prefix.
        prefix: String,
    },

    // ---- timeseries ----
    /// Raw range read of a series.
    TsRange {
        /// Which engine/series.
        table: TableRef,
        /// Inclusive lower time bound.
        lo: i64,
        /// Exclusive upper time bound.
        hi: i64,
    },
    /// Tumbling-window aggregate of a series.
    TsWindow {
        /// Which engine/series.
        table: TableRef,
        /// Inclusive lower time bound.
        lo: i64,
        /// Exclusive upper time bound.
        hi: i64,
        /// Window width.
        width: i64,
        /// Aggregate function.
        agg: TsAgg,
    },

    // ---- graph ----
    /// Cypher-style pattern match producing one row per matched path.
    GraphMatch {
        /// Which graph engine.
        table: TableRef,
        /// Start label.
        start_label: String,
        /// Steps: (relationship type, target label); None = wildcard.
        steps: Vec<(Option<String>, Option<String>)>,
    },

    // ---- text ----
    /// Inverted-index search producing (doc_id [, score]) rows.
    TextSearch {
        /// Which text engine.
        table: TableRef,
        /// Search terms.
        terms: Vec<String>,
        /// Boolean or ranked mode.
        mode: TextSearchMode,
    },

    // ---- stream ----
    /// Windowed aggregate over an event stream.
    StreamWindow {
        /// Which stream engine/topic.
        table: TableRef,
        /// Inclusive lower time bound.
        lo: i64,
        /// Exclusive upper time bound.
        hi: i64,
        /// Window width.
        width: i64,
        /// Payload column to aggregate.
        column: usize,
        /// Aggregate function.
        agg: TsAgg,
    },

    // ---- ML (Figs. 2, 3, 7) ----
    /// Train an MLP on the input rows: all columns except `label_column`
    /// are features.
    TrainMlp {
        /// Label column name.
        label_column: String,
        /// Hidden layer sizes.
        hidden: Vec<usize>,
        /// Training epochs.
        epochs: usize,
        /// Mini-batch size.
        batch_size: usize,
        /// Learning rate.
        learning_rate: f64,
    },
    /// Score input rows with the model produced by the second input.
    Predict,
    /// K-means clustering of the numeric input columns.
    KMeansCluster {
        /// Number of clusters.
        k: usize,
        /// Maximum iterations.
        max_iters: usize,
    },

    /// An opaque engine-specific operation carried through the IR
    /// (escape hatch for extensions, §IV-B.1's "extensible to incorporate
    /// semantics of new compute engines").
    Custom {
        /// Free-form operation name.
        name: String,
    },
}

impl Operator {
    /// A full scan of a table.
    pub fn scan(table: TableRef) -> Operator {
        Operator::Scan {
            table,
            predicate: Predicate::True,
            projection: None,
        }
    }

    /// Number of data inputs the operator expects.
    pub fn arity(&self) -> usize {
        match self {
            Operator::Scan { .. }
            | Operator::KvPrefixScan { .. }
            | Operator::TsRange { .. }
            | Operator::TsWindow { .. }
            | Operator::GraphMatch { .. }
            | Operator::TextSearch { .. }
            | Operator::StreamWindow { .. } => 0,
            Operator::HashJoin { .. } | Operator::SortMergeJoin { .. } | Operator::Predict => 2,
            _ => 1,
        }
    }

    /// Whether this operator reads from a store (a source).
    pub fn is_source(&self) -> bool {
        self.arity() == 0
    }

    /// The table/engine a source reads from, if any.
    pub fn source_table(&self) -> Option<&TableRef> {
        match self {
            Operator::Scan { table, .. }
            | Operator::KvPrefixScan { table, .. }
            | Operator::TsRange { table, .. }
            | Operator::TsWindow { table, .. }
            | Operator::GraphMatch { table, .. }
            | Operator::TextSearch { table, .. }
            | Operator::StreamWindow { table, .. } => Some(table),
            _ => None,
        }
    }

    /// A short lowercase name for display / DOT labels.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Scan { .. } => "scan",
            Operator::Filter { .. } => "filter",
            Operator::Project { .. } => "project",
            Operator::Sort { .. } => "sort",
            Operator::HashJoin { .. } => "hash_join",
            Operator::SortMergeJoin { .. } => "sort_merge_join",
            Operator::GroupBy { .. } => "group_by",
            Operator::Limit { .. } => "limit",
            Operator::KvPrefixScan { .. } => "kv_prefix_scan",
            Operator::TsRange { .. } => "ts_range",
            Operator::TsWindow { .. } => "ts_window",
            Operator::GraphMatch { .. } => "graph_match",
            Operator::TextSearch { .. } => "text_search",
            Operator::StreamWindow { .. } => "stream_window",
            Operator::TrainMlp { .. } => "train_mlp",
            Operator::Predict => "predict",
            Operator::KMeansCluster { .. } => "kmeans",
            Operator::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_convention() {
        assert_eq!(Operator::scan(TableRef::new("e", "t")).arity(), 0);
        assert_eq!(
            Operator::Filter {
                predicate: Predicate::True
            }
            .arity(),
            1
        );
        assert_eq!(
            Operator::HashJoin {
                left_on: "a".into(),
                right_on: "b".into()
            }
            .arity(),
            2
        );
        assert_eq!(Operator::Predict.arity(), 2);
    }

    #[test]
    fn source_table_only_for_sources() {
        let scan = Operator::scan(TableRef::new("db1", "t"));
        assert!(scan.is_source());
        assert_eq!(scan.source_table().unwrap().name, "t");
        assert!(Operator::Predict.source_table().is_none());
    }

    #[test]
    fn names_are_nonempty() {
        assert_eq!(Operator::Predict.name(), "predict");
        assert_eq!(Operator::Custom { name: "x".into() }.name(), "custom");
    }
}

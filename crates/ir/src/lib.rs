//! The hierarchical intermediate representation (Fig. 5, §IV-B.1).
//!
//! "One approach is to have a hierarchical IR consisting of control nodes
//! and each control node may have a data-flow graph for an operator."
//! This crate implements exactly that: a [`Program`] is a DAG of typed
//! [`Operator`] nodes, each tagged with the *subprogram* it came from
//! (the control level — one subprogram per source language/engine in the
//! heterogeneous program) while the node edges form the data-flow level.
//!
//! The optimizer rewrites the graph (L1), annotates placements
//! ([`Annotations`]: engine + device per node), and the executor walks it
//! in topological stages.
//!
//! # Examples
//!
//! ```
//! use pspp_ir::{Program, Operator};
//! use pspp_common::{Predicate, TableRef};
//!
//! let mut p = Program::new();
//! let scan = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
//! let filter = p.add_node(Operator::Filter { predicate: Predicate::gt("age", 64i64) }, vec![scan], "sql");
//! p.mark_output(filter);
//! assert_eq!(p.topo_order().unwrap().len(), 2);
//! ```

pub mod graph;
pub mod op;
pub mod shard;

pub use graph::{NodeId, Program, ProgramNode, Stage};
pub use op::{partial_agg_specs, AggFn, AggSpec, Operator, SortSpec, TextSearchMode, TsAgg};
pub use shard::{
    exchange_pays, repartition_pays, shuffle_copy_key, subtree_signature, subtree_source_table,
    ExchangeCounts, ExchangeKind, NodeShard, PlanOptions, ShardPlan, EXCHANGE_OVERHEAD_ROWS,
    REPARTITION_COPY_BPS,
};

use serde::{Deserialize, Serialize};

use pspp_common::{DeviceKind, EngineId, ShardId};

/// One node's membership in a fused device-resident chain, attached to
/// a scatter slot by the placement pass: the chain pays the host→device
/// transfer once at the head (`pos == 0`) and intermediate edges move
/// over the device-local link instead of PCIe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionTag {
    /// Index of the chain in the placement plan's `fused_chains`.
    pub chain: usize,
    /// Position of this node within the chain (0 = head).
    pub pos: usize,
    /// Total chain length in nodes.
    pub len: usize,
}

/// A device-resident fused chain at one shard: adjacent plan nodes
/// whose picks landed on the same coprocessor, executed back-to-back
/// without surfacing intermediates to the host (§III–§IV: pipeline the
/// operators, pay PCIe once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedChain {
    /// The shard replica the chain runs at.
    pub shard: ShardId,
    /// The coprocessor every member runs on.
    pub device: DeviceKind,
    /// Member nodes in producer → consumer order.
    pub nodes: Vec<NodeId>,
    /// Intermediate-transfer seconds saved vs unfused per-node offload.
    pub saved_seconds: f64,
}

/// Per-node plan annotations filled in by the optimizer (§IV-B.3:
/// "the core must decide where each task should be assigned").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Annotations {
    /// The engine instance that executes the node (None = middleware).
    pub engine: Option<EngineId>,
    /// The computing unit the node's kernel runs on (the pick at the
    /// critical — slowest — scatter slot when the node fans out).
    pub device: Option<DeviceKind>,
    /// Per scatter-slot device picks for a fanned-out node, aligned
    /// with its [`NodeShard::scatter`] order — on heterogeneous
    /// deployments each shard replica may resolve to a different
    /// device (or fall back to its host). `None` means "use `device`
    /// everywhere".
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_devices: Option<Vec<DeviceKind>>,
    /// Per scatter-slot fused-chain membership, aligned with the
    /// [`NodeShard::scatter`] order (index 0 for unsharded nodes).
    /// `None` (and `None` entries) mean the slot runs unfused.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_fusion: Option<Vec<Option<FusionTag>>>,
    /// Per scatter-slot device queue wait (seconds) charged by the
    /// contended-device pass, aligned with the scatter order.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub shard_queue_waits: Option<Vec<f64>>,
    /// Estimated output rows.
    pub est_rows: Option<f64>,
    /// Estimated output bytes.
    pub est_bytes: Option<f64>,
    /// Estimated execution seconds (simulated).
    pub est_seconds: Option<f64>,
    /// Whether this node was fused into its consumer by L1 rewrites.
    pub fused_into_consumer: bool,
}

//! The engine registry: deployed data-processing engines (Fig. 4),
//! sharded for scale-out.
//!
//! Every logical engine id maps to an ordered list of shard replicas
//! of the same [`EngineKind`]. Unsharded deployments are the
//! single-replica special case ([`ShardedRegistry::register`]), which
//! keeps the PR-1 API intact; partitioned tables carry a
//! [`PartitionSpec`] routing scans to their shard replicas, and
//! [`ShardedRegistry::reshard`] redistributes a relational table's
//! rows across N replicas by partition key.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pspp_accel::AcceleratorFleet;
use pspp_arraystore::ArrayStore;
use pspp_common::{
    EngineId, EngineKind, Error, MaterializedRepartitions, PartitionLookup, PartitionSpec, Result,
    Row, ShardId, TableRef,
};
use pspp_graphstore::GraphStore;
use pspp_kvstore::KvStore;
use pspp_relstore::RelationalStore;
use pspp_streamstore::StreamStore;
use pspp_textstore::TextStore;
use pspp_tsstore::TimeseriesStore;

/// One deployed engine replica.
#[derive(Debug, Clone)]
pub enum EngineInstance {
    /// Relational store.
    Relational(RelationalStore),
    /// Key/value store.
    KeyValue(KvStore),
    /// Timeseries store.
    Timeseries(TimeseriesStore),
    /// Graph store.
    Graph(GraphStore),
    /// Array store.
    Array(ArrayStore),
    /// Text store.
    Text(TextStore),
    /// Stream store.
    Stream(StreamStore),
}

impl EngineInstance {
    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineInstance::Relational(_) => EngineKind::Relational,
            EngineInstance::KeyValue(_) => EngineKind::KeyValue,
            EngineInstance::Timeseries(_) => EngineKind::Timeseries,
            EngineInstance::Graph(_) => EngineKind::Graph,
            EngineInstance::Array(_) => EngineKind::Array,
            EngineInstance::Text(_) => EngineKind::Text,
            EngineInstance::Stream(_) => EngineKind::Stream,
        }
    }
}

/// Backward-compatible name for the single-shard view of
/// [`ShardedRegistry`]: PR-1 call sites (and the unsharded default)
/// keep compiling unchanged, with every lookup served by shard 0.
pub type EngineRegistry = ShardedRegistry;

/// What one [`ShardedRegistry::rebalance`] did: how many rows the
/// spec diff actually moved versus left in place, and how many shard
/// replicas were rewritten. `moved_rows / total_rows` is the quantity
/// E22's analytic-bound guard checks (≈ `1 - w1/w2` for a hash grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct RebalanceReport {
    /// Rows of the table across all shards.
    pub total_rows: usize,
    /// Rows whose shard assignment changed under the new spec.
    pub moved_rows: usize,
    /// Payload bytes of the moved rows (what actually crossed shards).
    pub moved_bytes: u64,
    /// Rows that stayed on their shard (untouched by the diff).
    pub retained_rows: usize,
    /// Shard replicas physically rewritten.
    pub rebuilt_shards: usize,
    /// Shard replicas the table now spans.
    pub total_shards: usize,
    /// Whether the diff path ran (false = full redistribute fallback).
    pub incremental: bool,
}

impl RebalanceReport {
    /// Fraction of rows moved (0 when the table is empty).
    pub fn moved_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.moved_rows as f64 / self.total_rows as f64
        }
    }
}

/// All engines of a deployment: shard replicas keyed by engine id,
/// plus the partition specs routing tables to shards.
#[derive(Debug, Clone)]
pub struct ShardedRegistry {
    engines: BTreeMap<EngineId, Vec<EngineInstance>>,
    partitions: BTreeMap<TableRef, PartitionSpec>,
    /// The device fleet every shard gets unless overridden — `None`
    /// for pre-accelerator deployments, where the executor falls back
    /// to its own global fleet.
    default_fleet: Option<AcceleratorFleet>,
    /// Per-shard fleet overrides for heterogeneous clusters (a GPU at
    /// shard 0 only, a bare host at shard 3, ...).
    shard_fleets: BTreeMap<ShardId, AcceleratorFleet>,
    /// Metrics sink for reshard instrumentation (`None` runs
    /// unobserved).
    metrics: Option<pspp_telemetry::MetricsRegistry>,
    /// Materialized shuffle layouts, epoch-validated against this
    /// registry (cloning the handle shares state with the executor).
    repartitions: MaterializedRepartitions,
    /// Engine-state invalidation epoch: bumped by every mutation API
    /// (registration, `reshard`, partition/fleet changes). Result and
    /// plan caches key entries by this value, so a stale hit after any
    /// mutation is structurally impossible — the old epoch simply never
    /// matches again. Shared (atomically) with the materialized
    /// repartition store so persisted layouts die with the epoch too.
    epoch: Arc<AtomicU64>,
}

impl Default for ShardedRegistry {
    fn default() -> Self {
        let epoch = Arc::new(AtomicU64::new(0));
        ShardedRegistry {
            engines: BTreeMap::new(),
            partitions: BTreeMap::new(),
            default_fleet: None,
            shard_fleets: BTreeMap::new(),
            metrics: None,
            repartitions: MaterializedRepartitions::new(Arc::clone(&epoch)),
            epoch,
        }
    }
}

impl ShardedRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ShardedRegistry::default()
    }

    /// The current engine-state epoch.
    ///
    /// Every mutation API (`register`, `register_sharded`, `reshard`,
    /// `rebalance`, `set_partition`, fleet changes) increments this
    /// counter. Caches that key entries by `(digest, epoch)` — the
    /// service's plan and result caches, the materialized-repartition
    /// store — therefore self-invalidate on any engine-state change
    /// without scanning their contents.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bumps the engine-state epoch without changing any engine —
    /// the hook in-band writes (INSERT/DDL through the query path)
    /// use to invalidate epoch-keyed caches.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The materialized-repartition store validated against this
    /// registry's epoch. The executor persists hot shuffle layouts
    /// here and the planner consults it; clone the handle to share.
    pub fn repartitions(&self) -> &MaterializedRepartitions {
        &self.repartitions
    }

    /// Registers a single-replica engine under its id — the
    /// backward-compatible unsharded constructor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] on id collisions.
    pub fn register(&mut self, id: EngineId, engine: EngineInstance) -> Result<()> {
        self.register_sharded(id, vec![engine])
    }

    /// Registers an engine as an ordered list of shard replicas.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] on id collisions,
    /// [`Error::EmptyShardSet`] for zero replicas and
    /// [`Error::Invalid`] when the replicas mix engine kinds.
    pub fn register_sharded(&mut self, id: EngineId, shards: Vec<EngineInstance>) -> Result<()> {
        if self.engines.contains_key(&id) {
            return Err(Error::AlreadyExists(format!("engine {id}")));
        }
        let first = shards
            .first()
            .ok_or_else(|| Error::EmptyShardSet(format!("engine {id} registered with 0 shards")))?;
        let kind = first.kind();
        if shards.iter().any(|s| s.kind() != kind) {
            return Err(Error::Invalid(format!(
                "engine {id} shard replicas mix engine kinds"
            )));
        }
        self.engines.insert(id, shards);
        self.bump_epoch();
        Ok(())
    }

    /// Looks up an engine's primary replica (shard 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown ids.
    pub fn get(&self, id: &EngineId) -> Result<&EngineInstance> {
        self.shard(id, ShardId::ZERO)
    }

    /// Mutable primary-replica lookup.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown ids.
    pub fn get_mut(&mut self, id: &EngineId) -> Result<&mut EngineInstance> {
        self.shard_mut(id, ShardId::ZERO)
    }

    /// Looks up one shard replica of an engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown ids and
    /// [`Error::Invalid`] for out-of-range shards.
    pub fn shard(&self, id: &EngineId, shard: ShardId) -> Result<&EngineInstance> {
        let shards = self
            .engines
            .get(id)
            .ok_or_else(|| Error::EngineNotFound(id.to_string()))?;
        shards.get(shard.index()).ok_or_else(|| {
            Error::Invalid(format!(
                "engine {id} has {} shard(s), {shard} requested",
                shards.len()
            ))
        })
    }

    /// Mutable shard-replica lookup.
    ///
    /// # Errors
    ///
    /// See [`ShardedRegistry::shard`].
    pub fn shard_mut(&mut self, id: &EngineId, shard: ShardId) -> Result<&mut EngineInstance> {
        let shards = self
            .engines
            .get_mut(id)
            .ok_or_else(|| Error::EngineNotFound(id.to_string()))?;
        let n = shards.len();
        shards.get_mut(shard.index()).ok_or_else(|| {
            Error::Invalid(format!("engine {id} has {n} shard(s), {shard} requested"))
        })
    }

    /// Number of shard replicas deployed for `id` (0 when unknown).
    pub fn shard_count(&self, id: &EngineId) -> usize {
        self.engines.get(id).map_or(0, Vec::len)
    }

    /// The primary relational replica with this id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] or [`Error::Invalid`] on kind
    /// mismatch.
    pub fn relational(&self, id: &EngineId) -> Result<&RelationalStore> {
        self.relational_shard(id, ShardId::ZERO)
    }

    /// The relational store serving one shard of engine `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`], [`Error::Invalid`] on kind
    /// mismatch or out-of-range shards.
    pub fn relational_shard(&self, id: &EngineId, shard: ShardId) -> Result<&RelationalStore> {
        match self.shard(id, shard)? {
            EngineInstance::Relational(s) => Ok(s),
            other => Err(Error::Invalid(format!(
                "engine {id} is {}, not relational",
                other.kind()
            ))),
        }
    }

    /// Mutable primary relational accessor.
    ///
    /// # Errors
    ///
    /// See [`ShardedRegistry::relational`].
    pub fn relational_mut(&mut self, id: &EngineId) -> Result<&mut RelationalStore> {
        match self.get_mut(id)? {
            EngineInstance::Relational(s) => Ok(s),
            other => Err(Error::Invalid(format!(
                "engine {id} is {}, not relational",
                other.kind()
            ))),
        }
    }

    /// Engine ids with kinds and shard counts, in id order.
    pub fn list(&self) -> Vec<(&EngineId, EngineKind)> {
        self.engines
            .iter()
            .map(|(id, shards)| (id, shards[0].kind()))
            .collect()
    }

    /// Number of logical engines (not replicas).
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Sets the fleet every shard runs unless overridden by
    /// [`ShardedRegistry::set_fleet_at`].
    pub fn set_default_fleet(&mut self, fleet: AcceleratorFleet) {
        self.default_fleet = Some(fleet);
        self.bump_epoch();
    }

    /// Attaches a shard-specific device fleet — heterogeneous
    /// deployments give each shard replica its own accelerators, and
    /// the executor resolves every task's device against the fleet of
    /// the shard it runs at.
    pub fn set_fleet_at(&mut self, shard: ShardId, fleet: AcceleratorFleet) {
        self.shard_fleets.insert(shard, fleet);
        self.bump_epoch();
    }

    /// The device fleet serving `shard`: its override when one was
    /// attached, the deployment default otherwise, `None` when neither
    /// was configured (the executor then uses its own global fleet).
    pub fn fleet_at(&self, shard: ShardId) -> Option<&AcceleratorFleet> {
        self.shard_fleets
            .get(&shard)
            .or(self.default_fleet.as_ref())
    }

    /// The per-shard fleet overrides, in shard order — the map
    /// `PolystoreBuilder` mirrors into the cost model so planned and
    /// executed device picks come from the same fleets.
    pub fn shard_fleet_overrides(&self) -> impl Iterator<Item = (&ShardId, &AcceleratorFleet)> {
        self.shard_fleets.iter()
    }

    /// The partition spec routing `table`, when it is partitioned.
    pub fn partition(&self, table: &TableRef) -> Option<&PartitionSpec> {
        self.partitions.get(table)
    }

    /// All partitioned tables with their specs, in table order.
    pub fn partitions(&self) -> impl Iterator<Item = (&TableRef, &PartitionSpec)> {
        self.partitions.iter()
    }

    /// Records a partition spec without moving rows (used when shards
    /// were populated pre-distributed, e.g. by `datagen`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyShardSet`]/[`Error::Config`] for invalid
    /// specs and [`Error::EngineNotFound`] for unknown engines.
    pub fn set_partition(&mut self, table: TableRef, spec: PartitionSpec) -> Result<()> {
        spec.validate()?;
        if !self.engines.contains_key(&table.engine) {
            return Err(Error::EngineNotFound(table.engine.to_string()));
        }
        self.partitions.insert(table, spec);
        self.bump_epoch();
        Ok(())
    }

    /// Re-partitions a relational table across shard replicas: expands
    /// the engine to `spec.shard_count()` replicas (cloning replica 0)
    /// if needed, redistributes the table's rows by partition key, and
    /// records the spec for shard-aware routing. Unpartitioned tables
    /// on the same engine stay whole on every replica but are only ever
    /// read from shard 0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown engines,
    /// [`Error::TableNotFound`] for unknown tables, [`Error::Invalid`]
    /// for non-relational engines, [`Error::EmptyShardSet`] for
    /// zero-shard specs, and [`Error::Config`] when the engine is
    /// already sharded to a different replica count.
    pub fn reshard(&mut self, table: &TableRef, spec: PartitionSpec) -> Result<()> {
        spec.validate()?;
        let n = spec.shard_count();
        // Gather concatenates all replicas only when the table's rows
        // were genuinely distributed by a prior non-replicated spec.
        // Replicated and never-partitioned tables hold full copies per
        // replica (a prior reshard of a *different* table on this
        // engine clones whole stores when expanding), so those read
        // shard 0 only — concatenating their copies would duplicate
        // every row.
        let previously_distributed = matches!(
            self.partitions.get(table),
            Some(spec) if !matches!(spec, PartitionSpec::Replicated { .. })
        );
        let shards = self
            .engines
            .get_mut(&table.engine)
            .ok_or_else(|| Error::EngineNotFound(table.engine.to_string()))?;
        if shards.iter().any(|s| s.kind() != EngineKind::Relational) {
            return Err(Error::Invalid(format!(
                "engine {} is {}, not relational: only relational tables reshard",
                table.engine,
                shards[0].kind()
            )));
        }
        if shards.len() != 1 && shards.len() != n {
            return Err(Error::Config(format!(
                "engine {} is already deployed with {} shard(s); all partitioned \
                 tables on one engine must agree on the replica count {n}",
                table.engine,
                shards.len()
            )));
        }

        // Gather the table's full row set in shard order.
        let (schema, indexed, all_rows) = {
            let stores: Vec<&RelationalStore> = shards
                .iter()
                .map(|s| match s {
                    EngineInstance::Relational(store) => store,
                    _ => unreachable!("kind checked above"),
                })
                .collect();
            let t0 = stores[0].table(&table.name)?;
            let schema = t0.schema().clone();
            let indexed: Vec<String> = schema
                .names()
                .iter()
                .filter(|c| t0.has_index(c))
                .map(|c| (*c).to_owned())
                .collect();
            let mut rows = Vec::new();
            for store in if previously_distributed {
                &stores[..]
            } else {
                &stores[..1]
            } {
                rows.extend_from_slice(store.table(&table.name)?.rows());
            }
            (schema, indexed, rows)
        };
        let buckets = spec.distribute(&schema, &all_rows)?;

        // Expand to n replicas by cloning the primary, then rebuild the
        // table on each replica with its bucket.
        if shards.len() < n {
            let template = shards[0].clone();
            shards.resize(n, template);
        }
        for (shard, bucket) in shards.iter_mut().zip(buckets) {
            let EngineInstance::Relational(store) = shard else {
                unreachable!("kind checked above");
            };
            store.drop_table(&table.name)?;
            store.create_table(table.name.clone(), schema.clone())?;
            store.insert(&table.name, bucket)?;
            for column in &indexed {
                store.create_index(&table.name, column)?;
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics
                .counter(
                    "pspp_reshard_total",
                    "Tables redistributed across shard replicas",
                    &[("table", &table.name)],
                )
                .inc();
            metrics
                .counter(
                    "pspp_reshard_rows_total",
                    "Rows redistributed by reshard operations",
                    &[("table", &table.name)],
                )
                .add(all_rows.len() as u64);
        }
        self.partitions.insert(table.clone(), spec);
        self.bump_epoch();
        Ok(())
    }

    /// Incrementally re-partitions a relational table: diffs the old
    /// and new [`PartitionSpec`] by routing every source shard's rows
    /// under the new spec (the same stable-FNV rule
    /// [`PartitionSpec::route_rows`] scans use) and rewrites only the
    /// shard replicas whose contents actually change. A hash-width
    /// grow `w1 -> w2` with `w1 | w2` moves an expected `1 - w1/w2`
    /// of the rows (see [`pspp_common::hash_grow_moved_fraction`]);
    /// [`ShardedRegistry::reshard`] by contrast gathers and rewrites
    /// everything. A table without a prior spec diffs too: its
    /// authoritative copy sits wholly on shard replica 0, which *is*
    /// a width-1 layout, so the first grow already moves only the
    /// rows that leave shard 0. Only moves to or from `Replicated`
    /// (full copies everywhere — no per-row location to diff) fall
    /// back to the full redistribute, reported as non-incremental.
    ///
    /// Byte-identity with `reshard` holds by construction: each
    /// destination's new contents are the concatenation, in ascending
    /// source-shard order, of the source rows routed to it in their
    /// stored order — exactly the bucket `spec.distribute` builds
    /// from the shard-ordered gather.
    ///
    /// Unlike `reshard`, `rebalance` accepts width changes on an
    /// already-sharded engine (the online-grow path): other tables'
    /// specs keep routing their own (unchanged) extents.
    ///
    /// # Errors
    ///
    /// As [`ShardedRegistry::reshard`], minus the replica-count
    /// restriction.
    pub fn rebalance(&mut self, table: &TableRef, spec: PartitionSpec) -> Result<RebalanceReport> {
        spec.validate()?;
        let n = spec.shard_count();
        let old_spec = self.partitions.get(table).cloned();
        // No prior spec reads as a virtual width-1 layout: the
        // authoritative copy lives on shard replica 0 (replicas
        // cloned from it are rebuilt below, clearing stale copies).
        let incremental = !matches!(old_spec, Some(PartitionSpec::Replicated { .. }))
            && !matches!(spec, PartitionSpec::Replicated { .. });
        let shards = self
            .engines
            .get_mut(&table.engine)
            .ok_or_else(|| Error::EngineNotFound(table.engine.to_string()))?;
        if shards.iter().any(|s| s.kind() != EngineKind::Relational) {
            return Err(Error::Invalid(format!(
                "engine {} is {}, not relational: only relational tables rebalance",
                table.engine,
                shards[0].kind()
            )));
        }
        let old_width = if incremental {
            old_spec
                .as_ref()
                .map_or(1, PartitionSpec::shard_count)
                .min(shards.len())
        } else {
            1
        };
        // The shard extent the table may currently occupy or will
        // occupy: every replica outside the skip rule gets rebuilt.
        // Without a prior spec the whole replica set is suspect
        // (template clones carry full stale copies), as it is on the
        // replicated fallback.
        let extent = n.max(old_width).max(if incremental && old_spec.is_some() {
            0
        } else {
            shards.len()
        });

        // Phase 1 (read-only): route each source shard's rows under
        // the new spec and assemble per-destination buckets in
        // (source, stored-position) order.
        let stores: Vec<&RelationalStore> = shards
            .iter()
            .map(|s| match s {
                EngineInstance::Relational(store) => store,
                _ => unreachable!("kind checked above"),
            })
            .collect();
        let t0 = stores[0].table(&table.name)?;
        let schema = t0.schema().clone();
        let mut buckets: Vec<Vec<Row>> = (0..extent).map(|_| Vec::new()).collect();
        // arrivals[d] counts rows landing on d from a *different*
        // shard; departures[s] counts rows leaving s.
        let mut arrivals = vec![0usize; extent];
        let mut departures = vec![0usize; extent];
        let mut total_rows = 0usize;
        let mut moved_rows = 0usize;
        let mut moved_bytes = 0u64;
        if incremental {
            for (s, store) in stores.iter().enumerate().take(old_width) {
                let rows = store.table(&table.name)?.rows();
                let routes = spec.route_rows(&schema, rows)?;
                total_rows += rows.len();
                for (row, dest) in rows.iter().zip(routes) {
                    let d = dest.index();
                    if d != s {
                        moved_rows += 1;
                        moved_bytes += row.byte_size() as u64;
                        arrivals[d] += 1;
                        departures[s] += 1;
                    }
                    buckets[d].push(row.clone());
                }
            }
        } else {
            // Fallback: gather shard 0's copy (never-distributed and
            // replicated tables hold full copies there) and run the
            // plain distribute — every row counts as moved.
            let rows = t0.rows().to_vec();
            total_rows = rows.len();
            moved_rows = total_rows;
            moved_bytes = rows.iter().map(|r| r.byte_size() as u64).sum();
            for (d, bucket) in spec.distribute(&schema, &rows)?.into_iter().enumerate() {
                buckets[d] = bucket;
            }
        }

        // Phase 2 (write): expand replicas if the new spec needs
        // them, then rewrite every changed shard. A shard is
        // unchanged — skipped entirely — only when it sits inside
        // both the old and new extents and no row arrived or left.
        if shards.len() < n {
            let template = shards[0].clone();
            shards.resize(n, template);
        }
        let mut rebuilt_shards = 0usize;
        for (d, bucket) in buckets.into_iter().enumerate() {
            let unchanged =
                incremental && d < old_width && d < n && arrivals[d] == 0 && departures[d] == 0;
            if unchanged {
                continue;
            }
            let moved_here = if incremental {
                arrivals[d] + departures[d]
            } else {
                bucket.len()
            };
            let EngineInstance::Relational(store) = &mut shards[d] else {
                unreachable!("kind checked above");
            };
            store.rebalance_table(&table.name, bucket, moved_here)?;
            rebuilt_shards += 1;
        }

        if let Some(metrics) = &self.metrics {
            metrics
                .counter(
                    "pspp_rebalance_total",
                    "Incremental rebalance operations",
                    &[("table", &table.name)],
                )
                .inc();
            metrics
                .counter(
                    "pspp_rebalance_moved_rows_total",
                    "Rows moved between shards by rebalance diffs",
                    &[("table", &table.name)],
                )
                .add(moved_rows as u64);
            metrics
                .counter(
                    "pspp_rebalance_retained_rows_total",
                    "Rows left in place by rebalance diffs",
                    &[("table", &table.name)],
                )
                .add((total_rows - moved_rows) as u64);
        }
        self.partitions.insert(table.clone(), spec);
        self.bump_epoch();
        Ok(RebalanceReport {
            total_rows,
            moved_rows,
            moved_bytes,
            retained_rows: total_rows - moved_rows,
            rebuilt_shards,
            total_shards: n,
            incremental,
        })
    }

    /// Counts reshard operations (and redistributed rows) into
    /// `metrics`.
    pub fn set_metrics(&mut self, metrics: pspp_telemetry::MetricsRegistry) {
        self.metrics = Some(metrics);
    }
}

impl PartitionLookup for ShardedRegistry {
    fn partition_spec(&self, table: &TableRef) -> Option<&PartitionSpec> {
        self.partition(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType, Schema};

    #[test]
    fn register_and_lookup() {
        let mut r = ShardedRegistry::new();
        r.register(
            EngineId::new("db1"),
            EngineInstance::Relational(RelationalStore::new("db1")),
        )
        .unwrap();
        r.register(
            EngineId::new("kv"),
            EngineInstance::KeyValue(KvStore::new("kv")),
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.relational(&EngineId::new("db1")).is_ok());
        assert!(r.relational(&EngineId::new("kv")).is_err());
        assert!(r.get(&EngineId::new("nope")).is_err());
        let err = r.register(
            EngineId::new("db1"),
            EngineInstance::Relational(RelationalStore::new("db1")),
        );
        assert!(matches!(err, Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn kinds_reported() {
        let mut r = ShardedRegistry::new();
        r.register(
            EngineId::new("g"),
            EngineInstance::Graph(GraphStore::new("g")),
        )
        .unwrap();
        assert_eq!(r.list()[0].1, EngineKind::Graph);
    }

    #[test]
    fn sharded_registration_and_bounds() {
        let mut r = ShardedRegistry::new();
        r.register_sharded(
            EngineId::new("db"),
            vec![
                EngineInstance::Relational(RelationalStore::new("db")),
                EngineInstance::Relational(RelationalStore::new("db")),
            ],
        )
        .unwrap();
        assert_eq!(r.shard_count(&EngineId::new("db")), 2);
        assert!(r.shard(&EngineId::new("db"), ShardId(1)).is_ok());
        assert!(matches!(
            r.shard(&EngineId::new("db"), ShardId(2)),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            r.register_sharded(EngineId::new("empty"), vec![]),
            Err(Error::EmptyShardSet(_))
        ));
        assert!(matches!(
            r.register_sharded(
                EngineId::new("mixed"),
                vec![
                    EngineInstance::Relational(RelationalStore::new("m")),
                    EngineInstance::KeyValue(KvStore::new("m")),
                ],
            ),
            Err(Error::Invalid(_))
        ));
    }

    fn table_registry(rows: i64) -> (ShardedRegistry, TableRef) {
        let mut db = RelationalStore::new("db1");
        db.create_table(
            "t",
            Schema::new(vec![("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        db.insert("t", (0..rows).map(|i| row![i, i * 2]).collect())
            .unwrap();
        db.create_index("t", "k").unwrap();
        let mut r = ShardedRegistry::new();
        r.register(EngineId::new("db1"), EngineInstance::Relational(db))
            .unwrap();
        (r, TableRef::new("db1", "t"))
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let (mut r, t) = table_registry(10);
        let e0 = r.epoch();
        assert!(e0 > 0, "registration already bumped the epoch");
        r.reshard(&t, PartitionSpec::hash("k", 2)).unwrap();
        let e1 = r.epoch();
        assert!(e1 > e0, "reshard bumps the epoch");
        r.set_partition(t.clone(), PartitionSpec::hash("k", 2))
            .unwrap();
        assert!(r.epoch() > e1, "set_partition bumps the epoch");
        let before = r.epoch();
        r.set_default_fleet(AcceleratorFleet::cpu_only());
        r.set_fleet_at(ShardId(0), AcceleratorFleet::cpu_only());
        assert_eq!(r.epoch(), before + 2, "fleet changes bump the epoch");
        // Failed mutations leave the epoch untouched.
        let before = r.epoch();
        assert!(r
            .reshard(&TableRef::new("nope", "t"), PartitionSpec::hash("k", 2))
            .is_err());
        assert_eq!(r.epoch(), before);
    }

    #[test]
    fn reshard_distributes_rows_and_keeps_indexes() {
        let (mut r, t) = table_registry(100);
        r.reshard(&t, PartitionSpec::hash("k", 4)).unwrap();
        assert_eq!(r.shard_count(&t.engine), 4);
        let mut total = 0;
        for s in 0..4 {
            let store = r.relational_shard(&t.engine, ShardId(s)).unwrap();
            let tab = store.table("t").unwrap();
            assert!(tab.has_index("k"), "index survives resharding");
            total += tab.len();
        }
        assert_eq!(total, 100);
        assert_eq!(
            r.partition(&t),
            Some(&PartitionSpec::hash("k", 4)),
            "spec recorded for routing"
        );
    }

    #[test]
    fn range_reshard_gathers_back_in_order() {
        let (mut r, t) = table_registry(90);
        let spec = PartitionSpec::range("k", vec![30i64.into(), 60i64.into()]);
        r.reshard(&t, spec).unwrap();
        let mut gathered = Vec::new();
        for s in 0..3 {
            gathered.extend_from_slice(
                r.relational_shard(&t.engine, ShardId(s))
                    .unwrap()
                    .table("t")
                    .unwrap()
                    .rows(),
            );
        }
        let expected: Vec<_> = (0..90i64).map(|i| row![i, i * 2]).collect();
        assert_eq!(gathered, expected);
    }

    #[test]
    fn resharding_a_second_table_on_an_expanded_engine_keeps_every_row_once() {
        // Regression: after table `a` expands the engine to 2 replicas
        // (cloning table `b` whole onto both), resharding `b` must
        // gather one copy, not concatenate the clones.
        let mut db = RelationalStore::new("db1");
        for name in ["a", "b"] {
            db.create_table(
                name,
                Schema::new(vec![("k", DataType::Int), ("v", DataType::Int)]),
            )
            .unwrap();
            db.insert(name, (0..40i64).map(|i| row![i, i]).collect())
                .unwrap();
        }
        let mut r = ShardedRegistry::new();
        r.register(EngineId::new("db1"), EngineInstance::Relational(db))
            .unwrap();
        r.reshard(&TableRef::new("db1", "a"), PartitionSpec::hash("k", 2))
            .unwrap();
        r.reshard(&TableRef::new("db1", "b"), PartitionSpec::hash("k", 2))
            .unwrap();
        for name in ["a", "b"] {
            let total: usize = (0..2)
                .map(|s| {
                    r.relational_shard(&EngineId::new("db1"), ShardId(s))
                        .unwrap()
                        .table(name)
                        .unwrap()
                        .len()
                })
                .sum();
            assert_eq!(total, 40, "table {name} lost or duplicated rows");
        }
        // Re-resharding an already-distributed table still gathers all
        // of it (2 -> 2 with new buckets).
        r.reshard(&TableRef::new("db1", "a"), PartitionSpec::hash("v", 2))
            .unwrap();
        let total: usize = (0..2)
            .map(|s| {
                r.relational_shard(&EngineId::new("db1"), ShardId(s))
                    .unwrap()
                    .table("a")
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(total, 40);
    }

    fn shard_rows(r: &ShardedRegistry, t: &TableRef, shards: usize) -> Vec<Vec<Row>> {
        (0..shards)
            .map(|s| {
                r.relational_shard(&t.engine, ShardId(s as u32))
                    .unwrap()
                    .table(&t.name)
                    .unwrap()
                    .rows()
                    .to_vec()
            })
            .collect()
    }

    #[test]
    fn rebalance_grow_matches_reshard_byte_for_byte() {
        // Grow 1 -> 2 -> 4 incrementally and compare every shard's
        // bytes against a fresh full reshard of the gathered rows.
        let (mut live, t) = table_registry(200);
        live.reshard(&t, PartitionSpec::hash("k", 2)).unwrap();
        let report = live.rebalance(&t, PartitionSpec::hash("k", 4)).unwrap();
        assert!(report.incremental);
        assert_eq!(report.total_rows, 200);
        assert_eq!(report.moved_rows + report.retained_rows, 200);
        assert!(
            report.moved_fraction() < 0.65,
            "2->4 should move about half, moved {}",
            report.moved_fraction()
        );
        assert!(report.retained_rows > 0, "the diff must retain rows");

        // Reference: gather the 2-shard layout in shard order into a
        // fresh single-replica registry, then full-reshard it to 4.
        let (mut reference, rt) = table_registry(0);
        let gathered: Vec<Row> = {
            let (mut seed, st) = table_registry(200);
            seed.reshard(&st, PartitionSpec::hash("k", 2)).unwrap();
            shard_rows(&seed, &st, 2).into_iter().flatten().collect()
        };
        reference
            .relational_mut(&rt.engine)
            .unwrap()
            .insert("t", gathered)
            .unwrap();
        reference.reshard(&rt, PartitionSpec::hash("k", 4)).unwrap();
        assert_eq!(
            shard_rows(&live, &t, 4),
            shard_rows(&reference, &rt, 4),
            "rebalance and reshard must produce identical shard contents"
        );
        // Indexes survive the incremental patch.
        for s in 0..4 {
            assert!(live
                .relational_shard(&t.engine, ShardId(s))
                .unwrap()
                .table("t")
                .unwrap()
                .has_index("k"));
        }
    }

    #[test]
    fn identity_rebalance_touches_nothing() {
        let (mut r, t) = table_registry(100);
        r.reshard(&t, PartitionSpec::hash("k", 4)).unwrap();
        let before = shard_rows(&r, &t, 4);
        let report = r.rebalance(&t, PartitionSpec::hash("k", 4)).unwrap();
        assert_eq!(report.moved_rows, 0);
        assert_eq!(report.rebuilt_shards, 0, "no shard content changed");
        assert_eq!(report.retained_rows, 100);
        assert_eq!(shard_rows(&r, &t, 4), before);
    }

    #[test]
    fn rebalance_without_prior_spec_diffs_against_shard_zero() {
        // A never-distributed table is a width-1 layout in disguise:
        // its authoritative copy sits wholly on shard replica 0, so
        // the first grow already diffs instead of paying for every
        // row — and still matches a full reshard byte-for-byte.
        let (mut r, t) = table_registry(100);
        let reference = {
            let (mut full, ft) = table_registry(100);
            full.reshard(&ft, PartitionSpec::hash("k", 2)).unwrap();
            shard_rows(&full, &ft, 2)
        };
        let report = r.rebalance(&t, PartitionSpec::hash("k", 2)).unwrap();
        assert!(report.incremental);
        assert_eq!(report.moved_rows + report.retained_rows, 100);
        assert!(report.retained_rows > 0, "rows routed to shard 0 stay put");
        let bound = pspp_common::hash_grow_moved_fraction(1, 2).unwrap();
        assert!(
            (report.moved_fraction() - bound).abs() < 0.15,
            "1 -> 2 should move about half, moved {}",
            report.moved_fraction()
        );
        assert_eq!(shard_rows(&r, &t, 2), reference);
    }

    #[test]
    fn rebalance_shrink_clears_trailing_shards() {
        let (mut r, t) = table_registry(120);
        r.reshard(&t, PartitionSpec::hash("k", 4)).unwrap();
        let report = r.rebalance(&t, PartitionSpec::hash("k", 2)).unwrap();
        assert!(report.incremental);
        let rows = shard_rows(&r, &t, 4);
        assert_eq!(rows[0].len() + rows[1].len(), 120);
        assert!(rows[2].is_empty() && rows[3].is_empty());
        // Reference: full reshard of the gathered 4-shard order to 2.
        let (mut reference, rt) = table_registry(0);
        let gathered: Vec<Row> = {
            let (mut seed, st) = table_registry(120);
            seed.reshard(&st, PartitionSpec::hash("k", 4)).unwrap();
            shard_rows(&seed, &st, 4).into_iter().flatten().collect()
        };
        reference
            .relational_mut(&rt.engine)
            .unwrap()
            .insert("t", gathered)
            .unwrap();
        reference.reshard(&rt, PartitionSpec::hash("k", 2)).unwrap();
        assert_eq!(shard_rows(&r, &t, 2), shard_rows(&reference, &rt, 2));
    }

    #[test]
    fn rebalance_bumps_epoch_and_invalidates_repartitions() {
        let (mut r, t) = table_registry(50);
        r.reshard(&t, PartitionSpec::hash("k", 2)).unwrap();
        let store = r.repartitions().clone();
        let key = pspp_common::CopyKey {
            table: t.clone(),
            column: "k".into(),
            width: 2,
            signature: 1,
        };
        store.store(key.clone(), vec![vec![0]], 8);
        assert!(store.contains(&key));
        let before = r.epoch();
        r.rebalance(&t, PartitionSpec::hash("k", 4)).unwrap();
        assert!(r.epoch() > before);
        assert!(
            !store.contains(&key),
            "a rebalance must invalidate persisted layouts"
        );
    }

    #[test]
    fn fleet_resolution_prefers_shard_override_then_default() {
        let mut r = ShardedRegistry::new();
        assert!(r.fleet_at(ShardId(0)).is_none(), "unconfigured registry");
        r.set_default_fleet(AcceleratorFleet::workstation());
        r.set_fleet_at(ShardId(1), AcceleratorFleet::cpu_only());
        assert!(
            !r.fleet_at(ShardId(0)).unwrap().devices().is_empty(),
            "shard 0 inherits the accelerated default"
        );
        assert!(
            r.fleet_at(ShardId(1)).unwrap().devices().is_empty(),
            "shard 1 runs its bare override"
        );
        assert_eq!(r.shard_fleet_overrides().count(), 1);
    }

    #[test]
    fn reshard_error_paths_are_typed() {
        let (mut r, t) = table_registry(10);
        assert!(matches!(
            r.reshard(&TableRef::new("nope", "t"), PartitionSpec::hash("k", 2)),
            Err(Error::EngineNotFound(_))
        ));
        assert!(matches!(
            r.reshard(
                &TableRef::new("db1", "missing"),
                PartitionSpec::hash("k", 2)
            ),
            Err(Error::TableNotFound(_))
        ));
        assert!(matches!(
            r.reshard(&t, PartitionSpec::hash("k", 0)),
            Err(Error::EmptyShardSet(_))
        ));
        r.reshard(&t, PartitionSpec::hash("k", 2)).unwrap();
        assert!(matches!(
            r.reshard(&t, PartitionSpec::hash("k", 3)),
            Err(Error::Config(_)),
        ));
        let mut kv = ShardedRegistry::new();
        kv.register(
            EngineId::new("kv"),
            EngineInstance::KeyValue(KvStore::new("kv")),
        )
        .unwrap();
        assert!(matches!(
            kv.reshard(&TableRef::new("kv", "t"), PartitionSpec::hash("k", 2)),
            Err(Error::Invalid(_))
        ));
    }
}

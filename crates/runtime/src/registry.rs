//! The engine registry: deployed data-processing engines (Fig. 4).

use std::collections::BTreeMap;

use pspp_arraystore::ArrayStore;
use pspp_common::{EngineId, EngineKind, Error, Result};
use pspp_graphstore::GraphStore;
use pspp_kvstore::KvStore;
use pspp_relstore::RelationalStore;
use pspp_streamstore::StreamStore;
use pspp_textstore::TextStore;
use pspp_tsstore::TimeseriesStore;

/// One deployed engine.
#[derive(Debug, Clone)]
pub enum EngineInstance {
    /// Relational store.
    Relational(RelationalStore),
    /// Key/value store.
    KeyValue(KvStore),
    /// Timeseries store.
    Timeseries(TimeseriesStore),
    /// Graph store.
    Graph(GraphStore),
    /// Array store.
    Array(ArrayStore),
    /// Text store.
    Text(TextStore),
    /// Stream store.
    Stream(StreamStore),
}

impl EngineInstance {
    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineInstance::Relational(_) => EngineKind::Relational,
            EngineInstance::KeyValue(_) => EngineKind::KeyValue,
            EngineInstance::Timeseries(_) => EngineKind::Timeseries,
            EngineInstance::Graph(_) => EngineKind::Graph,
            EngineInstance::Array(_) => EngineKind::Array,
            EngineInstance::Text(_) => EngineKind::Text,
            EngineInstance::Stream(_) => EngineKind::Stream,
        }
    }
}

/// All engines of a deployment, keyed by id.
#[derive(Debug, Clone, Default)]
pub struct EngineRegistry {
    engines: BTreeMap<EngineId, EngineInstance>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// Registers an engine under its id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyExists`] on id collisions.
    pub fn register(&mut self, id: EngineId, engine: EngineInstance) -> Result<()> {
        if self.engines.contains_key(&id) {
            return Err(Error::AlreadyExists(format!("engine {id}")));
        }
        self.engines.insert(id, engine);
        Ok(())
    }

    /// Looks up an engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown ids.
    pub fn get(&self, id: &EngineId) -> Result<&EngineInstance> {
        self.engines
            .get(id)
            .ok_or_else(|| Error::EngineNotFound(id.to_string()))
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] for unknown ids.
    pub fn get_mut(&mut self, id: &EngineId) -> Result<&mut EngineInstance> {
        self.engines
            .get_mut(id)
            .ok_or_else(|| Error::EngineNotFound(id.to_string()))
    }

    /// The relational store with this id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EngineNotFound`] or [`Error::Invalid`] on kind
    /// mismatch.
    pub fn relational(&self, id: &EngineId) -> Result<&RelationalStore> {
        match self.get(id)? {
            EngineInstance::Relational(s) => Ok(s),
            other => Err(Error::Invalid(format!(
                "engine {id} is {}, not relational",
                other.kind()
            ))),
        }
    }

    /// Mutable relational store accessor.
    ///
    /// # Errors
    ///
    /// See [`EngineRegistry::relational`].
    pub fn relational_mut(&mut self, id: &EngineId) -> Result<&mut RelationalStore> {
        match self.get_mut(id)? {
            EngineInstance::Relational(s) => Ok(s),
            other => Err(Error::Invalid(format!(
                "engine {id} is {}, not relational",
                other.kind()
            ))),
        }
    }

    /// Engine ids with kinds, in id order.
    pub fn list(&self) -> Vec<(&EngineId, EngineKind)> {
        self.engines.iter().map(|(id, e)| (id, e.kind())).collect()
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = EngineRegistry::new();
        r.register(
            EngineId::new("db1"),
            EngineInstance::Relational(RelationalStore::new("db1")),
        )
        .unwrap();
        r.register(
            EngineId::new("kv"),
            EngineInstance::KeyValue(KvStore::new("kv")),
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.relational(&EngineId::new("db1")).is_ok());
        assert!(r.relational(&EngineId::new("kv")).is_err());
        assert!(r.get(&EngineId::new("nope")).is_err());
        let err = r.register(
            EngineId::new("db1"),
            EngineInstance::Relational(RelationalStore::new("db1")),
        );
        assert!(matches!(err, Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn kinds_reported() {
        let mut r = EngineRegistry::new();
        r.register(
            EngineId::new("g"),
            EngineInstance::Graph(GraphStore::new("g")),
        )
        .unwrap();
        assert_eq!(r.list()[0].1, EngineKind::Graph);
    }
}

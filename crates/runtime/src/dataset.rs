//! Datasets: the values flowing along IR edges at runtime.

use pspp_common::{DataModel, EngineId, Error, Result, Row, Schema};
use pspp_mlengine::Mlp;

/// What a dataset holds.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Tabular rows with a schema.
    Rows {
        /// Row schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Row>,
    },
    /// A trained model (output of `TrainMlp`).
    Model(Box<Mlp>),
}

/// A dataset: payload + data model + current location.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The payload.
    pub payload: Payload,
    /// The logical data model the payload is expressed in.
    pub model: DataModel,
    /// The engine currently holding the data (`middleware` for values
    /// materialized at the coordinator).
    pub location: EngineId,
}

impl Dataset {
    /// A relational rows dataset.
    pub fn rows(schema: Schema, rows: Vec<Row>, model: DataModel, location: EngineId) -> Self {
        Dataset {
            payload: Payload::Rows { schema, rows },
            model,
            location,
        }
    }

    /// The schema, when tabular.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] for model payloads.
    pub fn schema(&self) -> Result<&Schema> {
        match &self.payload {
            Payload::Rows { schema, .. } => Ok(schema),
            Payload::Model(_) => Err(Error::Execution("dataset holds a model, not rows".into())),
        }
    }

    /// The rows, when tabular.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] for model payloads.
    pub fn try_rows(&self) -> Result<&[Row]> {
        match &self.payload {
            Payload::Rows { rows, .. } => Ok(rows),
            Payload::Model(_) => Err(Error::Execution("dataset holds a model, not rows".into())),
        }
    }

    /// The trained model, when present.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] for tabular payloads.
    pub fn try_model(&self) -> Result<&Mlp> {
        match &self.payload {
            Payload::Model(m) => Ok(m),
            Payload::Rows { .. } => Err(Error::Execution("dataset holds rows, not a model".into())),
        }
    }

    /// Number of rows (0 for models).
    pub fn len(&self) -> usize {
        match &self.payload {
            Payload::Rows { rows, .. } => rows.len(),
            Payload::Model(_) => 0,
        }
    }

    /// Whether the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes.
    pub fn byte_size(&self) -> u64 {
        match &self.payload {
            Payload::Rows { rows, .. } => rows.iter().map(|r| r.byte_size() as u64).sum(),
            Payload::Model(m) => (m.parameter_count() * 8) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType};

    #[test]
    fn accessors_respect_payload_kind() {
        let d = Dataset::rows(
            Schema::new(vec![("a", DataType::Int)]),
            vec![row![1i64]],
            DataModel::Relational,
            EngineId::new("db1"),
        );
        assert_eq!(d.len(), 1);
        assert!(d.schema().is_ok());
        assert!(d.try_model().is_err());
        assert_eq!(d.byte_size(), 8);

        let m = Mlp::new(&[2, 1], 1).unwrap();
        let dm = Dataset {
            payload: Payload::Model(Box::new(m)),
            model: DataModel::Tensor,
            location: EngineId::new("middleware"),
        };
        assert!(dm.try_rows().is_err());
        assert!(dm.try_model().is_ok());
        assert!(dm.is_empty());
        assert!(dm.byte_size() > 0);
    }
}

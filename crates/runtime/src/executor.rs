//! The executor: an orchestration loop over the physical execution
//! layer (§IV-D).
//!
//! All operator execution flows through the
//! [`EngineAdapter`](crate::physical::EngineAdapter) implementations
//! installed in the [`AdapterRegistry`]; the [`Placer`] resolves where
//! each node runs and migrates foreign inputs there; the
//! [`Charger`] posts simulated costs. The
//! loop walks the program's topological stages and runs each stage's
//! independent tasks concurrently (one `std::thread::scope` worker per
//! task), so the pipelined makespan model is backed by real wall-clock
//! parallelism.
//!
//! Distribution is a *plan* property, not an execution-time discovery:
//! [`Placer::plan_distribution`] annotates every node with its
//! [`pspp_ir::ShardPlan`] entry once, and the stage loop consumes it. A
//! task is one (node, shard) pair:
//!
//! * a `Scan` over a partitioned table scatters into one task per shard
//!   replica;
//! * a *colocated* node (a `HashJoin` whose inputs are compatibly
//!   partitioned on the join keys, or a filter/projection preserving a
//!   partitioned input) fans out one task per shard, each consuming its
//!   inputs' per-shard partials — build + probe on that shard's rows —
//!   with a replicated broadcast partner served from its full copy;
//! * everything else runs as a single shard-0 task over gathered
//!   inputs.
//!
//! Per-shard partials merge back in shard order, so colocated and
//! gathered execution are bit-identical (E18 proves byte-equal digests);
//! migration and ledger charges post per shard task exactly as PR 3's
//! scatter-gather scans did. Parallel and sequential modes are likewise
//! bit-identical: every task executes against a private scoped ledger,
//! and the loop merges shard partials in shard order and node results
//! in node-id order after each stage joins.

use std::collections::HashMap;

use pspp_accel::{AcceleratorFleet, CostLedger};
use pspp_common::{DeviceKind, Error, Result, ShardId};
use pspp_ir::{NodeId, Program, ShardPlan, Stage};
use pspp_migrate::{MigrationPath, Migrator};

use crate::dataset::{Dataset, Payload};
use crate::physical::{AdapterRegistry, Charger, ExecCtx, Placer};
use crate::registry::EngineRegistry;

/// Chunks used by the pipelined-stages model (§IV-D).
const PIPELINE_CHUNKS: f64 = 8.0;

/// Execution accounting for one program run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Program outputs in `Program::outputs()` order.
    pub outputs: Vec<Dataset>,
    /// Simulated seconds per live node (execution only).
    pub node_seconds: HashMap<NodeId, f64>,
    /// Simulated seconds spent migrating data across engines.
    pub migration_seconds: f64,
    /// Makespan with sequential stage execution.
    pub makespan_sequential: f64,
    /// Makespan with pipelined stage execution.
    pub makespan_pipelined: f64,
    /// Whether the pipelined makespan is the effective one.
    pub pipelined: bool,
    /// Number of operators that ran on an accelerator.
    pub offloaded: usize,
}

impl ExecutionReport {
    /// The effective makespan under the configured execution mode.
    pub fn makespan(&self) -> f64 {
        if self.pipelined {
            self.makespan_pipelined
        } else {
            self.makespan_sequential
        }
    }
}

/// Everything one (node, shard) task produced, staged for deterministic
/// merging after its stage joins.
#[derive(Debug)]
struct NodeRun {
    id: NodeId,
    output: Dataset,
    /// Simulated execution seconds (excluding migration).
    exec_seconds: f64,
    /// Simulated seconds migrating this node's foreign inputs, summed
    /// across shard tasks (total data-movement work).
    migration_seconds: f64,
    /// Simulated critical-path seconds: the slowest shard task's
    /// execution *plus its own* migration (per-shard migrations run
    /// concurrently with the other shards' tasks, so they overlap).
    critical_seconds: f64,
    /// Whether the node ran on an attached accelerator.
    offloaded: bool,
    /// Cost events from the task's scoped ledger, in posting order.
    events: Vec<pspp_accel::CostEvent>,
}

impl NodeRun {
    /// Folds the next shard's partial into this run (shard-ordered
    /// gather): rows concatenate in shard order, simulated execution
    /// and critical-path time are the slowest replica's (shards run on
    /// distinct engine replicas in parallel, each migrating its own
    /// partial), total migration work and cost events accumulate.
    fn absorb(&mut self, next: NodeRun) -> Result<()> {
        let (Payload::Rows { rows, .. }, Payload::Rows { rows: more, .. }) =
            (&mut self.output.payload, next.output.payload)
        else {
            return Err(Error::Execution(format!(
                "sharded node {} produced a non-row partial",
                self.id
            )));
        };
        rows.extend(more);
        self.exec_seconds = self.exec_seconds.max(next.exec_seconds);
        self.migration_seconds += next.migration_seconds;
        self.critical_seconds = self.critical_seconds.max(next.critical_seconds);
        self.offloaded |= next.offloaded;
        self.events.extend(next.events);
        Ok(())
    }
}

/// The middleware executor.
#[derive(Debug, Clone)]
pub struct Executor {
    fleet: AcceleratorFleet,
    ledger: CostLedger,
    placer: Placer,
    adapters: AdapterRegistry,
    /// Honor device annotations (L2+); otherwise everything runs on CPU.
    offload: bool,
    /// Pipeline stages (L3).
    pipelined: bool,
    /// Run each stage's independent nodes on separate threads.
    parallel: bool,
    /// Execute compatibly-partitioned joins (and distribution-preserving
    /// filters/projections) per shard instead of gathering first.
    colocate: bool,
}

impl Executor {
    /// An executor over a fleet, posting to `ledger`.
    pub fn new(fleet: AcceleratorFleet, ledger: CostLedger) -> Self {
        Executor {
            fleet,
            ledger,
            placer: Placer::default(),
            adapters: AdapterRegistry::standard(),
            offload: true,
            pipelined: false,
            parallel: true,
            colocate: true,
        }
    }

    /// Enables/disables accelerator offload (L2).
    pub fn offload(mut self, on: bool) -> Self {
        self.offload = on;
        self
    }

    /// Enables/disables pipelined stage accounting (L3).
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Enables/disables parallel stage execution (default: on).
    /// Sequential mode produces bit-identical outputs and ledger
    /// totals; it exists for debugging and determinism checks.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables colocated execution of compatibly-partitioned
    /// joins (default: on). Off reverts to the gather-before-join plan,
    /// which is bit-identical and exists for comparison (E18) and
    /// debugging.
    pub fn colocated_joins(mut self, on: bool) -> Self {
        self.colocate = on;
        self
    }

    /// Uses a specific migration path for cross-engine edges.
    pub fn migration_path(mut self, path: MigrationPath) -> Self {
        self.placer = self.placer.with_path(path);
        self
    }

    /// Replaces the migrator (e.g. accelerated or pipelined). The
    /// executor scopes a ledger onto it per node, so any ledger already
    /// attached is superseded.
    pub fn with_migrator(mut self, migrator: Migrator) -> Self {
        self.placer = Placer::new(migrator, self.placer.path());
        self
    }

    /// Installs an extra engine adapter with precedence over the
    /// standard set — the extension point for new backends.
    pub fn with_adapter(
        mut self,
        adapter: std::sync::Arc<dyn crate::physical::EngineAdapter>,
    ) -> Self {
        self.adapters.install(adapter);
        self
    }

    /// The installed adapter registry.
    pub fn adapters(&self) -> &AdapterRegistry {
        &self.adapters
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Executes a validated program against the registry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] (and engine-specific errors) when an
    /// operator cannot run.
    pub fn execute(&self, program: &Program, registry: &EngineRegistry) -> Result<ExecutionReport> {
        program.validate()?;
        // Distribution is planned once, up front: the stage loop never
        // re-derives scatter sets from the registry.
        let plan = Placer::plan_distribution_opts(program, registry, registry, self.colocate)?;
        let stages = program.execution_stages()?;
        let mut results: HashMap<NodeId, Dataset> = HashMap::new();
        // Per-shard partials of nodes feeding colocated consumers, in
        // scatter (gather) order.
        let mut partials: HashMap<NodeId, Vec<Dataset>> = HashMap::new();
        let mut node_seconds: HashMap<NodeId, f64> = HashMap::new();
        let mut node_total: HashMap<NodeId, f64> = HashMap::new();
        let mut migration_seconds = 0.0f64;
        let mut offloaded = 0usize;

        for stage in &stages {
            // Fused nodes alias their input; resolve before compute.
            for &id in &stage.forwards {
                let node = program.node(id);
                let source = *node
                    .inputs
                    .first()
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?;
                let input = results
                    .get(&source)
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?
                    .clone();
                results.insert(id, input);
                if let Some(p) = partials.get(&source) {
                    partials.insert(id, p.clone());
                }
            }
            // Run the stage's independent nodes (possibly on separate
            // threads), then merge in node-id order so parallel and
            // sequential schedules are indistinguishable downstream.
            let (runs, shard_outputs) = self.run_stage(
                program,
                &stage.compute,
                &results,
                &partials,
                &plan,
                registry,
            )?;
            for run in runs {
                for event in run.events {
                    self.ledger.post_event(event);
                }
                node_seconds.insert(run.id, run.exec_seconds);
                node_total.insert(run.id, run.critical_seconds);
                migration_seconds += run.migration_seconds;
                offloaded += usize::from(run.offloaded);
                results.insert(run.id, run.output);
            }
            partials.extend(shard_outputs);
        }

        let (makespan_sequential, makespan_pipelined) = makespans(&stages, &node_total);
        let outputs = program
            .outputs()
            .iter()
            .map(|id| {
                results
                    .get(id)
                    .cloned()
                    .ok_or_else(|| Error::Execution(format!("missing output {id}")))
            })
            .collect::<Result<_>>()?;
        Ok(ExecutionReport {
            outputs,
            node_seconds,
            migration_seconds,
            makespan_sequential,
            makespan_pipelined,
            pipelined: self.pipelined,
            offloaded,
        })
    }

    /// Resolves one task's input datasets. A colocated task at scatter
    /// slot `slot` reads per-shard partials of its partitioned inputs
    /// (and the gathered full copy of replicated/single inputs — the
    /// broadcast side of a join); every other task reads gathered
    /// results.
    fn task_inputs(
        program: &Program,
        id: NodeId,
        slot: Option<usize>,
        results: &HashMap<NodeId, Dataset>,
        partials: &HashMap<NodeId, Vec<Dataset>>,
        plan: &ShardPlan,
    ) -> Result<Vec<Dataset>> {
        program
            .node(id)
            .inputs
            .iter()
            .map(|i| match slot {
                Some(k) if plan.node(*i).distribution.is_partitioned() => partials
                    .get(i)
                    .and_then(|p| p.get(k))
                    .cloned()
                    .ok_or_else(|| {
                        Error::Execution(format!("missing shard partial {k} of {i} for {id}"))
                    }),
                _ => results
                    .get(i)
                    .cloned()
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}"))),
            })
            .collect()
    }

    /// Runs one stage's compute nodes as a scatter-gather task set: one
    /// task per (node, shard replica) for partitioned scans and
    /// colocated nodes, in parallel when enabled and the stage has at
    /// least two tasks. Per-shard partials merge back in shard order
    /// and nodes return in node-id order with the first (by task order)
    /// error propagated, independent of thread scheduling. The second
    /// return value holds the per-shard outputs of nodes whose plan
    /// marks them `partials_needed` (a colocated consumer reads them).
    #[allow(clippy::type_complexity)]
    fn run_stage(
        &self,
        program: &Program,
        compute: &[NodeId],
        results: &HashMap<NodeId, Dataset>,
        partials: &HashMap<NodeId, Vec<Dataset>>,
        plan: &ShardPlan,
        registry: &EngineRegistry,
    ) -> Result<(Vec<NodeRun>, HashMap<NodeId, Vec<Dataset>>)> {
        // The scatter plan: partitioned sources and colocated nodes
        // contribute one task per shard; everything else a single
        // shard-0 task over gathered inputs.
        let mut tasks: Vec<(NodeId, ShardId, Vec<Dataset>)> = Vec::new();
        for &id in compute {
            let info = plan.node(id);
            if program.node(id).inputs.is_empty() {
                for &shard in &info.scatter {
                    tasks.push((id, shard, Vec::new()));
                }
            } else if info.colocated {
                for (k, &shard) in info.scatter.iter().enumerate() {
                    let inputs = Self::task_inputs(program, id, Some(k), results, partials, plan)?;
                    tasks.push((id, shard, inputs));
                }
            } else {
                let inputs = Self::task_inputs(program, id, None, results, partials, plan)?;
                tasks.push((id, ShardId::ZERO, inputs));
            }
        }
        let runs: Vec<Result<NodeRun>> = if self.parallel && tasks.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .drain(..)
                    .map(|(id, shard, inputs)| {
                        scope.spawn(move || self.run_node(program, id, shard, inputs, registry))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                    })
                    .collect()
            })
        } else {
            tasks
                .drain(..)
                .map(|(id, shard, inputs)| self.run_node(program, id, shard, inputs, registry))
                .collect()
        };
        // Gather: merge each node's shard partials in shard order (task
        // order is node-major, shard-minor), surfacing the first error.
        let mut merged: Vec<NodeRun> = Vec::with_capacity(compute.len());
        let mut shard_outputs: HashMap<NodeId, Vec<Dataset>> = HashMap::new();
        for run in runs {
            let run = run?;
            if plan.node(run.id).partials_needed {
                shard_outputs
                    .entry(run.id)
                    .or_default()
                    .push(run.output.clone());
            }
            match merged.last_mut() {
                Some(prev) if prev.id == run.id => prev.absorb(run)?,
                _ => merged.push(run),
            }
        }
        Ok((merged, shard_outputs))
    }

    /// Executes one (node, shard) task against a private scoped ledger:
    /// placement, input migration, adapter dispatch, and cost
    /// attribution — migration and kernel charges post per shard task.
    fn run_node(
        &self,
        program: &Program,
        id: NodeId,
        shard: ShardId,
        inputs: Vec<Dataset>,
        registry: &EngineRegistry,
    ) -> Result<NodeRun> {
        let node = program.node(id);
        let scoped_ledger = CostLedger::new();
        let placer = self.placer.scoped(scoped_ledger.clone());
        let target = Placer::target_engine_of(node, &inputs);
        let (inputs, bill) = placer.stage_datasets(inputs, target.as_ref(), registry)?;

        let device = if self.offload {
            node.annotations.device.unwrap_or(DeviceKind::Cpu)
        } else {
            DeviceKind::Cpu
        };
        let ctx = ExecCtx::new(&self.fleet, &scoped_ledger, self.offload).at_shard(shard);
        let output = self
            .adapters
            .dispatch(&node.op, &inputs, target.as_ref(), registry, &ctx)?;

        // Charge the simulated clock with actual sizes. Joins pay for
        // build + probe (the sum of their input sides — which is how a
        // colocated task with a per-shard probe and a broadcast build
        // side charges less than the gathered join); everything else
        // pays for its largest pass.
        let is_join = matches!(
            node.op,
            pspp_ir::Operator::HashJoin { .. } | pspp_ir::Operator::SortMergeJoin { .. }
        );
        let work_rows = if is_join {
            inputs.iter().map(Dataset::len).sum::<usize>()
        } else {
            inputs
                .iter()
                .map(Dataset::len)
                .max()
                .unwrap_or(output.len())
        }
        .max(output.len());
        let work_bytes = if is_join {
            inputs.iter().map(Dataset::byte_size).sum::<u64>()
        } else {
            inputs
                .iter()
                .map(Dataset::byte_size)
                .max()
                .unwrap_or_else(|| output.byte_size())
        }
        .max(output.byte_size());
        let exec_seconds = if Charger::is_ml_op(&node.op) {
            Charger::ml_seconds(&scoped_ledger)
        } else {
            Charger::new(&self.fleet).charge(
                &scoped_ledger,
                &node.op,
                device,
                work_rows as u64,
                work_bytes,
                id,
            )
        };
        Ok(NodeRun {
            id,
            output,
            exec_seconds,
            migration_seconds: bill.seconds,
            critical_seconds: exec_seconds + bill.seconds,
            offloaded: device != DeviceKind::Cpu && self.fleet.device(device).is_some(),
            events: scoped_ledger.events(),
        })
    }
}

/// Sequential and pipelined makespans over live-node stage times.
fn makespans(stages: &[Stage], node_total: &HashMap<NodeId, f64>) -> (f64, f64) {
    let stage_times: Vec<f64> = stages
        .iter()
        .map(|stage| {
            stage
                .compute
                .iter()
                .filter_map(|id| node_total.get(id))
                .fold(0.0f64, |a, &b| a.max(b))
        })
        .collect();
    // Sum in stage/node order: f64 addition is order-sensitive, and the
    // makespan must be bit-identical across runs and execution modes.
    let sequential: f64 = stages
        .iter()
        .flat_map(|stage| &stage.compute)
        .filter_map(|id| node_total.get(id))
        .sum();
    let bottleneck = stage_times.iter().fold(0.0f64, |a, &b| a.max(b));
    let stage_sum: f64 = stage_times.iter().sum();
    let pipelined = bottleneck + (stage_sum - bottleneck) / PIPELINE_CHUNKS;
    (sequential, pipelined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType, EngineId, Predicate, Schema, TableRef, Value};
    use pspp_ir::{AggFn, Operator};
    use pspp_relstore::RelationalStore;

    use crate::registry::EngineInstance;

    fn registry() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        let mut db1 = RelationalStore::new("db1");
        db1.create_table(
            "admissions",
            Schema::new(vec![
                ("pid", DataType::Int),
                ("age", DataType::Int),
                ("los", DataType::Float),
            ]),
        )
        .unwrap();
        db1.insert(
            "admissions",
            (0..200)
                .map(|i| row![i as i64, (20 + i % 60) as i64, (i % 10) as f64])
                .collect(),
        )
        .unwrap();
        let mut db2 = RelationalStore::new("db2");
        db2.create_table(
            "patients",
            Schema::new(vec![("pid", DataType::Int), ("name", DataType::Str)]),
        )
        .unwrap();
        db2.insert(
            "patients",
            (0..200).map(|i| row![i as i64, format!("p{i}")]).collect(),
        )
        .unwrap();
        r.register(EngineId::new("db1"), EngineInstance::Relational(db1))
            .unwrap();
        r.register(EngineId::new("db2"), EngineInstance::Relational(db2))
            .unwrap();
        r
    }

    fn exec() -> Executor {
        Executor::new(AcceleratorFleet::workstation(), CostLedger::new())
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let mut p = Program::new();
        let s = p.add_source(
            Operator::Scan {
                table: TableRef::new("db1", "admissions"),
                predicate: Predicate::ge("age", 60i64),
                projection: Some(vec!["pid".into(), "age".into()]),
            },
            "sql",
        );
        p.mark_output(s);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert!(!out.is_empty() && out.len() < 200);
        assert_eq!(out.schema().unwrap().arity(), 2);
        assert!(report.makespan_sequential > 0.0);
    }

    #[test]
    fn cross_engine_join_triggers_migration() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        // Execute the join at db1: patient rows must migrate.
        p.node_mut(j).annotations.engine = Some(EngineId::new("db1"));
        p.mark_output(j);
        let e = exec();
        let report = e.execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 200);
        assert!(report.migration_seconds > 0.0);
        assert!(e
            .ledger()
            .events()
            .iter()
            .any(|ev| ev.component == "migrate.transfer"));
    }

    #[test]
    fn fused_nodes_forward_inputs() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![s],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let lim = p.add_node(Operator::Limit { n: 5 }, vec![f], "sql");
        p.mark_output(lim);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 5);
        assert!(!report.node_seconds.contains_key(&f));
    }

    #[test]
    fn train_and_predict_end_to_end() {
        let mut p = Program::new();
        let s1 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let t = p.add_node(
            Operator::TrainMlp {
                label_column: "los".into(),
                hidden: vec![8],
                epochs: 2,
                batch_size: 32,
                learning_rate: 0.1,
            },
            vec![s1],
            "ml",
        );
        let s2 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let pred = p.add_node(Operator::Predict, vec![s2, t], "ml");
        p.mark_output(pred);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert_eq!(out.len(), 200);
        let schema = out.schema().unwrap();
        assert_eq!(schema.names().last().copied(), Some("prediction"));
        for r in out.try_rows().unwrap().iter().take(5) {
            let pr = r[schema.arity() - 1].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn group_by_executes() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                keys: vec![],
                aggs: vec![pspp_ir::AggSpec {
                    func: AggFn::Count,
                    column: "*".into(),
                    output: "n".into(),
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].try_rows().unwrap()[0][0], Value::Int(200));
    }

    #[test]
    fn pipelined_makespan_never_exceeds_sequential() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 30i64),
            },
            vec![a],
            "sql",
        );
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![f],
            "sql",
        );
        p.mark_output(sort);
        let report = exec().pipelined(true).execute(&p, &registry()).unwrap();
        assert!(report.makespan_pipelined <= report.makespan_sequential + 1e-12);
        assert!(report.pipelined);
        assert!(report.makespan() <= report.makespan_sequential);
    }

    #[test]
    fn offload_disabled_runs_cpu_only() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        p.node_mut(sort).annotations.device = Some(DeviceKind::Fpga);
        p.mark_output(sort);
        let report = exec().offload(false).execute(&p, &registry()).unwrap();
        assert_eq!(report.offloaded, 0);
    }

    #[test]
    fn custom_op_fails_cleanly() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c = p.add_node(
            Operator::Custom {
                name: "mystery".into(),
            },
            vec![a],
            "x",
        );
        p.mark_output(c);
        assert!(matches!(
            exec().execute(&p, &registry()),
            Err(Error::Execution(_))
        ));
    }

    /// Records which thread ran each `Custom { name: "probe" }` node —
    /// the witness that parallel stages really fan out.
    #[derive(Debug, Default)]
    struct ThreadProbeAdapter {
        seen: std::sync::Mutex<Vec<std::thread::ThreadId>>,
    }

    impl crate::physical::EngineAdapter for ThreadProbeAdapter {
        fn name(&self) -> &'static str {
            "thread-probe"
        }

        fn supports(&self, op: &Operator) -> bool {
            matches!(op, Operator::Custom { name } if name == "probe")
        }

        fn run(
            &self,
            _op: &Operator,
            inputs: &[Dataset],
            _target: Option<&EngineId>,
            _registry: &EngineRegistry,
            _ctx: &ExecCtx<'_>,
        ) -> Result<Dataset> {
            self.seen.lock().unwrap().push(std::thread::current().id());
            Ok(inputs[0].clone())
        }
    }

    /// One scan feeding two independent probe nodes: a single stage with
    /// two compute nodes.
    fn probe_program() -> Program {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c1 = p.add_node(
            Operator::Custom {
                name: "probe".into(),
            },
            vec![s],
            "x",
        );
        let c2 = p.add_node(
            Operator::Custom {
                name: "probe".into(),
            },
            vec![s],
            "x",
        );
        p.mark_output(c1);
        p.mark_output(c2);
        p
    }

    #[test]
    fn parallel_stage_uses_separate_threads_with_identical_results() {
        let p = probe_program();
        let r = registry();

        let probe = std::sync::Arc::new(ThreadProbeAdapter::default());
        let parallel = exec().with_adapter(probe.clone());
        let par_report = parallel.execute(&p, &r).unwrap();
        {
            let seen = probe.seen.lock().unwrap();
            assert_eq!(seen.len(), 2);
            assert_ne!(seen[0], seen[1], "stage nodes shared one thread");
            assert!(
                seen.iter().all(|&t| t != std::thread::current().id()),
                "stage nodes ran on the orchestrator thread"
            );
        }

        let probe_seq = std::sync::Arc::new(ThreadProbeAdapter::default());
        let sequential = exec().with_adapter(probe_seq.clone()).parallel(false);
        let seq_report = sequential.execute(&p, &r).unwrap();
        {
            let seen = probe_seq.seen.lock().unwrap();
            assert_eq!(seen.len(), 2);
            assert_eq!(seen[0], seen[1]);
        }

        for (a, b) in par_report.outputs.iter().zip(&seq_report.outputs) {
            assert_eq!(a.try_rows().unwrap(), b.try_rows().unwrap());
        }
        assert_eq!(
            parallel.ledger().total(),
            sequential.ledger().total(),
            "parallel and sequential runs must charge identical totals"
        );
        assert_eq!(parallel.ledger().events(), sequential.ledger().events());
    }

    #[test]
    fn sharded_scan_gathers_identical_rows_and_cuts_scan_time() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.mark_output(s);
        let flat = registry();
        let base = exec().execute(&p, &flat).unwrap();

        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::range(
                    "pid",
                    vec![50i64.into(), 100i64.into(), 150i64.into()],
                ),
            )
            .unwrap();
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            base.outputs[0].try_rows().unwrap(),
            "range scatter-gather reproduces the unsharded scan bit-for-bit"
        );
        assert!(
            report.node_seconds[&s] < base.node_seconds[&s],
            "4 parallel shard replicas must beat one ({} vs {})",
            report.node_seconds[&s],
            base.node_seconds[&s]
        );

        let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            seq.outputs[0].try_rows().unwrap()
        );
        assert_eq!(report.node_seconds, seq.node_seconds);
    }

    #[test]
    fn hash_sharded_join_preserves_results() {
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 2),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::hash("pid", 2),
            )
            .unwrap();
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        p.node_mut(j).annotations.engine = Some(EngineId::new("db1"));
        p.mark_output(j);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "every pid still joins");
        assert!(report.migration_seconds > 0.0);
    }

    /// Rows in a canonical order, for set-equality checks against
    /// deployments whose gather order legitimately differs (hash
    /// partitions interleave the insert order even when gathered).
    fn sorted_rows(d: &Dataset) -> Vec<pspp_common::Row> {
        let mut rows = d.try_rows().unwrap().to_vec();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    /// The pid-joined program both colocation tests execute.
    fn pid_join_program() -> (Program, pspp_ir::NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        (p, j)
    }

    #[test]
    fn colocated_join_is_bit_identical_to_gathered_and_faster() {
        let mut sharded = registry();
        for (engine, table) in [("db1", "admissions"), ("db2", "patients")] {
            sharded
                .reshard(
                    &TableRef::new(engine, table),
                    pspp_common::PartitionSpec::hash("pid", 4),
                )
                .unwrap();
        }
        let (p, j) = pid_join_program();

        let flat = exec().execute(&p, &registry()).unwrap();
        let colocated = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();

        assert_eq!(
            colocated.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "colocated and gathered plans must agree bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&colocated.outputs[0]),
            sorted_rows(&flat.outputs[0]),
            "colocated join must reproduce the unsharded row set"
        );
        assert!(
            colocated.node_seconds[&j] < gathered.node_seconds[&j],
            "4 per-shard build+probe tasks must beat one gathered join ({} vs {})",
            colocated.node_seconds[&j],
            gathered.node_seconds[&j]
        );
        // Per-shard migration accounting: every shard task staged its
        // foreign patients partial.
        assert!(colocated.migration_seconds > 0.0);

        // Sequential colocated execution is bit-identical too.
        let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            colocated.outputs[0].try_rows().unwrap(),
            seq.outputs[0].try_rows().unwrap()
        );
        assert_eq!(colocated.node_seconds, seq.node_seconds);
    }

    #[test]
    fn mismatched_partition_keys_gather_and_stay_correct() {
        // admissions hashed on pid, patients hashed on *name*: no
        // colocation — the plan inserts an explicit gather and the
        // join still answers correctly.
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 2),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::hash("name", 2),
            )
            .unwrap();
        let (p, j) = pid_join_program();
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(!plan.node(j).colocated);
        assert_eq!(plan.node(j).gathered_inputs.len(), 2);
        let report = exec().execute(&p, &sharded).unwrap();
        let flat = exec().execute(&p, &registry()).unwrap();
        assert_eq!(
            sorted_rows(&report.outputs[0]),
            sorted_rows(&flat.outputs[0]),
            "gathered join over mismatched layouts stays correct"
        );
    }

    #[test]
    fn replicated_build_side_broadcasts_into_a_colocated_join() {
        // Satellite regression: a replicated table is colocatable with
        // any hashed partner — the broadcast join builds each shard
        // task against the full copy.
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::replicated(2),
            )
            .unwrap();
        let (p, j) = pid_join_program();
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(j).colocated, "broadcast join must colocate");
        assert_eq!(plan.node(j).scatter.len(), 4);

        let flat = exec().execute(&p, &registry()).unwrap();
        let broadcast = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            broadcast.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "broadcast and gathered plans must agree bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&broadcast.outputs[0]),
            sorted_rows(&flat.outputs[0]),
            "broadcast join must reproduce the unsharded row set"
        );
        assert!(broadcast.node_seconds[&j] < gathered.node_seconds[&j]);
    }

    #[test]
    fn filter_between_scan_and_join_executes_per_shard() {
        // An explicit (unfused) filter preserves its input's
        // distribution, so the join downstream still colocates and the
        // filter itself fans out per shard.
        let mut sharded = registry();
        for (engine, table) in [("db1", "admissions"), ("db2", "patients")] {
            sharded
                .reshard(
                    &TableRef::new(engine, table),
                    pspp_common::PartitionSpec::hash("pid", 2),
                )
                .unwrap();
        }
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 30i64),
            },
            vec![a],
            "sql",
        );
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(f).colocated, "filter rides the shard layout");
        assert!(plan.node(j).colocated);
        let report = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();
        let flat = exec().execute(&p, &registry()).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "per-shard filter + colocated join == gathered plan bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&report.outputs[0]),
            sorted_rows(&flat.outputs[0])
        );
    }

    #[test]
    fn annotated_scan_of_partitioned_table_still_reads_every_shard() {
        // Regression: an optimizer annotation diverting a scan node to
        // another engine must not narrow the read to shard 0 of the
        // table's home (which holds only a fraction of the rows).
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.node_mut(s).annotations.engine = Some(EngineId::new("db2"));
        p.mark_output(s);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "rows silently dropped");
    }

    #[test]
    fn replicated_table_reads_one_replica() {
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::replicated(3),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.mark_output(s);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "no duplicate rows gathered");
    }

    #[test]
    fn parallel_stage_error_is_deterministic() {
        // Two failing customs in one stage: the lower node id's error
        // must win regardless of which thread finishes first.
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c1 = p.add_node(
            Operator::Custom {
                name: "boom1".into(),
            },
            vec![s],
            "x",
        );
        let c2 = p.add_node(
            Operator::Custom {
                name: "boom2".into(),
            },
            vec![s],
            "x",
        );
        p.mark_output(c1);
        p.mark_output(c2);
        for _ in 0..8 {
            match exec().execute(&p, &registry()) {
                Err(Error::Execution(msg)) => assert!(msg.contains("boom1"), "got {msg}"),
                other => panic!("expected execution error, got {other:?}"),
            }
        }
    }
}

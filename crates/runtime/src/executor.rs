//! The executor: an orchestration loop over the physical execution
//! layer (§IV-D).
//!
//! All operator execution flows through the
//! [`EngineAdapter`](crate::physical::EngineAdapter) implementations
//! installed in the [`AdapterRegistry`]; the [`Placer`] resolves where
//! each node runs and migrates foreign inputs there; the
//! [`Charger`] posts simulated costs. The
//! loop walks the program's topological stages and runs each stage's
//! independent tasks concurrently (one `std::thread::scope` worker per
//! task), so the pipelined makespan model is backed by real wall-clock
//! parallelism.
//!
//! Distribution is a *plan* property, not an execution-time discovery:
//! [`Placer::plan_distribution`] annotates every node with its
//! [`pspp_ir::ShardPlan`] entry once — including one typed
//! [`ExchangeKind`] per input edge — and the stage loop consumes it. A
//! task is one (node, shard) pair:
//!
//! * a `Scan` over a partitioned table scatters into one task per shard
//!   replica;
//! * a *colocated* node (aligned [`ExchangeKind::Local`] edges) fans
//!   out one task per shard, each consuming its inputs' per-shard
//!   partials — build + probe on that shard's rows — with a
//!   [`ExchangeKind::Broadcast`] partner served from its full copy;
//! * a *shuffled* `HashJoin` ([`ExchangeKind::ShuffleHash`] edges)
//!   routes each side's rows into destination-shard buckets by the
//!   stable FNV rule, runs one build+probe task per destination, and
//!   its barrier splices the outputs back into the gathered probe
//!   order (per-probe-row match counts), so shuffled and gathered
//!   plans are byte-identical;
//! * a partial-aggregate `GroupBy` ([`ExchangeKind::MergePartials`])
//!   runs one partial-aggregation task per input shard and merges the
//!   partial states in shard order;
//! * everything else runs as a single shard-0 task over inputs
//!   gathered through explicit [`ExchangeKind::Gather`] edges.
//!
//! Exchange rows are charged to the ledger as migration-class transfer
//! events on the node's critical path. Parallel and sequential modes
//! are bit-identical: every task executes against a private scoped
//! ledger, and the loop merges shard partials in shard order and node
//! results in node-id order after each stage joins.

use std::collections::HashMap;

use pspp_accel::exchange::shuffle_bill;
use pspp_accel::{AcceleratorFleet, CostEvent, CostLedger, EventKind, Interconnect, SimDuration};
use pspp_common::{DeviceKind, Distribution, Error, Result, Row, ShardId};
use pspp_ir::{ExchangeKind, NodeId, Operator, PlanOptions, Program, ShardPlan, Stage};
use pspp_migrate::{MigrationPath, Migrator};
use pspp_relstore::ops as relops;
use pspp_telemetry::{ExchangeTrace, MetricsRegistry, NodeTrace, TaskTrace};

use crate::dataset::{Dataset, Payload};
use crate::physical::{AdapterRegistry, Charger, ExecCtx, Placer};
use crate::registry::EngineRegistry;

/// Chunks used by the pipelined-stages model (§IV-D).
const PIPELINE_CHUNKS: f64 = 8.0;

/// Simulated per-destination-shard bookkeeping of an exchange barrier
/// (bucket open + ordered splice), mirroring the optimizer's gather
/// overhead so predictions and charges share one constant scale.
const EXCHANGE_TASK_OVERHEAD_S: f64 = 2e-6;

/// Execution accounting for one program run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Program outputs in `Program::outputs()` order.
    pub outputs: Vec<Dataset>,
    /// Simulated seconds per live node (execution only).
    pub node_seconds: HashMap<NodeId, f64>,
    /// Simulated seconds spent migrating data across engines.
    pub migration_seconds: f64,
    /// Makespan with sequential stage execution.
    pub makespan_sequential: f64,
    /// Makespan with pipelined stage execution.
    pub makespan_pipelined: f64,
    /// Whether the pipelined makespan is the effective one.
    pub pipelined: bool,
    /// Number of operators that ran on an accelerator.
    pub offloaded: usize,
    /// The device each (node, shard) task actually ran on — consumed
    /// from the plan's per-slot picks (never re-derived), with host
    /// fallback where a shard's fleet lacks the planned device. The
    /// acceptance check compares this map against
    /// `PlacementPlan::device_picks`.
    pub device_assignments: HashMap<(NodeId, ShardId), DeviceKind>,
    /// Per-node execution traces in the stage loop's merge order — the
    /// order whose `critical_seconds` sum reproduces
    /// `makespan_sequential` bit-for-bit. Always collected (they are
    /// cheap and pure); renderers consume them on demand.
    pub traces: Vec<NodeTrace>,
    /// Device-resident fused chains the tasks actually honored,
    /// reconstructed from the per-task fusion tags and indexed like the
    /// plan's `fused_chains` — so planned == executed fusion is
    /// assertable (members dropped by host fallbacks surface as shorter
    /// chains, never silently).
    pub fused_chains: Vec<pspp_ir::FusedChain>,
    /// Total simulated device-queue wait the tasks paid.
    pub queue_wait_seconds: f64,
}

impl ExecutionReport {
    /// The effective makespan under the configured execution mode.
    pub fn makespan(&self) -> f64 {
        if self.pipelined {
            self.makespan_pipelined
        } else {
            self.makespan_sequential
        }
    }
}

/// The orchestrator-side state of one shuffled node's exchange: where
/// each probe row went, the routed inputs (for the barrier's match
/// counts), and the exchange's simulated transfer bill.
#[derive(Debug)]
struct ShuffleBarrier {
    /// Global probe-row indices per destination bucket, in source
    /// order.
    probe_origins: Vec<Vec<usize>>,
    /// Rows routed across shards.
    routed_rows: u64,
    /// Bytes routed across shards.
    bytes: u64,
    /// Simulated seconds of the exchange (partition + serialize +
    /// wire + decode, plus per-shard overhead).
    seconds: f64,
    /// Device the accelerated leg of the exchange ran on (`Cpu` when
    /// every stage stayed on the host).
    device: DeviceKind,
    /// Rows served from a materialized repartition — replayed from the
    /// stored index buckets instead of crossing the wire.
    served_rows: u64,
    /// Bytes those served rows would have routed.
    served_bytes: u64,
    /// Bytes persisted into the repartition store by this exchange.
    stored_bytes: u64,
    /// Simulated seconds of the one-time memory copy persisting them.
    store_seconds: f64,
}

/// One (node, shard) unit of stage work, resolved and ready to run.
#[derive(Debug)]
struct Task {
    id: NodeId,
    shard: ShardId,
    /// Scatter-slot index of this task in the node's gather order —
    /// the key into the plan's per-slot device picks.
    slot: usize,
    inputs: Vec<Dataset>,
    /// Operator override (the per-shard partial of a merged
    /// aggregation); `None` runs the node's own.
    op: Option<Operator>,
    /// Whether this is a shuffled-join bucket whose per-probe-row
    /// match counts the barrier needs for its splice.
    count_matches: bool,
}

impl Task {
    fn new(id: NodeId, shard: ShardId, slot: usize, inputs: Vec<Dataset>) -> Self {
        Task {
            id,
            shard,
            slot,
            inputs,
            op: None,
            count_matches: false,
        }
    }
}

/// Everything one (node, shard) task produced, staged for deterministic
/// merging after its stage joins.
#[derive(Debug)]
struct NodeRun {
    id: NodeId,
    output: Dataset,
    /// Simulated execution seconds (excluding migration).
    exec_seconds: f64,
    /// Simulated seconds migrating this node's foreign inputs, summed
    /// across shard tasks (total data-movement work).
    migration_seconds: f64,
    /// Simulated critical-path seconds: the slowest shard task's
    /// execution *plus its own* migration (per-shard migrations run
    /// concurrently with the other shards' tasks, so they overlap).
    critical_seconds: f64,
    /// Whether the node ran on an attached accelerator.
    offloaded: bool,
    /// The (shard, device) assignment of each task folded into this
    /// run, in task (gather) order.
    assignments: Vec<(ShardId, DeviceKind)>,
    /// Cost events from the task's scoped ledger, in posting order.
    events: Vec<pspp_accel::CostEvent>,
    /// For shuffled join tasks: matches each probe-bucket row produced,
    /// in bucket order — computed in the task so the work parallelizes
    /// with the join itself; the barrier uses them as splice chunk
    /// sizes.
    probe_counts: Option<Vec<usize>>,
    /// Per-task traces folded into this run, in task (gather) order.
    tasks: Vec<TaskTrace>,
    /// Exchange edges charged while merging this run.
    exchanges: Vec<ExchangeTrace>,
}

impl NodeRun {
    /// Folds the next shard's partial into this run (shard-ordered
    /// gather): rows concatenate in shard order, simulated execution
    /// and critical-path time are the slowest replica's (shards run on
    /// distinct engine replicas in parallel, each migrating its own
    /// partial), total migration work and cost events accumulate.
    fn absorb(&mut self, next: NodeRun) -> Result<()> {
        let (Payload::Rows { rows, .. }, Payload::Rows { rows: more, .. }) =
            (&mut self.output.payload, next.output.payload)
        else {
            return Err(Error::Execution(format!(
                "sharded node {} produced a non-row partial",
                self.id
            )));
        };
        rows.extend(more);
        self.exec_seconds = self.exec_seconds.max(next.exec_seconds);
        self.migration_seconds += next.migration_seconds;
        self.critical_seconds = self.critical_seconds.max(next.critical_seconds);
        self.offloaded |= next.offloaded;
        self.assignments.extend(next.assignments);
        self.events.extend(next.events);
        self.tasks.extend(next.tasks);
        self.exchanges.extend(next.exchanges);
        Ok(())
    }
}

/// The middleware executor.
#[derive(Debug, Clone)]
pub struct Executor {
    fleet: AcceleratorFleet,
    ledger: CostLedger,
    placer: Placer,
    adapters: AdapterRegistry,
    /// Honor device annotations (L2+); otherwise everything runs on CPU.
    offload: bool,
    /// Pipeline stages (L3).
    pipelined: bool,
    /// Run each stage's independent nodes on separate threads.
    parallel: bool,
    /// Execute compatibly-partitioned joins (and distribution-preserving
    /// filters/projections) per shard instead of gathering first.
    colocate: bool,
    /// Emit shuffle/merge-partials exchanges for mismatched-key joins
    /// and non-partition-wise aggregations instead of gathering.
    exchange: bool,
    /// Persist shuffled layouts into the registry's materialized-
    /// repartition store and serve repeat shuffles from them.
    materialize: bool,
    /// Metrics sink for executor/placer/charger instrumentation
    /// (`None` runs unobserved).
    metrics: Option<MetricsRegistry>,
}

impl Executor {
    /// An executor over a fleet, posting to `ledger`.
    pub fn new(fleet: AcceleratorFleet, ledger: CostLedger) -> Self {
        Executor {
            fleet,
            ledger,
            placer: Placer::default(),
            adapters: AdapterRegistry::standard(),
            offload: true,
            pipelined: false,
            parallel: true,
            colocate: true,
            exchange: true,
            materialize: false,
            metrics: None,
        }
    }

    /// Records executor, placer and charger instrumentation into
    /// `metrics`. All recorded values are integer counts or bucketed
    /// simulated durations, so observation never perturbs execution and
    /// snapshots are deterministic at any parallelism.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Enables/disables accelerator offload (L2).
    pub fn offload(mut self, on: bool) -> Self {
        self.offload = on;
        self
    }

    /// Enables/disables pipelined stage accounting (L3).
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Enables/disables parallel stage execution (default: on).
    /// Sequential mode produces bit-identical outputs and ledger
    /// totals; it exists for debugging and determinism checks.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables colocated execution of compatibly-partitioned
    /// joins (default: on). Off reverts to the gather-before-join plan,
    /// which is bit-identical and exists for comparison (E18) and
    /// debugging.
    pub fn colocated_joins(mut self, on: bool) -> Self {
        self.colocate = on;
        self
    }

    /// Enables/disables the repartitioning exchanges (default: on):
    /// shuffled joins on mismatched partition keys and
    /// partial-aggregate + merge `GroupBy`s. Off reverts those nodes to
    /// the gathered plan, which is bit-identical and exists for
    /// comparison (E19) and debugging.
    pub fn exchange(mut self, on: bool) -> Self {
        self.exchange = on;
        self
    }

    /// Enables/disables materialized repartitions (default: off): when
    /// on, shuffle edges whose cumulative exchange cost exceeds the
    /// one-time copy cost ([`pspp_ir::repartition_pays`]) persist their
    /// routed layout into the registry's
    /// [`MaterializedRepartitions`](pspp_common::MaterializedRepartitions)
    /// store, and later executions of the same edge serve the stored
    /// buckets — zero rows routed, zero bytes billed. Serving replays
    /// the stored index lists against the live gathered input, so
    /// served and routed runs stay byte-identical; any registry epoch
    /// bump (reshard, rebalance, DDL) invalidates every stored layout.
    pub fn materialize_repartitions(mut self, on: bool) -> Self {
        self.materialize = on;
        self
    }

    /// Uses a specific migration path for cross-engine edges.
    pub fn migration_path(mut self, path: MigrationPath) -> Self {
        self.placer = self.placer.with_path(path);
        self
    }

    /// Replaces the migrator (e.g. accelerated or pipelined). The
    /// executor scopes a ledger onto it per node, so any ledger already
    /// attached is superseded.
    pub fn with_migrator(mut self, migrator: Migrator) -> Self {
        self.placer = Placer::new(migrator, self.placer.path());
        self
    }

    /// Installs an extra engine adapter with precedence over the
    /// standard set — the extension point for new backends.
    pub fn with_adapter(
        mut self,
        adapter: std::sync::Arc<dyn crate::physical::EngineAdapter>,
    ) -> Self {
        self.adapters.install(adapter);
        self
    }

    /// The installed adapter registry.
    pub fn adapters(&self) -> &AdapterRegistry {
        &self.adapters
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Executes a validated program against the registry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] (and engine-specific errors) when an
    /// operator cannot run.
    pub fn execute(&self, program: &Program, registry: &EngineRegistry) -> Result<ExecutionReport> {
        program.validate()?;
        // Distribution is planned once, up front: the stage loop never
        // re-derives scatter sets from the registry. With materialized
        // repartitions on, the planner consults the registry's copy
        // store so edges with a live layout plan as copy-served
        // exchanges even where a fresh shuffle would not pay.
        let options = PlanOptions {
            colocate: self.colocate,
            exchange: self.colocate && self.exchange,
        };
        let plan = if self.materialize {
            let copies = registry.repartitions();
            Placer::plan_distribution_copies(program, registry, registry, options, |k| {
                copies.contains(k)
            })?
        } else {
            Placer::plan_distribution_opts(program, registry, registry, options)?
        };
        let stages = program.execution_stages()?;
        let mut results: HashMap<NodeId, Dataset> = HashMap::new();
        // Per-shard partials of nodes feeding colocated consumers, in
        // scatter (gather) order.
        let mut partials: HashMap<NodeId, Vec<Dataset>> = HashMap::new();
        let mut node_seconds: HashMap<NodeId, f64> = HashMap::new();
        let mut node_total: HashMap<NodeId, f64> = HashMap::new();
        let mut migration_seconds = 0.0f64;
        let mut offloaded = 0usize;
        let mut device_assignments: HashMap<(NodeId, ShardId), DeviceKind> = HashMap::new();
        let mut traces: Vec<NodeTrace> = Vec::new();

        for (stage_idx, stage) in stages.iter().enumerate() {
            // Fused nodes alias their input; resolve before compute.
            for &id in &stage.forwards {
                let node = program.node(id);
                let source = *node
                    .inputs
                    .first()
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?;
                let input = results
                    .get(&source)
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?
                    .clone();
                results.insert(id, input);
                if let Some(p) = partials.get(&source) {
                    partials.insert(id, p.clone());
                }
            }
            // Run the stage's independent nodes (possibly on separate
            // threads), then merge in node-id order so parallel and
            // sequential schedules are indistinguishable downstream.
            let (runs, shard_outputs) = self.run_stage(
                program,
                &stage.compute,
                &results,
                &partials,
                &plan,
                registry,
            )?;
            for run in runs {
                for event in run.events {
                    self.ledger.post_event(event);
                }
                for &(shard, device) in &run.assignments {
                    device_assignments.insert((run.id, shard), device);
                }
                node_seconds.insert(run.id, run.exec_seconds);
                node_total.insert(run.id, run.critical_seconds);
                migration_seconds += run.migration_seconds;
                offloaded += usize::from(run.offloaded);
                // Trace appended in merge order — the same order
                // `makespans` sums node times, so a span tree built
                // over these traces reproduces the sequential makespan
                // exactly.
                let trace = NodeTrace {
                    id: run.id,
                    op: program.node(run.id).op.name().to_string(),
                    stage: stage_idx,
                    rows: run.output.len(),
                    exec_seconds: run.exec_seconds,
                    migration_seconds: run.migration_seconds,
                    critical_seconds: run.critical_seconds,
                    tasks: run.tasks,
                    exchanges: run.exchanges,
                };
                self.observe_run(&trace, run.offloaded);
                traces.push(trace);
                results.insert(run.id, run.output);
            }
            partials.extend(shard_outputs);
        }

        let (makespan_sequential, makespan_pipelined) = makespans(&stages, &node_total);
        // Rebuild the executed fused chains from the honored per-task
        // tags: same indices as the plan's chains, members in chain
        // position order, savings summed from the charger's resident-
        // link discounts.
        let mut executed_chains: std::collections::BTreeMap<
            usize,
            Vec<(usize, NodeId, ShardId, DeviceKind, f64)>,
        > = std::collections::BTreeMap::new();
        let mut queue_wait_seconds = 0.0f64;
        for trace in &traces {
            for task in &trace.tasks {
                queue_wait_seconds += task.queue_seconds;
                if let Some(tag) = task.fused {
                    executed_chains.entry(tag.chain).or_default().push((
                        tag.pos,
                        trace.id,
                        task.shard,
                        task.device,
                        task.fused_saved_seconds,
                    ));
                }
            }
        }
        let fused_chains = executed_chains
            .into_values()
            .map(|mut members| {
                members.sort_by_key(|&(pos, ..)| pos);
                pspp_ir::FusedChain {
                    shard: members[0].2,
                    device: members[0].3,
                    nodes: members.iter().map(|&(_, id, ..)| id).collect(),
                    saved_seconds: members.iter().map(|&(.., s)| s).sum(),
                }
            })
            .collect();
        let outputs = program
            .outputs()
            .iter()
            .map(|id| {
                results
                    .get(id)
                    .cloned()
                    .ok_or_else(|| Error::Execution(format!("missing output {id}")))
            })
            .collect::<Result<_>>()?;
        Ok(ExecutionReport {
            outputs,
            node_seconds,
            migration_seconds,
            makespan_sequential,
            makespan_pipelined,
            pipelined: self.pipelined,
            offloaded,
            device_assignments,
            traces,
            fused_chains,
            queue_wait_seconds,
        })
    }

    /// Records one merged node run into the metrics registry (no-op when
    /// unobserved). Runs on the orchestrator thread in merge order; every
    /// recorded value is an integer count or a bucketed simulated
    /// duration, so snapshots are deterministic.
    fn observe_run(&self, trace: &NodeTrace, offloaded: bool) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        metrics
            .counter(
                "pspp_executor_nodes_total",
                "Plan nodes executed",
                &[("op", &trace.op)],
            )
            .inc();
        if offloaded {
            metrics
                .counter(
                    "pspp_executor_offloaded_nodes_total",
                    "Plan nodes that ran on an accelerator",
                    &[],
                )
                .inc();
        }
        metrics
            .histogram(
                "pspp_node_critical_seconds",
                "Simulated critical-path seconds per plan node",
                &[],
            )
            .observe_seconds(trace.critical_seconds);
        for task in &trace.tasks {
            let device = format!("{:?}", task.device);
            metrics
                .counter(
                    "pspp_executor_tasks_total",
                    "Per-shard tasks executed",
                    &[("device", &device)],
                )
                .inc();
            if task.fallback() {
                metrics
                    .counter(
                        "pspp_host_fallbacks_total",
                        "Tasks whose planned accelerator was unavailable",
                        &[],
                    )
                    .inc();
            }
            if task.queue_seconds > 0.0 {
                metrics
                    .histogram(
                        "pspp_device_queue_seconds",
                        "Simulated wait for a contended device per task",
                        &[("device", &device)],
                    )
                    .observe_seconds(task.queue_seconds);
            }
            // Count each chain once, at its head.
            if task.fused.is_some_and(|tag| tag.pos == 0) {
                metrics
                    .counter(
                        "pspp_fused_chains",
                        "Device-resident fused chains executed",
                        &[("device", &device)],
                    )
                    .inc();
            }
        }
        for exchange in &trace.exchanges {
            metrics
                .counter(
                    "pspp_exchange_rows_total",
                    "Rows routed through exchange edges",
                    &[("kind", exchange.kind)],
                )
                .add(exchange.rows as u64);
            metrics
                .counter(
                    "pspp_exchange_bytes_total",
                    "Bytes moved through exchange edges",
                    &[("kind", exchange.kind)],
                )
                .add(exchange.bytes as u64);
        }
    }

    /// Resolves one task's input datasets from its plan's typed
    /// exchange edges: a task at scatter slot `slot` reads per-shard
    /// partials through aligned [`ExchangeKind::Local`] edges and
    /// [`ExchangeKind::MergePartials`] edges (partial aggregation), and
    /// the gathered full copy through everything else
    /// ([`ExchangeKind::Broadcast`] build sides,
    /// [`ExchangeKind::Gather`]ed and unsharded inputs).
    fn task_inputs(
        program: &Program,
        id: NodeId,
        slot: Option<usize>,
        results: &HashMap<NodeId, Dataset>,
        partials: &HashMap<NodeId, Vec<Dataset>>,
        plan: &ShardPlan,
    ) -> Result<Vec<Dataset>> {
        let info = plan.node(id);
        program
            .node(id)
            .inputs
            .iter()
            .enumerate()
            .map(|(idx, i)| {
                let reads_partial = match info.exchange(idx) {
                    ExchangeKind::Local => {
                        info.colocated && plan.node(*i).distribution.is_partitioned()
                    }
                    ExchangeKind::MergePartials => true,
                    _ => false,
                };
                match slot {
                    Some(k) if reads_partial => partials
                        .get(i)
                        .and_then(|p| p.get(k))
                        .cloned()
                        .ok_or_else(|| {
                            Error::Execution(format!("missing shard partial {k} of {i} for {id}"))
                        }),
                    _ => results
                        .get(i)
                        .cloned()
                        .ok_or_else(|| Error::Execution(format!("missing input for {id}"))),
                }
            })
            .collect()
    }

    /// Routes a shuffled node's inputs into destination-shard buckets:
    /// [`ExchangeKind::ShuffleHash`] edges re-hash the input's gathered
    /// rows by the stable FNV rule (bucket order = source order, so the
    /// barrier's splice is deterministic); every other edge broadcasts
    /// the full copy to each destination task. Returns the per-
    /// destination input sets plus the barrier state (probe-row origins
    /// and the exchange's simulated transfer bill).
    fn shuffle_inputs(
        &self,
        program: &Program,
        id: NodeId,
        plan: &ShardPlan,
        results: &HashMap<NodeId, Dataset>,
        registry: &EngineRegistry,
    ) -> Result<(Vec<Vec<Dataset>>, ShuffleBarrier)> {
        let node = program.node(id);
        let info = plan.node(id);
        let width = info.scatter_width();
        let mut dest_inputs: Vec<Vec<Dataset>> = vec![Vec::new(); width];
        let mut probe_origins: Vec<Vec<usize>> = Vec::new();
        let mut bytes = 0u64;
        let mut routed_rows = 0u64;
        let mut served_rows = 0u64;
        let mut served_bytes = 0u64;
        // Freshly routed edges eligible for persistence, deferred until
        // the exchange bill (their amortization evidence) is known.
        let mut routed_copies: Vec<(pspp_common::CopyKey, Vec<Vec<usize>>, u64)> = Vec::new();
        let repartitions = registry.repartitions();
        for (idx, input) in node.inputs.iter().enumerate() {
            let d = results
                .get(input)
                .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?;
            match info.exchange(idx) {
                ExchangeKind::ShuffleHash { key, width: w } => {
                    let schema = d.schema()?;
                    let rows = d.try_rows()?;
                    let copy_key = if self.materialize {
                        pspp_ir::shuffle_copy_key(program, *input, key, *w)
                    } else {
                        None
                    };
                    // A live stored layout replays its index buckets
                    // against the gathered input — byte-identical to
                    // routing, with zero rows crossing the wire. A
                    // stale or mismatched entry falls back to routing.
                    let served = copy_key
                        .as_ref()
                        .and_then(|k| repartitions.lookup(k, rows.len()));
                    let buckets = match served {
                        Some(buckets) => {
                            served_rows += rows.len() as u64;
                            served_bytes += d.byte_size();
                            buckets
                        }
                        None => {
                            let target = Distribution::repartition(key.clone(), *w);
                            let buckets = target.route_indices(schema, rows)?;
                            bytes += d.byte_size();
                            routed_rows += rows.len() as u64;
                            if let Some(k) = copy_key {
                                routed_copies.push((k, buckets.clone(), d.byte_size()));
                            }
                            buckets
                        }
                    };
                    for (k, bucket) in buckets.iter().enumerate() {
                        let routed: Vec<Row> = bucket.iter().map(|&i| rows[i].clone()).collect();
                        dest_inputs[k].push(Dataset::rows(
                            schema.clone(),
                            routed,
                            d.model,
                            d.location.clone(),
                        ));
                    }
                    if idx == 0 {
                        probe_origins = buckets;
                    }
                }
                _ => {
                    for inputs in &mut dest_inputs {
                        inputs.push(d.clone());
                    }
                }
            }
        }
        if probe_origins.is_empty() {
            return Err(Error::Execution(format!(
                "shuffled node {id} has no shuffled probe side"
            )));
        }
        // The exchange's data plane is billed by the shared accel
        // exchange model: hash-partition the routed rows, serialize one
        // stream per destination shard, cross the 10GbE wire, decode on
        // the receivers — each kernel stage on the fleet's best device
        // when offload is enabled, the host otherwise. The 10GbE wire
        // is a fixed modeling assumption shared with the cost model's
        // *default* `migration_link` — a deployment that reconfigures
        // the model's link (or the executor's migration path) changes
        // only how staged inputs are billed, not this barrier charge.
        // Row placement itself always uses the stable FNV rule above,
        // so the device choice never moves a byte.
        let bill = shuffle_bill(
            &self.fleet,
            self.offload,
            routed_rows,
            bytes,
            width,
            &Interconnect::network_10g(),
        );
        let seconds = bill.seconds + width as f64 * EXCHANGE_TASK_OVERHEAD_S;
        let device = if bill.serialize_device != DeviceKind::Cpu {
            bill.serialize_device
        } else {
            bill.partition_device
        };
        // Amortization bookkeeping: each freshly routed edge records
        // its share of this exchange's bill; once the cumulative
        // shuffle spend on a key exceeds the one-time memory copy
        // ([`pspp_ir::repartition_pays`]), the layout persists and a
        // copy charge is added to the barrier.
        let mut stored_bytes = 0u64;
        for (key, buckets, edge_bytes) in routed_copies {
            let share = if bytes > 0 {
                edge_bytes as f64 / bytes as f64
            } else {
                0.0
            };
            let cumulative = repartitions.observe(&key, bill.seconds * share);
            if pspp_ir::repartition_pays(cumulative, edge_bytes) {
                stored_bytes += edge_bytes;
                repartitions.store(key, buckets, edge_bytes);
            }
        }
        let store_seconds = stored_bytes as f64 / pspp_ir::REPARTITION_COPY_BPS;
        Ok((
            dest_inputs,
            ShuffleBarrier {
                probe_origins,
                routed_rows,
                bytes,
                seconds,
                device,
                served_rows,
                served_bytes,
                stored_bytes,
                store_seconds,
            },
        ))
    }

    /// Runs one stage's compute nodes as a scatter-gather task set: one
    /// task per (node, shard replica) for partitioned scans, colocated
    /// nodes, shuffled joins and partial aggregations, in parallel when
    /// enabled and the stage has at least two tasks. Per-shard results
    /// merge back deterministically — shard-ordered splice for plain
    /// gathers, probe-order splice for shuffle barriers, state merge
    /// for partial aggregations — and nodes return in node-id order
    /// with the first (by task order) error propagated, independent of
    /// thread scheduling. The second return value holds the per-shard
    /// outputs of nodes whose plan marks them `partials_needed` (a
    /// fanned-out consumer reads them).
    #[allow(clippy::type_complexity)]
    fn run_stage(
        &self,
        program: &Program,
        compute: &[NodeId],
        results: &HashMap<NodeId, Dataset>,
        partials: &HashMap<NodeId, Vec<Dataset>>,
        plan: &ShardPlan,
        registry: &EngineRegistry,
    ) -> Result<(Vec<NodeRun>, HashMap<NodeId, Vec<Dataset>>)> {
        // The scatter plan, derived from each node's exchange edges.
        let mut tasks: Vec<Task> = Vec::new();
        let mut barriers: HashMap<NodeId, ShuffleBarrier> = HashMap::new();
        // Merge-partials nodes demoted to a gathered task (float sums).
        let mut demoted: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for &id in compute {
            let info = plan.node(id);
            if program.node(id).inputs.is_empty() {
                for (k, &shard) in info.scatter.iter().enumerate() {
                    tasks.push(Task::new(id, shard, k, Vec::new()));
                }
            } else if info.shuffles() {
                let (dest_inputs, barrier) =
                    self.shuffle_inputs(program, id, plan, results, registry)?;
                barriers.insert(id, barrier);
                for (k, inputs) in dest_inputs.into_iter().enumerate() {
                    let mut task = Task::new(id, info.scatter[k], k, inputs);
                    // The barrier needs this bucket's per-probe-row
                    // match counts; computing them in the task keeps
                    // the work parallel with the join itself.
                    task.count_matches = true;
                    tasks.push(task);
                }
            } else if info.merges_partials() {
                if Self::merge_would_reassociate_floats(program, id, partials, plan)? {
                    // Bit-identity over parallelism: float sums demote
                    // to the gathered single-site aggregation.
                    demoted.insert(id);
                    let inputs = Self::task_inputs(program, id, None, results, partials, plan)?;
                    tasks.push(Task::new(id, ShardId::ZERO, 0, inputs));
                } else {
                    let partial_op = Self::partial_op(program, id)?;
                    for (k, &shard) in info.scatter.iter().enumerate() {
                        let inputs =
                            Self::task_inputs(program, id, Some(k), results, partials, plan)?;
                        let mut task = Task::new(id, shard, k, inputs);
                        task.op = Some(partial_op.clone());
                        tasks.push(task);
                    }
                }
            } else if info.colocated {
                for (k, &shard) in info.scatter.iter().enumerate() {
                    let inputs = Self::task_inputs(program, id, Some(k), results, partials, plan)?;
                    tasks.push(Task::new(id, shard, k, inputs));
                }
            } else {
                let inputs = Self::task_inputs(program, id, None, results, partials, plan)?;
                tasks.push(Task::new(id, ShardId::ZERO, 0, inputs));
            }
        }
        let runs: Vec<Result<NodeRun>> = if self.parallel && tasks.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .drain(..)
                    .map(|task| scope.spawn(move || self.run_node(program, task, registry)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                    })
                    .collect()
            })
        } else {
            tasks
                .drain(..)
                .map(|task| self.run_node(program, task, registry))
                .collect()
        };
        // Barrier: group each node's task runs (task order is
        // node-major, shard-minor), surface the first error, then merge
        // by the node's exchange kind.
        let mut groups: Vec<(NodeId, Vec<NodeRun>)> = Vec::new();
        for run in runs {
            let run = run?;
            match groups.last_mut() {
                Some((gid, g)) if *gid == run.id => g.push(run),
                _ => groups.push((run.id, vec![run])),
            }
        }
        let mut merged: Vec<NodeRun> = Vec::with_capacity(groups.len());
        let mut shard_outputs: HashMap<NodeId, Vec<Dataset>> = HashMap::new();
        for (id, group) in groups {
            let info = plan.node(id);
            if info.partials_needed {
                shard_outputs.insert(id, group.iter().map(|r| r.output.clone()).collect());
            }
            let run = if info.shuffles() {
                let barrier = barriers
                    .remove(&id)
                    .ok_or_else(|| Error::Execution(format!("missing shuffle barrier for {id}")))?;
                Self::splice_shuffle(id, group, &barrier)?
            } else if info.merges_partials() && !demoted.contains(&id) {
                self.merge_partial_runs(program, id, group)?
            } else {
                let mut it = group.into_iter();
                let mut acc = it.next().expect("every group has a task");
                for next in it {
                    acc.absorb(next)?;
                }
                acc
            };
            merged.push(run);
        }
        Ok((merged, shard_outputs))
    }

    /// The per-shard partial operator of a partial-aggregate + merge
    /// `GroupBy` (see [`pspp_ir::partial_agg_specs`]).
    fn partial_op(program: &Program, id: NodeId) -> Result<Operator> {
        match &program.node(id).op {
            Operator::GroupBy { keys, aggs } => Ok(Operator::GroupBy {
                keys: keys.clone(),
                aggs: pspp_ir::partial_agg_specs(aggs),
            }),
            other => Err(Error::Execution(format!(
                "merge-partials planned for non-aggregate {}",
                other.name()
            ))),
        }
    }

    /// Whether a partial-aggregate + merge `GroupBy` must fall back to
    /// the gathered plan to stay bit-identical: float addition is not
    /// associative, so a `Sum`/`Avg` over a `Float` column would merge
    /// to different low bits than the single-site left-to-right fold.
    /// Integer columns (and `Count`/`Min`/`Max` over anything) are
    /// exact, so they keep the per-shard split. The check reads the
    /// input's schema from its first shard partial.
    fn merge_would_reassociate_floats(
        program: &Program,
        id: NodeId,
        partials: &HashMap<NodeId, Vec<Dataset>>,
        plan: &ShardPlan,
    ) -> Result<bool> {
        let Operator::GroupBy { aggs, .. } = &program.node(id).op else {
            return Ok(false);
        };
        let node = program.node(id);
        for (idx, input) in node.inputs.iter().enumerate() {
            if !matches!(plan.node(id).exchange(idx), ExchangeKind::MergePartials) {
                continue;
            }
            let Some(partial) = partials.get(input).and_then(|p| p.first()) else {
                continue;
            };
            let schema = partial.schema()?;
            for a in aggs {
                if !matches!(a.func, pspp_ir::AggFn::Sum | pspp_ir::AggFn::Avg) {
                    continue;
                }
                if schema
                    .field(&a.column)
                    .is_some_and(|f| f.data_type == pspp_common::DataType::Float)
                {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// The shuffle barrier: splices per-destination join outputs back
    /// into the gathered probe order. Each destination's output rows
    /// group into contiguous per-probe-row chunks (the hash join emits
    /// matches in probe order), whose sizes the barrier re-derives from
    /// the routed buckets; re-ordering the chunks by global probe index
    /// reproduces the gathered plan's bytes exactly.
    fn splice_shuffle(
        id: NodeId,
        group: Vec<NodeRun>,
        barrier: &ShuffleBarrier,
    ) -> Result<NodeRun> {
        let mut tagged: Vec<(usize, Vec<Row>)> = Vec::new();
        let mut acc: Option<NodeRun> = None;
        for (d, mut run) in group.into_iter().enumerate() {
            let counts = run.probe_counts.take().ok_or_else(|| {
                Error::Execution(format!("shuffled task of {id} reported no match counts"))
            })?;
            let out_rows = run.output.try_rows()?;
            let mut offset = 0usize;
            for (row_in_bucket, &origin) in barrier.probe_origins[d].iter().enumerate() {
                let n = counts[row_in_bucket];
                if n > 0 {
                    tagged.push((origin, out_rows[offset..offset + n].to_vec()));
                    offset += n;
                }
            }
            if offset != out_rows.len() {
                return Err(Error::Execution(format!(
                    "shuffle barrier for {id} mis-spliced: {offset} of {} rows",
                    out_rows.len()
                )));
            }
            match &mut acc {
                None => acc = Some(run),
                Some(first) => {
                    first.exec_seconds = first.exec_seconds.max(run.exec_seconds);
                    first.migration_seconds += run.migration_seconds;
                    first.critical_seconds = first.critical_seconds.max(run.critical_seconds);
                    first.offloaded |= run.offloaded;
                    first.assignments.extend(run.assignments);
                    first.events.extend(run.events);
                    first.tasks.extend(run.tasks);
                    first.exchanges.extend(run.exchanges);
                }
            }
        }
        let mut run = acc.expect("every shuffled node has at least one task");
        // Splice in probe order: each origin index is unique, and a
        // stable sort keeps its chunk contiguous.
        tagged.sort_by_key(|(origin, _)| *origin);
        let Payload::Rows { rows, .. } = &mut run.output.payload else {
            return Err(Error::Execution(format!(
                "shuffled node {id} produced a non-row output"
            )));
        };
        *rows = tagged.into_iter().flat_map(|(_, chunk)| chunk).collect();
        // The exchange rides the node's critical path and charges its
        // rows as migration-class transfer work.
        run.migration_seconds += barrier.seconds + barrier.store_seconds;
        run.critical_seconds += barrier.seconds + barrier.store_seconds;
        run.events.push(CostEvent {
            component: "exchange.shuffle".into(),
            device: barrier.device,
            kind: EventKind::Transfer,
            bytes: barrier.bytes,
            duration: SimDuration::from_secs(barrier.seconds),
            energy_j: 0.0,
        });
        run.exchanges.push(ExchangeTrace {
            kind: "shuffle",
            rows: barrier.routed_rows as usize,
            bytes: barrier.bytes as usize,
            seconds: barrier.seconds,
            device: barrier.device,
        });
        if barrier.stored_bytes > 0 {
            run.events.push(CostEvent {
                component: "exchange.materialize".into(),
                device: DeviceKind::Cpu,
                kind: EventKind::Transfer,
                bytes: barrier.stored_bytes,
                duration: SimDuration::from_secs(barrier.store_seconds),
                energy_j: 0.0,
            });
        }
        if barrier.served_rows > 0 {
            // Served edges replay stored buckets — no wire crossing, no
            // charge; the trace records the movement they avoided.
            run.exchanges.push(ExchangeTrace {
                kind: "materialized",
                rows: barrier.served_rows as usize,
                bytes: barrier.served_bytes as usize,
                seconds: 0.0,
                device: DeviceKind::Cpu,
            });
        }
        Ok(run)
    }

    /// The merge stage of a partial-aggregate `GroupBy`: concatenates
    /// the per-shard partial states in shard order and combines them
    /// into the final aggregate rows (see
    /// [`pspp_relstore::ops::merge_group_partials`]).
    fn merge_partial_runs(
        &self,
        program: &Program,
        id: NodeId,
        group: Vec<NodeRun>,
    ) -> Result<NodeRun> {
        let Operator::GroupBy { keys, aggs } = &program.node(id).op else {
            return Err(Error::Execution(format!(
                "merge-partials planned for non-aggregate {id}"
            )));
        };
        let width = group.len();
        let mut it = group.into_iter();
        let mut run = it.next().expect("every merged node has at least one task");
        for next in it {
            run.absorb(next)?;
        }
        let specs: Vec<pspp_relstore::AggregateSpec> = aggs
            .iter()
            .map(|a| {
                pspp_relstore::AggregateSpec::new(
                    crate::physical::adapters::relational::agg_fn(a.func),
                    a.column.clone(),
                    a.output.clone(),
                )
            })
            .collect();
        let partial_bytes = run.output.byte_size();
        let (schema, rows) = {
            let Payload::Rows { schema, rows } = &run.output.payload else {
                return Err(Error::Execution(format!(
                    "partial aggregation of {id} produced a non-row output"
                )));
            };
            relops::merge_group_partials(schema, rows, keys.len(), &specs)?
        };
        run.output = Dataset::rows(schema, rows, run.output.model, run.output.location.clone());
        // The merge splices partial states on the host: charge it like
        // an exchange barrier on the critical path.
        let host = self.fleet.host();
        let seconds = run.output.len() as f64 / (host.clock_hz * host.lanes as f64)
            + width as f64 * EXCHANGE_TASK_OVERHEAD_S;
        run.migration_seconds += seconds;
        run.critical_seconds += seconds;
        run.events.push(CostEvent {
            component: "exchange.merge".into(),
            device: DeviceKind::Cpu,
            kind: EventKind::Transfer,
            bytes: partial_bytes,
            duration: SimDuration::from_secs(seconds),
            energy_j: 0.0,
        });
        run.exchanges.push(ExchangeTrace {
            kind: "merge",
            rows: run.output.len(),
            bytes: partial_bytes as usize,
            seconds,
            device: DeviceKind::Cpu,
        });
        Ok(run)
    }

    /// Executes one (node, shard) task against a private scoped ledger:
    /// placement, input migration, adapter dispatch, and cost
    /// attribution — migration and kernel charges post per shard task.
    /// `op` overrides the node's operator (the per-shard partial of a
    /// merged aggregation); `None` runs the node's own.
    fn run_node(
        &self,
        program: &Program,
        task: Task,
        registry: &EngineRegistry,
    ) -> Result<NodeRun> {
        let Task {
            id,
            shard,
            slot,
            inputs,
            op,
            count_matches,
        } = task;
        let node = program.node(id);
        let op = op.as_ref().unwrap_or(&node.op);
        // A shuffled-join bucket also reports its per-probe-row match
        // counts — the barrier's splice chunk sizes — computed here so
        // the counting runs in parallel with the other buckets' joins.
        let probe_counts = if count_matches {
            let Operator::HashJoin { left_on, right_on } = op else {
                return Err(Error::Execution(format!(
                    "shuffle planned for non-hash-join {id}"
                )));
            };
            Some(relops::hash_join_match_counts(
                inputs[0].schema()?,
                inputs[0].try_rows()?,
                inputs[1].schema()?,
                inputs[1].try_rows()?,
                left_on,
                right_on,
            )?)
        } else {
            None
        };
        let scoped_ledger = CostLedger::new();
        let mut placer = self.placer.scoped(scoped_ledger.clone());
        if let Some(metrics) = &self.metrics {
            placer = placer.with_metrics(metrics.clone());
        }
        let target = Placer::target_engine_of(node, &inputs);
        let (inputs, bill) = placer.stage_datasets(inputs, target.as_ref(), registry)?;

        // The task runs against the fleet of the shard it executes at
        // (heterogeneous deployments attach different devices per
        // shard); the device is *consumed* from the plan's per-slot
        // pick — never re-derived here — falling back to the node-wide
        // annotation for unsharded plans, and to the host when this
        // shard's fleet has no such device attached.
        let fleet = registry.fleet_at(shard).unwrap_or(&self.fleet);
        let planned = node
            .annotations
            .shard_devices
            .as_ref()
            .and_then(|picks| picks.get(slot).copied())
            .or(node.annotations.device)
            .unwrap_or(DeviceKind::Cpu);
        let device =
            if self.offload && (planned == DeviceKind::Cpu || fleet.device(planned).is_some()) {
                planned
            } else {
                DeviceKind::Cpu
            };
        let ctx = ExecCtx::new(fleet, &scoped_ledger, self.offload).at_shard(shard);
        let output = self
            .adapters
            .dispatch(op, &inputs, target.as_ref(), registry, &ctx)?;

        // Charge the simulated clock with actual sizes. Joins pay for
        // build + probe (the sum of their input sides — which is how a
        // colocated task with a per-shard probe and a broadcast build
        // side charges less than the gathered join); everything else
        // pays for its largest pass.
        let is_join = matches!(
            op,
            pspp_ir::Operator::HashJoin { .. } | pspp_ir::Operator::SortMergeJoin { .. }
        );
        let work_rows = if is_join {
            inputs.iter().map(Dataset::len).sum::<usize>()
        } else {
            inputs
                .iter()
                .map(Dataset::len)
                .max()
                .unwrap_or(output.len())
        }
        .max(output.len());
        let work_bytes = if is_join {
            inputs.iter().map(Dataset::byte_size).sum::<u64>()
        } else {
            inputs
                .iter()
                .map(Dataset::byte_size)
                .max()
                .unwrap_or_else(|| output.byte_size())
        }
        .max(output.byte_size());
        // Fused-chain membership is honored only when the task actually
        // runs on the planned coprocessor: a host fallback drops the
        // tag (counted fission, never silent), and non-head members
        // read device-resident input over the local link instead of
        // paying the attachment's PCIe transfer.
        let fused = node
            .annotations
            .shard_fusion
            .as_ref()
            .and_then(|tags| tags.get(slot).copied())
            .flatten()
            .filter(|_| device == planned && device != DeviceKind::Cpu);
        let resident_link = pspp_accel::Interconnect::local();
        let (exec_seconds, fused_saved_seconds) = if Charger::is_ml_op(op) {
            (Charger::ml_seconds(&scoped_ledger), 0.0)
        } else {
            Charger::new(fleet)
                .with_metrics(self.metrics.as_ref())
                .with_resident_link(
                    fused.filter(|tag| tag.pos > 0).map(|_| &resident_link),
                )
                .charge_detailed(&scoped_ledger, op, device, work_rows as u64, work_bytes, id)
        };
        // A contended device serves this slot after its queue wait; the
        // wait rides the critical path (and the ledger), but only when
        // the task really ran on the contended device.
        let queue_seconds = if device != DeviceKind::Cpu && device == planned {
            node.annotations
                .shard_queue_waits
                .as_ref()
                .and_then(|w| w.get(slot).copied())
                .unwrap_or(0.0)
        } else {
            0.0
        };
        if queue_seconds > 0.0 {
            scoped_ledger.post(
                format!("executor.queue_wait@{id}"),
                device,
                pspp_accel::EventKind::Launch,
                0,
                pspp_accel::SimDuration::from_secs(queue_seconds),
                0.0,
            );
        }
        let critical_seconds = exec_seconds + bill.seconds + queue_seconds;
        let task_trace = TaskTrace {
            shard,
            slot,
            planned,
            device,
            rows: output.len(),
            exec_seconds,
            migration_seconds: bill.seconds,
            critical_seconds,
            queue_seconds,
            fused,
            fused_saved_seconds,
        };
        Ok(NodeRun {
            id,
            output,
            exec_seconds,
            migration_seconds: bill.seconds,
            critical_seconds,
            offloaded: device != DeviceKind::Cpu && fleet.device(device).is_some(),
            assignments: vec![(shard, device)],
            events: scoped_ledger.events(),
            probe_counts,
            tasks: vec![task_trace],
            exchanges: Vec::new(),
        })
    }
}

/// Sequential and pipelined makespans over live-node stage times.
fn makespans(stages: &[Stage], node_total: &HashMap<NodeId, f64>) -> (f64, f64) {
    let stage_times: Vec<f64> = stages
        .iter()
        .map(|stage| {
            stage
                .compute
                .iter()
                .filter_map(|id| node_total.get(id))
                .fold(0.0f64, |a, &b| a.max(b))
        })
        .collect();
    // Sum in stage/node order: f64 addition is order-sensitive, and the
    // makespan must be bit-identical across runs and execution modes.
    let sequential: f64 = stages
        .iter()
        .flat_map(|stage| &stage.compute)
        .filter_map(|id| node_total.get(id))
        .sum();
    let bottleneck = stage_times.iter().fold(0.0f64, |a, &b| a.max(b));
    let stage_sum: f64 = stage_times.iter().sum();
    let pipelined = bottleneck + (stage_sum - bottleneck) / PIPELINE_CHUNKS;
    (sequential, pipelined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, DataType, EngineId, Predicate, Schema, TableRef, Value};
    use pspp_ir::{AggFn, Operator};
    use pspp_relstore::RelationalStore;

    use crate::registry::EngineInstance;

    fn registry() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        let mut db1 = RelationalStore::new("db1");
        db1.create_table(
            "admissions",
            Schema::new(vec![
                ("pid", DataType::Int),
                ("age", DataType::Int),
                ("los", DataType::Float),
            ]),
        )
        .unwrap();
        db1.insert(
            "admissions",
            (0..200)
                .map(|i| row![i as i64, (20 + i % 60) as i64, (i % 10) as f64])
                .collect(),
        )
        .unwrap();
        let mut db2 = RelationalStore::new("db2");
        db2.create_table(
            "patients",
            Schema::new(vec![("pid", DataType::Int), ("name", DataType::Str)]),
        )
        .unwrap();
        db2.insert(
            "patients",
            (0..200).map(|i| row![i as i64, format!("p{i}")]).collect(),
        )
        .unwrap();
        r.register(EngineId::new("db1"), EngineInstance::Relational(db1))
            .unwrap();
        r.register(EngineId::new("db2"), EngineInstance::Relational(db2))
            .unwrap();
        r
    }

    fn exec() -> Executor {
        Executor::new(AcceleratorFleet::workstation(), CostLedger::new())
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let mut p = Program::new();
        let s = p.add_source(
            Operator::Scan {
                table: TableRef::new("db1", "admissions"),
                predicate: Predicate::ge("age", 60i64),
                projection: Some(vec!["pid".into(), "age".into()]),
            },
            "sql",
        );
        p.mark_output(s);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert!(!out.is_empty() && out.len() < 200);
        assert_eq!(out.schema().unwrap().arity(), 2);
        assert!(report.makespan_sequential > 0.0);
    }

    #[test]
    fn cross_engine_join_triggers_migration() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        // Execute the join at db1: patient rows must migrate.
        p.node_mut(j).annotations.engine = Some(EngineId::new("db1"));
        p.mark_output(j);
        let e = exec();
        let report = e.execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 200);
        assert!(report.migration_seconds > 0.0);
        assert!(e
            .ledger()
            .events()
            .iter()
            .any(|ev| ev.component == "migrate.transfer"));
    }

    #[test]
    fn fused_nodes_forward_inputs() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![s],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let lim = p.add_node(Operator::Limit { n: 5 }, vec![f], "sql");
        p.mark_output(lim);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 5);
        assert!(!report.node_seconds.contains_key(&f));
    }

    #[test]
    fn train_and_predict_end_to_end() {
        let mut p = Program::new();
        let s1 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let t = p.add_node(
            Operator::TrainMlp {
                label_column: "los".into(),
                hidden: vec![8],
                epochs: 2,
                batch_size: 32,
                learning_rate: 0.1,
            },
            vec![s1],
            "ml",
        );
        let s2 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let pred = p.add_node(Operator::Predict, vec![s2, t], "ml");
        p.mark_output(pred);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert_eq!(out.len(), 200);
        let schema = out.schema().unwrap();
        assert_eq!(schema.names().last().copied(), Some("prediction"));
        for r in out.try_rows().unwrap().iter().take(5) {
            let pr = r[schema.arity() - 1].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn group_by_executes() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                keys: vec![],
                aggs: vec![pspp_ir::AggSpec {
                    func: AggFn::Count,
                    column: "*".into(),
                    output: "n".into(),
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].try_rows().unwrap()[0][0], Value::Int(200));
    }

    #[test]
    fn pipelined_makespan_never_exceeds_sequential() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 30i64),
            },
            vec![a],
            "sql",
        );
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![f],
            "sql",
        );
        p.mark_output(sort);
        let report = exec().pipelined(true).execute(&p, &registry()).unwrap();
        assert!(report.makespan_pipelined <= report.makespan_sequential + 1e-12);
        assert!(report.pipelined);
        assert!(report.makespan() <= report.makespan_sequential);
    }

    #[test]
    fn offload_disabled_runs_cpu_only() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        p.node_mut(sort).annotations.device = Some(DeviceKind::Fpga);
        p.mark_output(sort);
        let report = exec().offload(false).execute(&p, &registry()).unwrap();
        assert_eq!(report.offloaded, 0);
    }

    #[test]
    fn custom_op_fails_cleanly() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c = p.add_node(
            Operator::Custom {
                name: "mystery".into(),
            },
            vec![a],
            "x",
        );
        p.mark_output(c);
        assert!(matches!(
            exec().execute(&p, &registry()),
            Err(Error::Execution(_))
        ));
    }

    /// Records which thread ran each `Custom { name: "probe" }` node —
    /// the witness that parallel stages really fan out.
    #[derive(Debug, Default)]
    struct ThreadProbeAdapter {
        seen: std::sync::Mutex<Vec<std::thread::ThreadId>>,
    }

    impl crate::physical::EngineAdapter for ThreadProbeAdapter {
        fn name(&self) -> &'static str {
            "thread-probe"
        }

        fn supports(&self, op: &Operator) -> bool {
            matches!(op, Operator::Custom { name } if name == "probe")
        }

        fn run(
            &self,
            _op: &Operator,
            inputs: &[Dataset],
            _target: Option<&EngineId>,
            _registry: &EngineRegistry,
            _ctx: &ExecCtx<'_>,
        ) -> Result<Dataset> {
            self.seen.lock().unwrap().push(std::thread::current().id());
            Ok(inputs[0].clone())
        }
    }

    /// One scan feeding two independent probe nodes: a single stage with
    /// two compute nodes.
    fn probe_program() -> Program {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c1 = p.add_node(
            Operator::Custom {
                name: "probe".into(),
            },
            vec![s],
            "x",
        );
        let c2 = p.add_node(
            Operator::Custom {
                name: "probe".into(),
            },
            vec![s],
            "x",
        );
        p.mark_output(c1);
        p.mark_output(c2);
        p
    }

    #[test]
    fn parallel_stage_uses_separate_threads_with_identical_results() {
        let p = probe_program();
        let r = registry();

        let probe = std::sync::Arc::new(ThreadProbeAdapter::default());
        let parallel = exec().with_adapter(probe.clone());
        let par_report = parallel.execute(&p, &r).unwrap();
        {
            let seen = probe.seen.lock().unwrap();
            assert_eq!(seen.len(), 2);
            assert_ne!(seen[0], seen[1], "stage nodes shared one thread");
            assert!(
                seen.iter().all(|&t| t != std::thread::current().id()),
                "stage nodes ran on the orchestrator thread"
            );
        }

        let probe_seq = std::sync::Arc::new(ThreadProbeAdapter::default());
        let sequential = exec().with_adapter(probe_seq.clone()).parallel(false);
        let seq_report = sequential.execute(&p, &r).unwrap();
        {
            let seen = probe_seq.seen.lock().unwrap();
            assert_eq!(seen.len(), 2);
            assert_eq!(seen[0], seen[1]);
        }

        for (a, b) in par_report.outputs.iter().zip(&seq_report.outputs) {
            assert_eq!(a.try_rows().unwrap(), b.try_rows().unwrap());
        }
        assert_eq!(
            parallel.ledger().total(),
            sequential.ledger().total(),
            "parallel and sequential runs must charge identical totals"
        );
        assert_eq!(parallel.ledger().events(), sequential.ledger().events());
    }

    #[test]
    fn sharded_scan_gathers_identical_rows_and_cuts_scan_time() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.mark_output(s);
        let flat = registry();
        let base = exec().execute(&p, &flat).unwrap();

        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::range(
                    "pid",
                    vec![50i64.into(), 100i64.into(), 150i64.into()],
                ),
            )
            .unwrap();
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            base.outputs[0].try_rows().unwrap(),
            "range scatter-gather reproduces the unsharded scan bit-for-bit"
        );
        assert!(
            report.node_seconds[&s] < base.node_seconds[&s],
            "4 parallel shard replicas must beat one ({} vs {})",
            report.node_seconds[&s],
            base.node_seconds[&s]
        );

        let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            seq.outputs[0].try_rows().unwrap()
        );
        assert_eq!(report.node_seconds, seq.node_seconds);
    }

    #[test]
    fn hash_sharded_join_preserves_results() {
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 2),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::hash("pid", 2),
            )
            .unwrap();
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        p.node_mut(j).annotations.engine = Some(EngineId::new("db1"));
        p.mark_output(j);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "every pid still joins");
        assert!(report.migration_seconds > 0.0);
    }

    /// Rows in a canonical order, for set-equality checks against
    /// deployments whose gather order legitimately differs (hash
    /// partitions interleave the insert order even when gathered).
    fn sorted_rows(d: &Dataset) -> Vec<pspp_common::Row> {
        let mut rows = d.try_rows().unwrap().to_vec();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    /// The pid-joined program both colocation tests execute.
    fn pid_join_program() -> (Program, pspp_ir::NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        (p, j)
    }

    #[test]
    fn colocated_join_is_bit_identical_to_gathered_and_faster() {
        let mut sharded = registry();
        for (engine, table) in [("db1", "admissions"), ("db2", "patients")] {
            sharded
                .reshard(
                    &TableRef::new(engine, table),
                    pspp_common::PartitionSpec::hash("pid", 4),
                )
                .unwrap();
        }
        let (p, j) = pid_join_program();

        let flat = exec().execute(&p, &registry()).unwrap();
        let colocated = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();

        assert_eq!(
            colocated.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "colocated and gathered plans must agree bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&colocated.outputs[0]),
            sorted_rows(&flat.outputs[0]),
            "colocated join must reproduce the unsharded row set"
        );
        assert!(
            colocated.node_seconds[&j] < gathered.node_seconds[&j],
            "4 per-shard build+probe tasks must beat one gathered join ({} vs {})",
            colocated.node_seconds[&j],
            gathered.node_seconds[&j]
        );
        // Per-shard migration accounting: every shard task staged its
        // foreign patients partial.
        assert!(colocated.migration_seconds > 0.0);

        // Sequential colocated execution is bit-identical too.
        let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            colocated.outputs[0].try_rows().unwrap(),
            seq.outputs[0].try_rows().unwrap()
        );
        assert_eq!(colocated.node_seconds, seq.node_seconds);
    }

    /// The mismatched-layout registry both shuffle tests use:
    /// admissions hashed on pid, patients hashed on *name*.
    fn mismatched_registry(shards: u32) -> EngineRegistry {
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", shards),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::hash("name", shards),
            )
            .unwrap();
        sharded
    }

    #[test]
    fn mismatched_partition_keys_shuffle_and_match_the_gathered_bytes() {
        // admissions hashed on pid, patients hashed on *name*: no
        // colocation — the plan re-hashes both sides to the join key's
        // layout and the per-shard join must reproduce the gathered
        // plan byte-for-byte.
        let (p, j) = pid_join_program();
        for shards in [2u32, 4] {
            let sharded = mismatched_registry(shards);
            let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
            assert!(!plan.node(j).colocated);
            assert!(plan.node(j).shuffles(), "mismatched keys must shuffle");
            assert_eq!(plan.node(j).scatter_width(), shards as usize);
            let shuffled = exec().execute(&p, &sharded).unwrap();
            let gathered = exec().exchange(false).execute(&p, &sharded).unwrap();
            let flat = exec().execute(&p, &registry()).unwrap();
            assert_eq!(
                shuffled.outputs[0].try_rows().unwrap(),
                gathered.outputs[0].try_rows().unwrap(),
                "shuffled and gathered joins must agree bit-for-bit at {shards} shards"
            );
            assert_eq!(
                sorted_rows(&shuffled.outputs[0]),
                sorted_rows(&flat.outputs[0]),
                "shuffled join must reproduce the unsharded row set"
            );
            assert!(
                shuffled.node_seconds[&j] < gathered.node_seconds[&j],
                "{shards} per-shard build+probe tasks must beat one gathered join ({} vs {})",
                shuffled.node_seconds[&j],
                gathered.node_seconds[&j]
            );
            // The gathered-baseline plan really gathers.
            let base_plan = Placer::plan_distribution_opts(
                &p,
                &sharded,
                &sharded,
                pspp_ir::PlanOptions {
                    colocate: true,
                    exchange: false,
                },
            )
            .unwrap();
            assert!(!base_plan.node(j).shuffles());
            assert_eq!(base_plan.node(j).gathered_input_count(), 2);

            // Sequential shuffle execution is bit-identical too.
            let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
            assert_eq!(
                shuffled.outputs[0].try_rows().unwrap(),
                seq.outputs[0].try_rows().unwrap()
            );
            assert_eq!(shuffled.node_seconds, seq.node_seconds);
        }
    }

    #[test]
    fn shuffle_charges_exchange_rows_as_migration() {
        let (p, _) = pid_join_program();
        let sharded = mismatched_registry(2);
        let e = exec();
        let report = e.execute(&p, &sharded).unwrap();
        let events = e.ledger().events();
        let shuffle_events: Vec<_> = events
            .iter()
            .filter(|ev| ev.component == "exchange.shuffle")
            .collect();
        assert_eq!(shuffle_events.len(), 1, "one barrier per shuffled node");
        assert!(shuffle_events[0].bytes > 0);
        assert!(shuffle_events[0].duration.as_secs() > 0.0);
        assert!(report.migration_seconds >= shuffle_events[0].duration.as_secs());
    }

    #[test]
    fn materialized_repartitions_serve_the_second_run_byte_identically() {
        let (p, j) = pid_join_program();
        let sharded = mismatched_registry(2);
        let e = exec().materialize_repartitions(true);

        let first = e.execute(&p, &sharded).unwrap();
        let stats = sharded.repartitions().stats();
        assert!(
            stats.stores >= 1,
            "first run persists the routed layout: {stats:?}"
        );
        assert!(
            e.ledger()
                .events()
                .iter()
                .any(|ev| ev.component == "exchange.materialize"),
            "persisting the layout charges its one-time copy"
        );

        // The second plan consults the copies and serves both edges.
        let copies = sharded.repartitions();
        let plan = Placer::plan_distribution_copies(
            &p,
            &sharded,
            &sharded,
            pspp_ir::PlanOptions::default(),
            |k| copies.contains(k),
        )
        .unwrap();
        assert!(plan.node(j).is_copy_served(0) && plan.node(j).is_copy_served(1));
        let counts = plan.exchange_counts();
        assert_eq!((counts.materialized, counts.shuffles), (2, 0));

        let second = e.execute(&p, &sharded).unwrap();
        assert!(sharded.repartitions().stats().hits >= 2);
        assert_eq!(
            first.outputs[0].try_rows().unwrap(),
            second.outputs[0].try_rows().unwrap(),
            "served and routed runs must agree bit-for-bit"
        );
        let off = exec().execute(&p, &sharded).unwrap();
        assert_eq!(
            second.outputs[0].try_rows().unwrap(),
            off.outputs[0].try_rows().unwrap(),
            "materialize on/off must agree bit-for-bit"
        );

        // The served run moved nothing over the wire: its traces show
        // only "materialized" exchange rows, and the barrier charge is
        // amortized to (near) zero.
        let kind_rows = |r: &ExecutionReport, kind: &str| -> usize {
            r.traces
                .iter()
                .flat_map(|t| t.exchanges.iter())
                .filter(|x| x.kind == kind)
                .map(|x| x.rows)
                .sum()
        };
        assert_eq!(kind_rows(&second, "shuffle"), 0, "no rows routed");
        assert!(kind_rows(&second, "materialized") > 0);
        assert!(
            second.migration_seconds < first.migration_seconds,
            "served exchange must be cheaper ({} vs {})",
            second.migration_seconds,
            first.migration_seconds
        );
    }

    #[test]
    fn epoch_bump_invalidates_materialized_copies() {
        let (p, _) = pid_join_program();
        let sharded = mismatched_registry(2);
        let e = exec().materialize_repartitions(true);
        let first = e.execute(&p, &sharded).unwrap();
        assert!(sharded.repartitions().stats().stores >= 1);

        // Any engine-state mutation bumps the epoch; stored layouts
        // must not serve across it.
        sharded.bump_epoch();
        let third = e.execute(&p, &sharded).unwrap();
        let routed: usize = third
            .traces
            .iter()
            .flat_map(|t| t.exchanges.iter())
            .filter(|x| x.kind == "shuffle")
            .map(|x| x.rows)
            .sum();
        assert!(routed > 0, "stale copies must not serve the exchange");
        assert!(sharded.repartitions().stats().invalidations >= 1);
        assert_eq!(
            first.outputs[0].try_rows().unwrap(),
            third.outputs[0].try_rows().unwrap()
        );
    }

    #[test]
    fn partition_wise_group_by_matches_the_gathered_plan() {
        use pspp_ir::AggSpec;
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                // pid is the partition key: partition-wise execution.
                keys: vec!["pid".into()],
                aggs: vec![
                    AggSpec {
                        func: AggFn::Count,
                        column: "*".into(),
                        output: "n".into(),
                    },
                    AggSpec {
                        func: AggFn::Avg,
                        column: "los".into(),
                        output: "mean_los".into(),
                    },
                ],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(
            plan.node(g).colocated,
            "group keys contain the partition key"
        );
        assert_eq!(plan.node(g).scatter_width(), 4);
        let partitioned = exec().execute(&p, &sharded).unwrap();
        // Partition-wise grouping is a colocation feature: the gathered
        // baseline needs colocation off, exchange(false) alone keeps it.
        let still_partitioned = exec().exchange(false).execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            partitioned.outputs[0].try_rows().unwrap(),
            still_partitioned.outputs[0].try_rows().unwrap()
        );
        assert_eq!(
            partitioned.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "partition-wise aggregation must match the gathered plan bit-for-bit"
        );
        assert!(partitioned.node_seconds[&g] < gathered.node_seconds[&g]);
    }

    #[test]
    fn partial_aggregate_merge_matches_the_gathered_plan() {
        use pspp_ir::AggSpec;
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                // age is NOT the partition key: partial + merge. All
                // aggregated columns are integers, so partial sums are
                // exact and the merge is byte-identical.
                keys: vec!["age".into()],
                aggs: vec![
                    AggSpec {
                        func: AggFn::Count,
                        column: "*".into(),
                        output: "n".into(),
                    },
                    AggSpec {
                        func: AggFn::Sum,
                        column: "pid".into(),
                        output: "pid_sum".into(),
                    },
                    AggSpec {
                        func: AggFn::Avg,
                        column: "pid".into(),
                        output: "pid_avg".into(),
                    },
                    AggSpec {
                        func: AggFn::Min,
                        column: "pid".into(),
                        output: "pid_min".into(),
                    },
                    AggSpec {
                        func: AggFn::Max,
                        column: "pid".into(),
                        output: "pid_max".into(),
                    },
                ],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(g).merges_partials());
        assert_eq!(plan.node(g).scatter_width(), 4);
        let merged = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().exchange(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            merged.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "partial+merge aggregation must match the gathered plan bit-for-bit"
        );
        assert!(
            merged.node_seconds[&g] < gathered.node_seconds[&g],
            "4 partial tasks must beat one gathered aggregation ({} vs {})",
            merged.node_seconds[&g],
            gathered.node_seconds[&g]
        );
        // Sequential execution is bit-identical.
        let seq = exec().parallel(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            merged.outputs[0].try_rows().unwrap(),
            seq.outputs[0].try_rows().unwrap()
        );
    }

    #[test]
    fn float_sums_demote_the_merge_to_stay_bit_identical() {
        use pspp_ir::AggSpec;
        // Summing a Float column per shard and merging would
        // re-associate the addition; the executor must fall back to
        // the gathered aggregation so exchange == gathered holds even
        // for floats.
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                keys: vec!["age".into()],
                aggs: vec![AggSpec {
                    func: AggFn::Avg,
                    column: "los".into(), // Float column
                    output: "mean_los".into(),
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        // The plan still chooses merge-partials (no type info at plan
        // time)…
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(g).merges_partials());
        // …but execution demotes, and bytes match the gathered plan
        // and the flat deployment exactly.
        let merged = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().exchange(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            merged.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "float aggregation must stay bit-identical to the gathered plan"
        );
        assert!(merged.outputs[0]
            .try_rows()
            .unwrap()
            .iter()
            .any(|r| matches!(r[1], Value::Float(_))));
    }

    #[test]
    fn replicated_build_side_broadcasts_into_a_colocated_join() {
        // Satellite regression: a replicated table is colocatable with
        // any hashed partner — the broadcast join builds each shard
        // task against the full copy.
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        sharded
            .reshard(
                &TableRef::new("db2", "patients"),
                pspp_common::PartitionSpec::replicated(2),
            )
            .unwrap();
        let (p, j) = pid_join_program();
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(j).colocated, "broadcast join must colocate");
        assert_eq!(plan.node(j).scatter.len(), 4);

        let flat = exec().execute(&p, &registry()).unwrap();
        let broadcast = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();
        assert_eq!(
            broadcast.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "broadcast and gathered plans must agree bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&broadcast.outputs[0]),
            sorted_rows(&flat.outputs[0]),
            "broadcast join must reproduce the unsharded row set"
        );
        assert!(broadcast.node_seconds[&j] < gathered.node_seconds[&j]);
    }

    #[test]
    fn filter_between_scan_and_join_executes_per_shard() {
        // An explicit (unfused) filter preserves its input's
        // distribution, so the join downstream still colocates and the
        // filter itself fans out per shard.
        let mut sharded = registry();
        for (engine, table) in [("db1", "admissions"), ("db2", "patients")] {
            sharded
                .reshard(
                    &TableRef::new(engine, table),
                    pspp_common::PartitionSpec::hash("pid", 2),
                )
                .unwrap();
        }
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 30i64),
            },
            vec![a],
            "sql",
        );
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![f, b],
            "sql",
        );
        p.mark_output(j);
        let plan = Placer::plan_distribution(&p, &sharded, &sharded).unwrap();
        assert!(plan.node(f).colocated, "filter rides the shard layout");
        assert!(plan.node(j).colocated);
        let report = exec().execute(&p, &sharded).unwrap();
        let gathered = exec().colocated_joins(false).execute(&p, &sharded).unwrap();
        let flat = exec().execute(&p, &registry()).unwrap();
        assert_eq!(
            report.outputs[0].try_rows().unwrap(),
            gathered.outputs[0].try_rows().unwrap(),
            "per-shard filter + colocated join == gathered plan bit-for-bit"
        );
        assert_eq!(
            sorted_rows(&report.outputs[0]),
            sorted_rows(&flat.outputs[0])
        );
    }

    #[test]
    fn annotated_scan_of_partitioned_table_still_reads_every_shard() {
        // Regression: an optimizer annotation diverting a scan node to
        // another engine must not narrow the read to shard 0 of the
        // table's home (which holds only a fraction of the rows).
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::hash("pid", 4),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.node_mut(s).annotations.engine = Some(EngineId::new("db2"));
        p.mark_output(s);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "rows silently dropped");
    }

    #[test]
    fn replicated_table_reads_one_replica() {
        let mut sharded = registry();
        sharded
            .reshard(
                &TableRef::new("db1", "admissions"),
                pspp_common::PartitionSpec::replicated(3),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        p.mark_output(s);
        let report = exec().execute(&p, &sharded).unwrap();
        assert_eq!(report.outputs[0].len(), 200, "no duplicate rows gathered");
    }

    #[test]
    fn parallel_stage_error_is_deterministic() {
        // Two failing customs in one stage: the lower node id's error
        // must win regardless of which thread finishes first.
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c1 = p.add_node(
            Operator::Custom {
                name: "boom1".into(),
            },
            vec![s],
            "x",
        );
        let c2 = p.add_node(
            Operator::Custom {
                name: "boom2".into(),
            },
            vec![s],
            "x",
        );
        p.mark_output(c1);
        p.mark_output(c2);
        for _ in 0..8 {
            match exec().execute(&p, &registry()) {
                Err(Error::Execution(msg)) => assert!(msg.contains("boom1"), "got {msg}"),
                other => panic!("expected execution error, got {other:?}"),
            }
        }
    }
}

//! The executor: schedules the optimized IR across engines and
//! accelerators and accounts the simulated makespan (§IV-D).

use std::collections::HashMap;

use pspp_accel::kernels::{BitonicSorter, Gemm, HashPartitioner, StreamFilter};
use pspp_accel::{AcceleratorFleet, CostLedger, KernelClass, SimDuration};
use pspp_common::{
    Batch, DataModel, DataType, DeviceKind, EngineId, Error, Result, Row, Schema, Value,
};
use pspp_ir::{AggFn, NodeId, Operator, Program, TextSearchMode, TsAgg};
use pspp_migrate::{MigrationPath, Migrator};
use pspp_mlengine::{Dataset as MlDataset, KMeans, KMeansConfig, Mlp, TrainConfig};
use pspp_relstore::ops;
use pspp_relstore::{Aggregate, AggregateSpec, JoinKind, SortKey};

use crate::dataset::{Dataset, Payload};
use crate::registry::{EngineInstance, EngineRegistry};

/// Chunks used by the pipelined-stages model (§IV-D).
const PIPELINE_CHUNKS: f64 = 8.0;

/// Execution accounting for one program run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Program outputs in `Program::outputs()` order.
    pub outputs: Vec<Dataset>,
    /// Simulated seconds per live node (execution only).
    pub node_seconds: HashMap<NodeId, f64>,
    /// Simulated seconds spent migrating data across engines.
    pub migration_seconds: f64,
    /// Makespan with sequential stage execution.
    pub makespan_sequential: f64,
    /// Makespan with pipelined stage execution.
    pub makespan_pipelined: f64,
    /// Whether the pipelined makespan is the effective one.
    pub pipelined: bool,
    /// Number of operators that ran on an accelerator.
    pub offloaded: usize,
}

impl ExecutionReport {
    /// The effective makespan under the configured execution mode.
    pub fn makespan(&self) -> f64 {
        if self.pipelined {
            self.makespan_pipelined
        } else {
            self.makespan_sequential
        }
    }
}

/// The middleware executor.
#[derive(Debug, Clone)]
pub struct Executor {
    fleet: AcceleratorFleet,
    ledger: CostLedger,
    migrator: Migrator,
    migration_path: MigrationPath,
    /// Honor device annotations (L2+); otherwise everything runs on CPU.
    offload: bool,
    /// Pipeline stages (L3).
    pipelined: bool,
}

impl Executor {
    /// An executor over a fleet, posting to `ledger`.
    pub fn new(fleet: AcceleratorFleet, ledger: CostLedger) -> Self {
        let migrator = Migrator::new().with_ledger(ledger.clone());
        Executor {
            fleet,
            ledger,
            migrator,
            migration_path: MigrationPath::BinaryPipe,
            offload: true,
            pipelined: false,
        }
    }

    /// Enables/disables accelerator offload (L2).
    pub fn offload(mut self, on: bool) -> Self {
        self.offload = on;
        self
    }

    /// Enables/disables pipelined stage accounting (L3).
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Uses a specific migration path for cross-engine edges.
    pub fn migration_path(mut self, path: MigrationPath) -> Self {
        self.migration_path = path;
        self
    }

    /// Replaces the migrator (e.g. accelerated or pipelined).
    pub fn with_migrator(mut self, migrator: Migrator) -> Self {
        self.migrator = migrator.with_ledger(self.ledger.clone());
        self
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Executes a validated program against the registry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] (and engine-specific errors) when an
    /// operator cannot run.
    pub fn execute(&self, program: &Program, registry: &EngineRegistry) -> Result<ExecutionReport> {
        program.validate()?;
        let order = program.topo_order()?;
        let mut results: HashMap<NodeId, Dataset> = HashMap::new();
        let mut node_seconds: HashMap<NodeId, f64> = HashMap::new();
        let mut node_total: HashMap<NodeId, f64> = HashMap::new();
        let mut migration_seconds = 0.0f64;
        let mut offloaded = 0usize;

        for id in order {
            let node = program.node(id);
            if node.annotations.fused_into_consumer {
                // Fused nodes forward their input.
                let input = results
                    .get(&node.inputs[0])
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?
                    .clone();
                results.insert(id, input);
                continue;
            }
            // Gather inputs, migrating those located on other engines.
            // Placement fallback: run where the first input already is
            // ("data gravity"), so cross-engine joins pay migration at
            // every optimization level.
            let target_engine = self.target_engine(program, id, registry).or_else(|| {
                node.inputs
                    .first()
                    .and_then(|i| results.get(i))
                    .map(|d| d.location.clone())
            });
            let mut inputs = Vec::with_capacity(node.inputs.len());
            let mut migration_here = 0.0;
            for &i in &node.inputs {
                let mut d = results
                    .get(&i)
                    .ok_or_else(|| Error::Execution(format!("missing input for {id}")))?
                    .clone();
                if let (Some(target), Payload::Rows { schema, rows }) =
                    (target_engine.as_ref(), &d.payload)
                {
                    if d.location != *target && !rows.is_empty() {
                        let to_model = registry
                            .get(target)
                            .map(|e| e.kind().native_model())
                            .unwrap_or(d.model);
                        let batch = Batch::from_rows(schema, rows.clone()).map_err(|e| {
                            Error::Migration(format!("cannot batch rows for migration: {e}"))
                        })?;
                        let (rows2, report) =
                            self.migrator
                                .migrate(&batch, self.migration_path, d.model, to_model)?;
                        migration_here += report.total.as_secs();
                        d = Dataset::rows(schema.clone(), rows2, to_model, target.clone());
                    }
                }
                inputs.push(d);
            }
            migration_seconds += migration_here;

            // Execute the operator for real.
            let device = if self.offload {
                node.annotations.device.unwrap_or(DeviceKind::Cpu)
            } else {
                DeviceKind::Cpu
            };
            let ml_before = self.ledger.busy_for("mlengine");
            let out = self.run_op(&node.op, &inputs, device, registry, target_engine.clone())?;
            let ml_delta = self.ledger.busy_for("mlengine") - ml_before;

            // Charge the simulated clock with actual sizes.
            let work_rows = inputs.iter().map(Dataset::len).max().unwrap_or(out.len()).max(out.len());
            let work_bytes = inputs
                .iter()
                .map(Dataset::byte_size)
                .max()
                .unwrap_or_else(|| out.byte_size())
                .max(out.byte_size());
            let seconds = if matches!(
                node.op,
                Operator::TrainMlp { .. } | Operator::Predict | Operator::KMeansCluster { .. }
            ) {
                ml_delta.as_secs()
            } else {
                self.charge_op(&node.op, device, work_rows as u64, work_bytes, id)
            };
            if device != DeviceKind::Cpu && self.fleet.device(device).is_some() {
                offloaded += 1;
            }
            node_seconds.insert(id, seconds);
            node_total.insert(id, seconds + migration_here);
            results.insert(id, out);
        }

        // Makespans over live-node stages.
        let stages = program.stages()?;
        let mut stage_times = Vec::new();
        for stage in &stages {
            let t = stage
                .iter()
                .filter_map(|id| node_total.get(id))
                .fold(0.0f64, |a, &b| a.max(b));
            stage_times.push(t);
        }
        let makespan_sequential: f64 = node_total.values().sum();
        let bottleneck = stage_times.iter().fold(0.0f64, |a, &b| a.max(b));
        let stage_sum: f64 = stage_times.iter().sum();
        let makespan_pipelined = bottleneck + (stage_sum - bottleneck) / PIPELINE_CHUNKS;

        let outputs = program
            .outputs()
            .iter()
            .map(|id| {
                results
                    .get(id)
                    .cloned()
                    .ok_or_else(|| Error::Execution(format!("missing output {id}")))
            })
            .collect::<Result<_>>()?;
        Ok(ExecutionReport {
            outputs,
            node_seconds,
            migration_seconds,
            makespan_sequential,
            makespan_pipelined,
            pipelined: self.pipelined,
            offloaded,
        })
    }

    /// The engine a node executes on: its annotation, or its source
    /// table's engine, or the first input's location.
    fn target_engine(
        &self,
        program: &Program,
        id: NodeId,
        registry: &EngineRegistry,
    ) -> Option<EngineId> {
        let node = program.node(id);
        if let Some(e) = &node.annotations.engine {
            return Some(e.clone());
        }
        if let Some(t) = node.op.source_table() {
            return Some(t.engine.clone());
        }
        // Join at the engine of the (statically) first input when known.
        let _ = registry;
        None
    }

    #[allow(clippy::too_many_lines)]
    fn run_op(
        &self,
        op: &Operator,
        inputs: &[Dataset],
        _device: DeviceKind,
        registry: &EngineRegistry,
        target_engine: Option<EngineId>,
    ) -> Result<Dataset> {
        let loc = |d: &Dataset| d.location.clone();
        match op {
            Operator::Scan {
                table,
                predicate,
                projection,
            } => {
                let store = registry.relational(&table.engine)?;
                let cols: Option<Vec<&str>> =
                    projection.as_ref().map(|p| p.iter().map(String::as_str).collect());
                let rows = store.scan(&table.name, predicate, cols.as_deref())?;
                let schema = store.scan_schema(&table.name, cols.as_deref())?;
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Relational,
                    table.engine.clone(),
                ))
            }
            Operator::KvPrefixScan { table, prefix } => {
                let EngineInstance::KeyValue(kv) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a kv store", table.engine)));
                };
                let pairs = kv.scan_prefix(prefix);
                let value_type = pairs
                    .iter()
                    .find_map(|(_, v)| v.data_type())
                    .unwrap_or(DataType::Str);
                let schema =
                    Schema::new(vec![("key", DataType::Str), ("value", value_type)]);
                let rows = pairs
                    .into_iter()
                    .map(|(k, v)| Row::from(vec![Value::from(k.to_owned()), v.clone()]))
                    .collect();
                Ok(Dataset::rows(schema, rows, DataModel::KeyValue, table.engine.clone()))
            }
            Operator::TsRange { table, lo, hi } => {
                let EngineInstance::Timeseries(ts) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a ts store", table.engine)));
                };
                let pts = ts.range(&table.name, *lo, *hi)?;
                let schema = Schema::new(vec![("ts", DataType::Timestamp), ("value", DataType::Float)]);
                let rows = pts
                    .iter()
                    .map(|&(t, v)| Row::from(vec![Value::Timestamp(t), Value::Float(v)]))
                    .collect();
                Ok(Dataset::rows(schema, rows, DataModel::Timeseries, table.engine.clone()))
            }
            Operator::TsWindow {
                table,
                lo,
                hi,
                width,
                agg,
            } => {
                let EngineInstance::Timeseries(ts) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a ts store", table.engine)));
                };
                let windows = ts.window_aggregate(&table.name, *lo, *hi, *width, ts_agg(*agg))?;
                // `window_idx` (ordinal window number) is the join-friendly
                // key: deployments that lay series out as
                // `entity_id × width + offset` can join entities to their
                // window aggregates directly.
                let schema = Schema::new(vec![
                    ("window_idx", DataType::Int),
                    ("window_start", DataType::Int),
                    ("value", DataType::Float),
                ]);
                let rows = windows
                    .into_iter()
                    .map(|(t, v)| {
                        Row::from(vec![
                            Value::Int(t / width.max(&1)),
                            Value::Int(t),
                            Value::Float(v),
                        ])
                    })
                    .collect();
                Ok(Dataset::rows(schema, rows, DataModel::Timeseries, table.engine.clone()))
            }
            Operator::StreamWindow {
                table,
                lo,
                hi,
                width,
                column,
                agg,
            } => {
                let EngineInstance::Stream(s) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a stream store", table.engine)));
                };
                let windows = s.window_aggregate(
                    &table.name,
                    *lo,
                    *hi,
                    pspp_streamstore::WindowSpec::Tumbling { width: *width },
                    *column,
                    stream_agg(*agg),
                )?;
                let schema = Schema::new(vec![
                    ("window_start", DataType::Int),
                    ("value", DataType::Float),
                ]);
                let rows = windows
                    .into_iter()
                    .map(|(t, v)| Row::from(vec![Value::Int(t), Value::Float(v)]))
                    .collect();
                Ok(Dataset::rows(schema, rows, DataModel::Stream, table.engine.clone()))
            }
            Operator::GraphMatch {
                table,
                start_label,
                steps,
            } => {
                let EngineInstance::Graph(g) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a graph store", table.engine)));
                };
                let pattern: Vec<pspp_graphstore::PatternStep> = steps
                    .iter()
                    .map(|(rel, label)| pspp_graphstore::PatternStep {
                        rel: rel.clone(),
                        node_label: label.clone(),
                    })
                    .collect();
                let paths = g.match_pattern(start_label, &pattern);
                let arity = steps.len() + 1;
                let schema = Schema::new(
                    (0..arity)
                        .map(|i| (format!("node_{i}"), DataType::Int))
                        .collect::<Vec<_>>(),
                );
                let rows = paths
                    .into_iter()
                    .map(|p| p.into_iter().map(|n| Value::Int(n as i64)).collect())
                    .collect();
                Ok(Dataset::rows(schema, rows, DataModel::Graph, table.engine.clone()))
            }
            Operator::TextSearch { table, terms, mode } => {
                let EngineInstance::Text(t) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!("{} is not a text store", table.engine)));
                };
                let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                let (schema, rows) = match mode {
                    TextSearchMode::All => {
                        let ids = t.search_all(&term_refs);
                        (
                            Schema::new(vec![("doc_id", DataType::Int)]),
                            ids.into_iter()
                                .map(|d| Row::from(vec![Value::Int(d as i64)]))
                                .collect::<Vec<Row>>(),
                        )
                    }
                    TextSearchMode::Any => {
                        let ids = t.search_any(&term_refs);
                        (
                            Schema::new(vec![("doc_id", DataType::Int)]),
                            ids.into_iter()
                                .map(|d| Row::from(vec![Value::Int(d as i64)]))
                                .collect::<Vec<Row>>(),
                        )
                    }
                    TextSearchMode::Ranked(k) => {
                        let hits = t.search_ranked(&terms.join(" "), *k);
                        (
                            Schema::new(vec![
                                ("doc_id", DataType::Int),
                                ("score", DataType::Float),
                            ]),
                            hits.into_iter()
                                .map(|(d, s)| {
                                    Row::from(vec![Value::Int(d as i64), Value::Float(s)])
                                })
                                .collect::<Vec<Row>>(),
                        )
                    }
                };
                Ok(Dataset::rows(schema, rows, DataModel::Text, table.engine.clone()))
            }
            Operator::Filter { predicate } => {
                let d = &inputs[0];
                let rows = ops::filter_rows(d.schema()?, d.try_rows()?.to_vec(), predicate)?;
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            Operator::Project { columns } => {
                let d = &inputs[0];
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                let (schema, rows) = ops::project(d.schema()?, d.try_rows()?, &cols)?;
                Ok(Dataset::rows(schema, rows, d.model, loc(d)))
            }
            Operator::Sort { keys } => {
                let d = &inputs[0];
                let sort_keys: Vec<SortKey> = keys
                    .iter()
                    .map(|k| SortKey {
                        column: k.column.clone(),
                        ascending: k.ascending,
                    })
                    .collect();
                let rows = ops::sort_rows(d.schema()?, d.try_rows()?.to_vec(), &sort_keys)?;
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            Operator::HashJoin { left_on, right_on } => {
                let (l, r) = (&inputs[0], &inputs[1]);
                let (schema, rows) = ops::hash_join(
                    l.schema()?,
                    l.try_rows()?,
                    r.schema()?,
                    r.try_rows()?,
                    left_on,
                    right_on,
                    JoinKind::Inner,
                )?;
                let location = target_engine.unwrap_or_else(|| loc(l));
                Ok(Dataset::rows(schema, rows, l.model, location))
            }
            Operator::SortMergeJoin { left_on, right_on } => {
                let (l, r) = (&inputs[0], &inputs[1]);
                let (schema, rows) = ops::sort_merge_join(
                    l.schema()?,
                    l.try_rows()?.to_vec(),
                    r.schema()?,
                    r.try_rows()?.to_vec(),
                    left_on,
                    right_on,
                )?;
                let location = target_engine.unwrap_or_else(|| loc(l));
                Ok(Dataset::rows(schema, rows, l.model, location))
            }
            Operator::GroupBy { keys, aggs } => {
                let d = &inputs[0];
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let specs: Vec<AggregateSpec> = aggs
                    .iter()
                    .map(|a| AggregateSpec::new(agg_fn(a.func), a.column.clone(), a.output.clone()))
                    .collect();
                let (schema, rows) = ops::group_by(d.schema()?, d.try_rows()?, &key_refs, &specs)?;
                Ok(Dataset::rows(schema, rows, d.model, loc(d)))
            }
            Operator::Limit { n } => {
                let d = &inputs[0];
                let rows = ops::limit(d.try_rows()?.to_vec(), *n);
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            Operator::TrainMlp {
                label_column,
                hidden,
                epochs,
                batch_size,
                learning_rate,
            } => {
                let d = &inputs[0];
                let (data, _) = to_ml_dataset(d, Some(label_column))?;
                let mut sizes = vec![data.dim()];
                sizes.extend(hidden.iter().copied());
                sizes.push(1);
                let mut mlp = Mlp::new(&sizes, 42)?;
                let profile = self.training_profile();
                mlp.train(
                    profile,
                    &data,
                    &TrainConfig {
                        epochs: *epochs,
                        batch_size: (*batch_size).max(1),
                        learning_rate: *learning_rate,
                    },
                    Some(&self.ledger),
                )?;
                Ok(Dataset {
                    payload: Payload::Model(Box::new(mlp)),
                    model: DataModel::Tensor,
                    location: EngineId::new("middleware"),
                })
            }
            Operator::Predict => {
                let d = &inputs[0];
                let mlp = inputs[1].try_model()?;
                // Score with the first `input_dim` numeric columns — the
                // convention `TrainMlp` used (features in schema order).
                let (data, schema) = to_ml_dataset_with_dim(d, None, Some(mlp.input_dim()))?;
                let probs =
                    mlp.predict_proba(self.training_profile(), data.features(), Some(&self.ledger))?;
                let mut fields: Vec<pspp_common::Field> = schema.fields().to_vec();
                fields.push(pspp_common::Field::new("prediction", DataType::Float));
                let out_schema = Schema::from_fields(fields);
                let rows: Vec<Row> = d
                    .try_rows()?
                    .iter()
                    .zip(&probs)
                    .map(|(r, p)| {
                        let mut vals = r.values().to_vec();
                        vals.push(Value::Float(*p));
                        Row::from(vals)
                    })
                    .collect();
                Ok(Dataset::rows(out_schema, rows, d.model, loc(d)))
            }
            Operator::KMeansCluster { k, max_iters } => {
                let d = &inputs[0];
                let (data, schema) = to_ml_dataset(d, None)?;
                let result = KMeans::run(
                    self.training_profile(),
                    data.features(),
                    &KMeansConfig {
                        k: *k,
                        max_iters: *max_iters,
                        ..KMeansConfig::default()
                    },
                    Some(&self.ledger),
                )?;
                let mut fields: Vec<pspp_common::Field> = schema.fields().to_vec();
                fields.push(pspp_common::Field::new("cluster", DataType::Int));
                let out_schema = Schema::from_fields(fields);
                let rows: Vec<Row> = d
                    .try_rows()?
                    .iter()
                    .zip(&result.assignments)
                    .map(|(r, &c)| {
                        let mut vals = r.values().to_vec();
                        vals.push(Value::Int(c as i64));
                        Row::from(vals)
                    })
                    .collect();
                Ok(Dataset::rows(out_schema, rows, d.model, loc(d)))
            }
            Operator::Custom { name } => {
                Err(Error::Execution(format!("no adapter for custom op {name}")))
            }
        }
    }

    /// The device profile used for ML kernels: the fleet's best matrix
    /// engine under offload, otherwise the host.
    fn training_profile(&self) -> &pspp_accel::DeviceProfile {
        if self.offload {
            self.fleet
                .best_device(KernelClass::Gemm)
                .unwrap_or_else(|| self.fleet.host())
        } else {
            self.fleet.host()
        }
    }

    /// Posts the simulated execution cost of an operator and returns its
    /// seconds.
    fn charge_op(
        &self,
        op: &Operator,
        device: DeviceKind,
        rows: u64,
        bytes: u64,
        node: NodeId,
    ) -> f64 {
        let kernel = kernel_for(op);
        let profile = match self.fleet.profile(device) {
            Some(p) if p.supports(kernel) && p.efficiency(kernel) > 0.0 => p,
            _ => self.fleet.host(),
        };
        let cycles = match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => {
                BitonicSorter::cycles(profile, rows)
            }
            Operator::HashJoin { .. } | Operator::GroupBy { .. } => {
                HashPartitioner::cycles(profile, rows)
            }
            Operator::Predict => Gemm::cycles(profile, rows, 32, 1),
            _ => StreamFilter::cycles(profile, rows, bytes),
        };
        let mut t = SimDuration::from_secs(
            profile.cycles_to_s(cycles + profile.launch_overhead_cycles),
        );
        if let Some(attached) = self.fleet.device(profile.kind()) {
            let transfer_bytes = match op {
                Operator::Sort { .. } | Operator::SortMergeJoin { .. } => rows * 16,
                _ => bytes,
            };
            t += attached.transfer_cost(transfer_bytes);
        }
        self.ledger.post(
            format!("executor.{}@{node}", op.name()),
            profile.kind(),
            pspp_accel::EventKind::Compute,
            bytes,
            t,
            profile.energy_j(t.as_secs()),
        );
        t.as_secs()
    }
}

/// Converts a tabular dataset into an ML dataset; numeric columns become
/// features (the label column, when given, becomes the target).
fn to_ml_dataset(d: &Dataset, label: Option<&str>) -> Result<(MlDataset, Schema)> {
    to_ml_dataset_with_dim(d, label, None)
}

/// As [`to_ml_dataset`], optionally truncating to the first `dim`
/// numeric columns (for scoring with an already-trained model).
fn to_ml_dataset_with_dim(
    d: &Dataset,
    label: Option<&str>,
    dim: Option<usize>,
) -> Result<(MlDataset, Schema)> {
    let schema = d.schema()?;
    let rows = d.try_rows()?;
    let label_idx = match label {
        Some(l) => Some(schema.require(l)?),
        None => None,
    };
    let mut feature_cols: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, f)| Some(*i) != label_idx && f.data_type.is_numeric())
        .map(|(i, _)| i)
        .collect();
    if let Some(dim) = dim {
        if feature_cols.len() < dim {
            return Err(Error::Execution(format!(
                "model expects {dim} features, dataset has {}",
                feature_cols.len()
            )));
        }
        feature_cols.truncate(dim);
    }
    if feature_cols.is_empty() {
        return Err(Error::Execution("no numeric feature columns".into()));
    }
    let examples: Vec<(Vec<f64>, f64)> = rows
        .iter()
        .map(|r| {
            let feats: Vec<f64> = feature_cols
                .iter()
                .map(|&c| r[c].as_f64().unwrap_or(0.0))
                .collect();
            let y = label_idx
                .map(|i| r[i].as_f64().unwrap_or(0.0))
                .unwrap_or(0.0);
            (feats, y)
        })
        .collect();
    Ok((MlDataset::from_examples(&examples)?, schema.clone()))
}

fn kernel_for(op: &Operator) -> KernelClass {
    match op {
        Operator::Sort { .. } | Operator::SortMergeJoin { .. } => KernelClass::Sort,
        Operator::HashJoin { .. } => KernelClass::HashPartition,
        Operator::GroupBy { .. } | Operator::TsWindow { .. } | Operator::StreamWindow { .. } => {
            KernelClass::Aggregate
        }
        Operator::GraphMatch { .. } => KernelClass::GraphTraverse,
        Operator::TrainMlp { .. } => KernelClass::Gemm,
        Operator::Predict => KernelClass::Gemv,
        Operator::KMeansCluster { .. } => KernelClass::KMeans,
        _ => KernelClass::FilterProject,
    }
}

fn ts_agg(a: TsAgg) -> pspp_tsstore::WindowAgg {
    match a {
        TsAgg::Mean => pspp_tsstore::WindowAgg::Mean,
        TsAgg::Min => pspp_tsstore::WindowAgg::Min,
        TsAgg::Max => pspp_tsstore::WindowAgg::Max,
        TsAgg::Sum => pspp_tsstore::WindowAgg::Sum,
        TsAgg::Count => pspp_tsstore::WindowAgg::Count,
        TsAgg::Last => pspp_tsstore::WindowAgg::Last,
    }
}

fn stream_agg(a: TsAgg) -> fn(&[f64]) -> f64 {
    match a {
        TsAgg::Mean => |v| v.iter().sum::<f64>() / v.len() as f64,
        TsAgg::Min => |v| v.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        TsAgg::Max => |v| v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
        TsAgg::Sum => |v| v.iter().sum(),
        TsAgg::Count => |v| v.len() as f64,
        TsAgg::Last => |v| *v.last().expect("nonempty window"),
    }
}

fn agg_fn(f: AggFn) -> Aggregate {
    match f {
        AggFn::Count => Aggregate::Count,
        AggFn::Sum => Aggregate::Sum,
        AggFn::Avg => Aggregate::Avg,
        AggFn::Min => Aggregate::Min,
        AggFn::Max => Aggregate::Max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::{row, Predicate, TableRef};
    use pspp_relstore::RelationalStore;

    fn registry() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        let mut db1 = RelationalStore::new("db1");
        db1.create_table(
            "admissions",
            Schema::new(vec![
                ("pid", DataType::Int),
                ("age", DataType::Int),
                ("los", DataType::Float),
            ]),
        )
        .unwrap();
        db1.insert(
            "admissions",
            (0..200)
                .map(|i| row![i as i64, (20 + i % 60) as i64, (i % 10) as f64])
                .collect(),
        )
        .unwrap();
        let mut db2 = RelationalStore::new("db2");
        db2.create_table(
            "patients",
            Schema::new(vec![("pid", DataType::Int), ("name", DataType::Str)]),
        )
        .unwrap();
        db2.insert(
            "patients",
            (0..200).map(|i| row![i as i64, format!("p{i}")]).collect(),
        )
        .unwrap();
        r.register(
            EngineId::new("db1"),
            EngineInstance::Relational(db1),
        )
        .unwrap();
        r.register(
            EngineId::new("db2"),
            EngineInstance::Relational(db2),
        )
        .unwrap();
        r
    }

    fn exec() -> Executor {
        Executor::new(AcceleratorFleet::workstation(), CostLedger::new())
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let mut p = Program::new();
        let s = p.add_source(
            Operator::Scan {
                table: TableRef::new("db1", "admissions"),
                predicate: Predicate::ge("age", 60i64),
                projection: Some(vec!["pid".into(), "age".into()]),
            },
            "sql",
        );
        p.mark_output(s);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert!(out.len() > 0 && out.len() < 200);
        assert_eq!(out.schema().unwrap().arity(), 2);
        assert!(report.makespan_sequential > 0.0);
    }

    #[test]
    fn cross_engine_join_triggers_migration() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "patients")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "pid".into(),
                right_on: "pid".into(),
            },
            vec![a, b],
            "sql",
        );
        // Execute the join at db1: patient rows must migrate.
        p.node_mut(j).annotations.engine = Some(EngineId::new("db1"));
        p.mark_output(j);
        let e = exec();
        let report = e.execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 200);
        assert!(report.migration_seconds > 0.0);
        assert!(e.ledger().events().iter().any(|ev| ev.component == "migrate.transfer"));
    }

    #[test]
    fn fused_nodes_forward_inputs() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![s],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let lim = p.add_node(Operator::Limit { n: 5 }, vec![f], "sql");
        p.mark_output(lim);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].len(), 5);
        assert!(!report.node_seconds.contains_key(&f));
    }

    #[test]
    fn train_and_predict_end_to_end() {
        let mut p = Program::new();
        let s1 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let t = p.add_node(
            Operator::TrainMlp {
                label_column: "los".into(),
                hidden: vec![8],
                epochs: 2,
                batch_size: 32,
                learning_rate: 0.1,
            },
            vec![s1],
            "ml",
        );
        let s2 = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let pred = p.add_node(Operator::Predict, vec![s2, t], "ml");
        p.mark_output(pred);
        let report = exec().execute(&p, &registry()).unwrap();
        let out = &report.outputs[0];
        assert_eq!(out.len(), 200);
        let schema = out.schema().unwrap();
        assert_eq!(schema.names().last().copied(), Some("prediction"));
        for r in out.try_rows().unwrap().iter().take(5) {
            let pr = r[schema.arity() - 1].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn group_by_executes() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let g = p.add_node(
            Operator::GroupBy {
                keys: vec![],
                aggs: vec![pspp_ir::AggSpec {
                    func: AggFn::Count,
                    column: "*".into(),
                    output: "n".into(),
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(g);
        let report = exec().execute(&p, &registry()).unwrap();
        assert_eq!(report.outputs[0].try_rows().unwrap()[0][0], Value::Int(200));
    }

    #[test]
    fn pipelined_makespan_never_exceeds_sequential() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::ge("age", 30i64),
            },
            vec![a],
            "sql",
        );
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![f],
            "sql",
        );
        p.mark_output(sort);
        let report = exec().pipelined(true).execute(&p, &registry()).unwrap();
        assert!(report.makespan_pipelined <= report.makespan_sequential + 1e-12);
        assert!(report.pipelined);
        assert!(report.makespan() <= report.makespan_sequential);
    }

    #[test]
    fn offload_disabled_runs_cpu_only() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![pspp_ir::SortSpec {
                    column: "age".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        p.node_mut(sort).annotations.device = Some(DeviceKind::Fpga);
        p.mark_output(sort);
        let report = exec().offload(false).execute(&p, &registry()).unwrap();
        assert_eq!(report.offloaded, 0);
    }

    #[test]
    fn custom_op_fails_cleanly() {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "admissions")), "sql");
        let c = p.add_node(Operator::Custom { name: "mystery".into() }, vec![a], "x");
        p.mark_output(c);
        assert!(matches!(
            exec().execute(&p, &registry()),
            Err(Error::Execution(_))
        ));
    }
}

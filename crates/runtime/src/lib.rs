//! The Polystore++ middleware runtime (§III, §IV-D).
//!
//! * [`Dataset`] — data flowing between operators: rows plus their data
//!   model and current engine location.
//! * [`EngineRegistry`] — the deployed engine instances (Fig. 4's server
//!   pools).
//! * [`Executor`] — walks an annotated IR program in topological stages,
//!   dispatches each node to its engine via the adapters, offloads
//!   annotated kernels to the accelerator fleet, invokes the data
//!   migrator on cross-engine edges, and accounts the simulated
//!   makespan both sequentially and pipelined (§IV-D: "the whole
//!   workload execution can be perceived as a pipeline of the stages'
//!   execution").

pub mod dataset;
pub mod executor;
pub mod registry;

pub use dataset::{Dataset, Payload};
pub use executor::{ExecutionReport, Executor};
pub use registry::{EngineInstance, EngineRegistry};

//! The Polystore++ middleware runtime (§III, §IV-D).
//!
//! * [`Dataset`] — data flowing between operators: rows plus their data
//!   model and current engine location.
//! * [`ShardedRegistry`] — the deployed engine instances (Fig. 4's
//!   server pools), each an ordered list of shard replicas; partitioned
//!   tables carry a [`pspp_common::PartitionSpec`] routing scans to
//!   their shards ([`EngineRegistry`] remains the single-shard alias).
//! * [`physical`] — the physical execution layer: the
//!   [`EngineAdapter`] boundary (one adapter per engine kind plus the
//!   ML adapter), the [`Placer`] (target-engine resolution and
//!   cross-engine migration accounting) and the
//!   [`physical::Charger`] (simulated cost attribution).
//! * [`Executor`] — the orchestration loop: walks an annotated IR
//!   program in topological stages, scatters each stage into (node,
//!   shard) tasks run concurrently via scoped threads, gathers shard
//!   partials in shard order, dispatches every operator through the
//!   adapter registry, and accounts the simulated makespan both
//!   sequentially and pipelined (§IV-D: "the whole workload execution
//!   can be perceived as a pipeline of the stages' execution").

pub mod dataset;
pub mod executor;
pub mod physical;
pub mod registry;

pub use dataset::{Dataset, Payload};
pub use executor::{ExecutionReport, Executor};
pub use physical::{AdapterRegistry, Charger, EngineAdapter, ExecCtx, Placer};
pub use registry::{EngineInstance, EngineRegistry, RebalanceReport, ShardedRegistry};

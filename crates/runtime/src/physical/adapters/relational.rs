//! Adapter for relational stores and engine-agnostic row transforms.

use pspp_common::{DataModel, EngineId, Result};
use pspp_ir::{AggFn, Operator};
use pspp_relstore::{ops, Aggregate, AggregateSpec, JoinKind, SortKey};

use crate::dataset::Dataset;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::EngineRegistry;

/// Executes relational scans against their store, and the generic row
/// transforms (filter, project, sort, joins, group-by, limit) wherever
/// the data currently lives — transforms run at the middleware over any
/// data model's row form, matching the paper's "operators migrate to
/// data" default.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelationalAdapter;

impl EngineAdapter for RelationalAdapter {
    fn name(&self) -> &'static str {
        "relational"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(
            op,
            Operator::Scan { .. }
                | Operator::Filter { .. }
                | Operator::Project { .. }
                | Operator::Sort { .. }
                | Operator::HashJoin { .. }
                | Operator::SortMergeJoin { .. }
                | Operator::GroupBy { .. }
                | Operator::Limit { .. }
        )
    }

    fn run(
        &self,
        op: &Operator,
        inputs: &[Dataset],
        target: Option<&EngineId>,
        registry: &EngineRegistry,
        ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        let loc = |d: &Dataset| d.location.clone();
        match op {
            Operator::Scan {
                table,
                predicate,
                projection,
            } => {
                // Scatter-gather scans read the shard replica the
                // executor routed this task to (shard 0 when unsharded).
                let store = registry.relational_shard(&table.engine, ctx.shard())?;
                let cols: Option<Vec<&str>> = projection
                    .as_ref()
                    .map(|p| p.iter().map(String::as_str).collect());
                let rows = store.scan(&table.name, predicate, cols.as_deref())?;
                let schema = store.scan_schema(&table.name, cols.as_deref())?;
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Relational,
                    table.engine.clone(),
                ))
            }
            Operator::Filter { predicate } => {
                let d = &inputs[0];
                let rows = ops::filter_rows(d.schema()?, d.try_rows()?.to_vec(), predicate)?;
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            Operator::Project { columns } => {
                let d = &inputs[0];
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                let (schema, rows) = ops::project(d.schema()?, d.try_rows()?, &cols)?;
                Ok(Dataset::rows(schema, rows, d.model, loc(d)))
            }
            Operator::Sort { keys } => {
                let d = &inputs[0];
                let sort_keys: Vec<SortKey> = keys
                    .iter()
                    .map(|k| SortKey {
                        column: k.column.clone(),
                        ascending: k.ascending,
                    })
                    .collect();
                let rows = ops::sort_rows(d.schema()?, d.try_rows()?.to_vec(), &sort_keys)?;
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            Operator::HashJoin { left_on, right_on } => {
                let (l, r) = (&inputs[0], &inputs[1]);
                let (schema, rows) = ops::hash_join(
                    l.schema()?,
                    l.try_rows()?,
                    r.schema()?,
                    r.try_rows()?,
                    left_on,
                    right_on,
                    JoinKind::Inner,
                )?;
                let location = target.cloned().unwrap_or_else(|| loc(l));
                Ok(Dataset::rows(schema, rows, l.model, location))
            }
            Operator::SortMergeJoin { left_on, right_on } => {
                let (l, r) = (&inputs[0], &inputs[1]);
                let (schema, rows) = ops::sort_merge_join(
                    l.schema()?,
                    l.try_rows()?.to_vec(),
                    r.schema()?,
                    r.try_rows()?.to_vec(),
                    left_on,
                    right_on,
                )?;
                let location = target.cloned().unwrap_or_else(|| loc(l));
                Ok(Dataset::rows(schema, rows, l.model, location))
            }
            Operator::GroupBy { keys, aggs } => {
                let d = &inputs[0];
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let specs: Vec<AggregateSpec> = aggs
                    .iter()
                    .map(|a| AggregateSpec::new(agg_fn(a.func), a.column.clone(), a.output.clone()))
                    .collect();
                let (schema, rows) = ops::group_by(d.schema()?, d.try_rows()?, &key_refs, &specs)?;
                Ok(Dataset::rows(schema, rows, d.model, loc(d)))
            }
            Operator::Limit { n } => {
                let d = &inputs[0];
                let rows = ops::limit(d.try_rows()?.to_vec(), *n);
                Ok(Dataset::rows(d.schema()?.clone(), rows, d.model, loc(d)))
            }
            other => unsupported(self, other),
        }
    }
}

/// Maps IR aggregate functions to the relational store's natives.
pub(crate) fn agg_fn(f: AggFn) -> Aggregate {
    match f {
        AggFn::Count => Aggregate::Count,
        AggFn::Sum => Aggregate::Sum,
        AggFn::Avg => Aggregate::Avg,
        AggFn::Min => Aggregate::Min,
        AggFn::Max => Aggregate::Max,
        AggFn::CountNonNull => Aggregate::CountNonNull,
    }
}

/// Shared "wrong adapter" error used by every adapter's fallthrough arm.
pub(crate) fn unsupported(adapter: &dyn EngineAdapter, op: &Operator) -> Result<Dataset> {
    Err(pspp_common::Error::Execution(format!(
        "{} adapter cannot execute {}",
        adapter.name(),
        op.name()
    )))
}

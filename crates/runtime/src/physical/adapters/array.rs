//! Adapter slot for array/tensor stores.

use pspp_common::{EngineId, Result};
use pspp_ir::Operator;

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::EngineRegistry;

/// The array-engine extension point.
///
/// The IR's current operator vocabulary has no array-native operator —
/// array data reaches programs through the ML adapter's tensor path —
/// so this adapter claims nothing yet. It exists so the dispatch table
/// covers every engine kind in the registry and array operators land in
/// one obvious place when the IR grows them (slice, reshape, matmul).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrayAdapter;

impl EngineAdapter for ArrayAdapter {
    fn name(&self) -> &'static str {
        "array"
    }

    fn supports(&self, _op: &Operator) -> bool {
        false
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        _registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        unsupported(self, op)
    }
}

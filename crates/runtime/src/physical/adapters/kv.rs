//! Adapter for key/value stores.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Row, Schema, Value};
use pspp_ir::Operator;

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::{EngineInstance, EngineRegistry};

/// Executes prefix scans against a key/value store, materializing the
/// hits as `(key, value)` rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvAdapter;

impl EngineAdapter for KvAdapter {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(op, Operator::KvPrefixScan { .. })
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::KvPrefixScan { table, prefix } => {
                let EngineInstance::KeyValue(kv) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a kv store",
                        table.engine
                    )));
                };
                let pairs = kv.scan_prefix(prefix);
                let value_type = pairs
                    .iter()
                    .find_map(|(_, v)| v.data_type())
                    .unwrap_or(DataType::Str);
                let schema = Schema::new(vec![("key", DataType::Str), ("value", value_type)]);
                let rows = pairs
                    .into_iter()
                    .map(|(k, v)| Row::from(vec![Value::from(k.to_owned()), v.clone()]))
                    .collect();
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::KeyValue,
                    table.engine.clone(),
                ))
            }
            other => unsupported(self, other),
        }
    }
}

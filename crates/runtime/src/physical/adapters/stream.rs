//! Adapter for event-stream stores.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Row, Schema, Value};
use pspp_ir::{Operator, TsAgg};

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::{EngineInstance, EngineRegistry};

/// Executes tumbling-window aggregates against a stream store.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamAdapter;

impl EngineAdapter for StreamAdapter {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(op, Operator::StreamWindow { .. })
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::StreamWindow {
                table,
                lo,
                hi,
                width,
                column,
                agg,
            } => {
                let EngineInstance::Stream(s) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a stream store",
                        table.engine
                    )));
                };
                let windows = s.window_aggregate(
                    &table.name,
                    *lo,
                    *hi,
                    pspp_streamstore::WindowSpec::Tumbling { width: *width },
                    *column,
                    stream_agg(*agg),
                )?;
                let schema = Schema::new(vec![
                    ("window_start", DataType::Int),
                    ("value", DataType::Float),
                ]);
                let rows = windows
                    .into_iter()
                    .map(|(t, v)| Row::from(vec![Value::Int(t), Value::Float(v)]))
                    .collect();
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Stream,
                    table.engine.clone(),
                ))
            }
            other => unsupported(self, other),
        }
    }
}

/// Maps IR window aggregates to fold functions over window payloads.
fn stream_agg(a: TsAgg) -> fn(&[f64]) -> f64 {
    match a {
        TsAgg::Mean => |v| v.iter().sum::<f64>() / v.len() as f64,
        TsAgg::Min => |v| v.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        TsAgg::Max => |v| v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
        TsAgg::Sum => |v| v.iter().sum(),
        TsAgg::Count => |v| v.len() as f64,
        TsAgg::Last => |v| *v.last().expect("nonempty window"),
    }
}

//! Adapter for timeseries stores.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Row, Schema, Value};
use pspp_ir::{Operator, TsAgg};

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::{EngineInstance, EngineRegistry};

/// Executes range reads and tumbling-window aggregates against a
/// timeseries store.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeseriesAdapter;

impl EngineAdapter for TimeseriesAdapter {
    fn name(&self) -> &'static str {
        "timeseries"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(op, Operator::TsRange { .. } | Operator::TsWindow { .. })
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::TsRange { table, lo, hi } => {
                let EngineInstance::Timeseries(ts) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a ts store",
                        table.engine
                    )));
                };
                let pts = ts.range(&table.name, *lo, *hi)?;
                let schema = Schema::new(vec![
                    ("ts", DataType::Timestamp),
                    ("value", DataType::Float),
                ]);
                let rows = pts
                    .iter()
                    .map(|&(t, v)| Row::from(vec![Value::Timestamp(t), Value::Float(v)]))
                    .collect();
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Timeseries,
                    table.engine.clone(),
                ))
            }
            Operator::TsWindow {
                table,
                lo,
                hi,
                width,
                agg,
            } => {
                let EngineInstance::Timeseries(ts) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a ts store",
                        table.engine
                    )));
                };
                let windows = ts.window_aggregate(&table.name, *lo, *hi, *width, ts_agg(*agg))?;
                // `window_idx` (ordinal window number) is the join-friendly
                // key: deployments that lay series out as
                // `entity_id × width + offset` can join entities to their
                // window aggregates directly.
                let schema = Schema::new(vec![
                    ("window_idx", DataType::Int),
                    ("window_start", DataType::Int),
                    ("value", DataType::Float),
                ]);
                let rows = windows
                    .into_iter()
                    .map(|(t, v)| {
                        Row::from(vec![
                            Value::Int(t / width.max(&1)),
                            Value::Int(t),
                            Value::Float(v),
                        ])
                    })
                    .collect();
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Timeseries,
                    table.engine.clone(),
                ))
            }
            other => unsupported(self, other),
        }
    }
}

/// Maps IR window aggregates to the timeseries store's natives.
fn ts_agg(a: TsAgg) -> pspp_tsstore::WindowAgg {
    match a {
        TsAgg::Mean => pspp_tsstore::WindowAgg::Mean,
        TsAgg::Min => pspp_tsstore::WindowAgg::Min,
        TsAgg::Max => pspp_tsstore::WindowAgg::Max,
        TsAgg::Sum => pspp_tsstore::WindowAgg::Sum,
        TsAgg::Count => pspp_tsstore::WindowAgg::Count,
        TsAgg::Last => pspp_tsstore::WindowAgg::Last,
    }
}

//! The standard adapter set: one [`super::EngineAdapter`] per engine
//! kind, plus the ML adapter.

pub mod array;
pub mod graph;
pub mod kv;
pub mod ml;
pub mod relational;
pub mod stream;
pub mod text;
pub mod timeseries;

pub use array::ArrayAdapter;
pub use graph::GraphAdapter;
pub use kv::KvAdapter;
pub use ml::MlAdapter;
pub use relational::RelationalAdapter;
pub use stream::StreamAdapter;
pub use text::TextAdapter;
pub use timeseries::TimeseriesAdapter;

//! Adapter for inverted-index text stores.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Row, Schema, Value};
use pspp_ir::{Operator, TextSearchMode};

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::{EngineInstance, EngineRegistry};

/// Executes boolean and ranked term searches against a text store.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextAdapter;

impl EngineAdapter for TextAdapter {
    fn name(&self) -> &'static str {
        "text"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(op, Operator::TextSearch { .. })
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::TextSearch { table, terms, mode } => {
                let EngineInstance::Text(t) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a text store",
                        table.engine
                    )));
                };
                let term_refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                let (schema, rows) = match mode {
                    TextSearchMode::All => {
                        let ids = t.search_all(&term_refs);
                        (
                            Schema::new(vec![("doc_id", DataType::Int)]),
                            ids.into_iter()
                                .map(|d| Row::from(vec![Value::Int(d as i64)]))
                                .collect::<Vec<Row>>(),
                        )
                    }
                    TextSearchMode::Any => {
                        let ids = t.search_any(&term_refs);
                        (
                            Schema::new(vec![("doc_id", DataType::Int)]),
                            ids.into_iter()
                                .map(|d| Row::from(vec![Value::Int(d as i64)]))
                                .collect::<Vec<Row>>(),
                        )
                    }
                    TextSearchMode::Ranked(k) => {
                        let hits = t.search_ranked(&terms.join(" "), *k);
                        (
                            Schema::new(vec![
                                ("doc_id", DataType::Int),
                                ("score", DataType::Float),
                            ]),
                            hits.into_iter()
                                .map(|(d, s)| {
                                    Row::from(vec![Value::Int(d as i64), Value::Float(s)])
                                })
                                .collect::<Vec<Row>>(),
                        )
                    }
                };
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Text,
                    table.engine.clone(),
                ))
            }
            other => unsupported(self, other),
        }
    }
}

//! Adapter for the ML engine: training, scoring and clustering.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Row, Schema, Value};
use pspp_ir::Operator;
use pspp_mlengine::{Dataset as MlDataset, KMeans, KMeansConfig, Mlp, TrainConfig};

use crate::dataset::{Dataset, Payload};
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::EngineRegistry;

/// Executes the ML patterns (Figs. 2, 3, 7): MLP training, model
/// scoring, and k-means clustering. Kernels run on the fleet's best
/// matrix engine when offload is enabled (via
/// [`ExecCtx::training_profile`]), posting their cycles to the node's
/// ledger under the `mlengine` component.
#[derive(Debug, Clone, Copy, Default)]
pub struct MlAdapter;

impl EngineAdapter for MlAdapter {
    fn name(&self) -> &'static str {
        "ml"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(
            op,
            Operator::TrainMlp { .. } | Operator::Predict | Operator::KMeansCluster { .. }
        )
    }

    fn run(
        &self,
        op: &Operator,
        inputs: &[Dataset],
        _target: Option<&EngineId>,
        _registry: &EngineRegistry,
        ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::TrainMlp {
                label_column,
                hidden,
                epochs,
                batch_size,
                learning_rate,
            } => {
                let d = &inputs[0];
                let (data, _) = to_ml_dataset(d, Some(label_column))?;
                let mut sizes = vec![data.dim()];
                sizes.extend(hidden.iter().copied());
                sizes.push(1);
                let mut mlp = Mlp::new(&sizes, 42)?;
                mlp.train(
                    ctx.training_profile(),
                    &data,
                    &TrainConfig {
                        epochs: *epochs,
                        batch_size: (*batch_size).max(1),
                        learning_rate: *learning_rate,
                    },
                    Some(ctx.ledger()),
                )?;
                Ok(Dataset {
                    payload: Payload::Model(Box::new(mlp)),
                    model: DataModel::Tensor,
                    location: EngineId::new("middleware"),
                })
            }
            Operator::Predict => {
                let d = &inputs[0];
                let mlp = inputs[1].try_model()?;
                // Score with the first `input_dim` numeric columns — the
                // convention `TrainMlp` used (features in schema order).
                let (data, schema) = to_ml_dataset_with_dim(d, None, Some(mlp.input_dim()))?;
                let probs =
                    mlp.predict_proba(ctx.training_profile(), data.features(), Some(ctx.ledger()))?;
                let mut fields: Vec<pspp_common::Field> = schema.fields().to_vec();
                fields.push(pspp_common::Field::new("prediction", DataType::Float));
                let out_schema = Schema::from_fields(fields);
                let rows: Vec<Row> = d
                    .try_rows()?
                    .iter()
                    .zip(&probs)
                    .map(|(r, p)| {
                        let mut vals = r.values().to_vec();
                        vals.push(Value::Float(*p));
                        Row::from(vals)
                    })
                    .collect();
                Ok(Dataset::rows(out_schema, rows, d.model, d.location.clone()))
            }
            Operator::KMeansCluster { k, max_iters } => {
                let d = &inputs[0];
                let (data, schema) = to_ml_dataset(d, None)?;
                let result = KMeans::run(
                    ctx.training_profile(),
                    data.features(),
                    &KMeansConfig {
                        k: *k,
                        max_iters: *max_iters,
                        ..KMeansConfig::default()
                    },
                    Some(ctx.ledger()),
                )?;
                let mut fields: Vec<pspp_common::Field> = schema.fields().to_vec();
                fields.push(pspp_common::Field::new("cluster", DataType::Int));
                let out_schema = Schema::from_fields(fields);
                let rows: Vec<Row> = d
                    .try_rows()?
                    .iter()
                    .zip(&result.assignments)
                    .map(|(r, &c)| {
                        let mut vals = r.values().to_vec();
                        vals.push(Value::Int(c as i64));
                        Row::from(vals)
                    })
                    .collect();
                Ok(Dataset::rows(out_schema, rows, d.model, d.location.clone()))
            }
            other => unsupported(self, other),
        }
    }
}

/// Converts a tabular dataset into an ML dataset; numeric columns become
/// features (the label column, when given, becomes the target).
fn to_ml_dataset(d: &Dataset, label: Option<&str>) -> Result<(MlDataset, Schema)> {
    to_ml_dataset_with_dim(d, label, None)
}

/// As [`to_ml_dataset`], optionally truncating to the first `dim`
/// numeric columns (for scoring with an already-trained model).
fn to_ml_dataset_with_dim(
    d: &Dataset,
    label: Option<&str>,
    dim: Option<usize>,
) -> Result<(MlDataset, Schema)> {
    let schema = d.schema()?;
    let rows = d.try_rows()?;
    let label_idx = match label {
        Some(l) => Some(schema.require(l)?),
        None => None,
    };
    let mut feature_cols: Vec<usize> = schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, f)| Some(*i) != label_idx && f.data_type.is_numeric())
        .map(|(i, _)| i)
        .collect();
    if let Some(dim) = dim {
        if feature_cols.len() < dim {
            return Err(Error::Execution(format!(
                "model expects {dim} features, dataset has {}",
                feature_cols.len()
            )));
        }
        feature_cols.truncate(dim);
    }
    if feature_cols.is_empty() {
        return Err(Error::Execution("no numeric feature columns".into()));
    }
    let examples: Vec<(Vec<f64>, f64)> = rows
        .iter()
        .map(|r| {
            let feats: Vec<f64> = feature_cols
                .iter()
                .map(|&c| r[c].as_f64().unwrap_or(0.0))
                .collect();
            let y = label_idx
                .map(|i| r[i].as_f64().unwrap_or(0.0))
                .unwrap_or(0.0);
            (feats, y)
        })
        .collect();
    Ok((MlDataset::from_examples(&examples)?, schema.clone()))
}

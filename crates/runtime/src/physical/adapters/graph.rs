//! Adapter for property-graph stores.

use pspp_common::{DataModel, DataType, EngineId, Error, Result, Schema, Value};
use pspp_ir::Operator;

use crate::dataset::Dataset;
use crate::physical::adapters::relational::unsupported;
use crate::physical::{EngineAdapter, ExecCtx};
use crate::registry::{EngineInstance, EngineRegistry};

/// Executes Cypher-style pattern matches against a graph store,
/// materializing one row per matched path.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphAdapter;

impl EngineAdapter for GraphAdapter {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn supports(&self, op: &Operator) -> bool {
        matches!(op, Operator::GraphMatch { .. })
    }

    fn run(
        &self,
        op: &Operator,
        _inputs: &[Dataset],
        _target: Option<&EngineId>,
        registry: &EngineRegistry,
        _ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match op {
            Operator::GraphMatch {
                table,
                start_label,
                steps,
            } => {
                let EngineInstance::Graph(g) = registry.get(&table.engine)? else {
                    return Err(Error::Invalid(format!(
                        "{} is not a graph store",
                        table.engine
                    )));
                };
                let pattern: Vec<pspp_graphstore::PatternStep> = steps
                    .iter()
                    .map(|(rel, label)| pspp_graphstore::PatternStep {
                        rel: rel.clone(),
                        node_label: label.clone(),
                    })
                    .collect();
                let paths = g.match_pattern(start_label, &pattern);
                let arity = steps.len() + 1;
                let schema = Schema::new(
                    (0..arity)
                        .map(|i| (format!("node_{i}"), DataType::Int))
                        .collect::<Vec<_>>(),
                );
                let rows = paths
                    .into_iter()
                    .map(|p| p.into_iter().map(|n| Value::Int(n as i64)).collect())
                    .collect();
                Ok(Dataset::rows(
                    schema,
                    rows,
                    DataModel::Graph,
                    table.engine.clone(),
                ))
            }
            other => unsupported(self, other),
        }
    }
}

//! The charger: simulated cost attribution for operator execution.

use pspp_accel::kernels::{BitonicSorter, Gemm, HashPartitioner, StreamFilter};
use pspp_accel::{AcceleratorFleet, CostLedger, Interconnect, KernelClass, SimDuration};
use pspp_common::DeviceKind;
use pspp_ir::{NodeId, Operator};
use pspp_telemetry::MetricsRegistry;

/// Owns ledger/kernel cost attribution: which kernel class an operator
/// maps to, which device profile actually serves it, and the posted
/// compute + transfer + energy charges.
#[derive(Debug, Clone, Copy)]
pub struct Charger<'a> {
    fleet: &'a AcceleratorFleet,
    /// Metrics sink for kernel-charge counters; borrowed so the charger
    /// stays `Copy`.
    metrics: Option<&'a MetricsRegistry>,
    /// Device-resident input link: a non-head fused-chain member reads
    /// its input from the device-local memory its producer left it in,
    /// so the host↔device transfer is billed at this link instead of
    /// the attachment's (PCIe) link.
    resident: Option<&'a Interconnect>,
}

impl<'a> Charger<'a> {
    /// A charger over `fleet`.
    pub fn new(fleet: &'a AcceleratorFleet) -> Self {
        Charger {
            fleet,
            metrics: None,
            resident: None,
        }
    }

    /// Counts kernel charges per serving device into `metrics`.
    pub fn with_metrics(mut self, metrics: Option<&'a MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Bills the charged operator's transfer at `link` instead of the
    /// device attachment (fused-chain members after the head).
    pub fn with_resident_link(mut self, link: Option<&'a Interconnect>) -> Self {
        self.resident = link;
        self
    }

    /// The accelerator kernel class executing `op`.
    pub fn kernel_for(op: &Operator) -> KernelClass {
        match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => KernelClass::Sort,
            Operator::HashJoin { .. } => KernelClass::HashPartition,
            Operator::GroupBy { .. }
            | Operator::TsWindow { .. }
            | Operator::StreamWindow { .. } => KernelClass::Aggregate,
            Operator::GraphMatch { .. } => KernelClass::GraphTraverse,
            Operator::TrainMlp { .. } => KernelClass::Gemm,
            Operator::Predict => KernelClass::Gemv,
            Operator::KMeansCluster { .. } => KernelClass::KMeans,
            _ => KernelClass::FilterProject,
        }
    }

    /// Whether `op`'s cost is accounted by the ML engine itself (its
    /// kernels post their own `mlengine.*` events while running).
    pub fn is_ml_op(op: &Operator) -> bool {
        matches!(
            op,
            Operator::TrainMlp { .. } | Operator::Predict | Operator::KMeansCluster { .. }
        )
    }

    /// The ML engine's busy seconds already posted to `ledger` (the
    /// execution cost of an ML operator run against a node-scoped
    /// ledger).
    pub fn ml_seconds(ledger: &CostLedger) -> f64 {
        ledger.busy_for("mlengine").as_secs()
    }

    /// Posts the simulated execution cost of `op` to `ledger` and
    /// returns its seconds.
    ///
    /// Falls back to the host profile when the annotated device does not
    /// support (or has zero efficiency for) the operator's kernel class;
    /// attached accelerators additionally pay their transfer cost.
    pub fn charge(
        &self,
        ledger: &CostLedger,
        op: &Operator,
        device: DeviceKind,
        rows: u64,
        bytes: u64,
        node: NodeId,
    ) -> f64 {
        self.charge_detailed(ledger, op, device, rows, bytes, node).0
    }

    /// [`Charger::charge`], additionally returning the transfer seconds
    /// saved by a device-resident input link (zero when no
    /// [`Charger::with_resident_link`] applies).
    pub fn charge_detailed(
        &self,
        ledger: &CostLedger,
        op: &Operator,
        device: DeviceKind,
        rows: u64,
        bytes: u64,
        node: NodeId,
    ) -> (f64, f64) {
        let kernel = Self::kernel_for(op);
        let profile = match self.fleet.profile(device) {
            Some(p) if p.supports(kernel) && p.efficiency(kernel) > 0.0 => p,
            _ => self.fleet.host(),
        };
        let cycles = match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => {
                BitonicSorter::cycles(profile, rows)
            }
            Operator::HashJoin { .. } | Operator::GroupBy { .. } => {
                HashPartitioner::cycles(profile, rows)
            }
            Operator::Predict => Gemm::cycles(profile, rows, 32, 1),
            _ => StreamFilter::cycles(profile, rows, bytes),
        };
        let mut t =
            SimDuration::from_secs(profile.cycles_to_s(cycles + profile.launch_overhead_cycles));
        let mut saved = 0.0f64;
        if let Some(attached) = self.fleet.device(profile.kind()) {
            let transfer_bytes = match op {
                Operator::Sort { .. } | Operator::SortMergeJoin { .. } => rows * 16,
                _ => bytes,
            };
            let full = attached.transfer_cost(transfer_bytes);
            let billed = match self.resident {
                // Resident input: the producer left the data in device
                // memory, so the transfer crosses the local link.
                Some(link) => {
                    let local = link.transfer_time(transfer_bytes);
                    if local < full {
                        local
                    } else {
                        full
                    }
                }
                None => full,
            };
            saved = (full - billed).as_secs();
            t += billed;
        }
        ledger.post(
            format!("executor.{}@{node}", op.name()),
            profile.kind(),
            pspp_accel::EventKind::Compute,
            bytes,
            t,
            profile.energy_j(t.as_secs()),
        );
        if let Some(metrics) = self.metrics {
            let device = format!("{:?}", profile.kind());
            metrics
                .counter(
                    "pspp_kernel_charges_total",
                    "Operator kernel charges by serving device",
                    &[("device", &device)],
                )
                .inc();
        }
        (t.as_secs(), saved)
    }
}

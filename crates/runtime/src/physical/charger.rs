//! The charger: simulated cost attribution for operator execution.

use pspp_accel::kernels::{BitonicSorter, Gemm, HashPartitioner, StreamFilter};
use pspp_accel::{AcceleratorFleet, CostLedger, KernelClass, SimDuration};
use pspp_common::DeviceKind;
use pspp_ir::{NodeId, Operator};
use pspp_telemetry::MetricsRegistry;

/// Owns ledger/kernel cost attribution: which kernel class an operator
/// maps to, which device profile actually serves it, and the posted
/// compute + transfer + energy charges.
#[derive(Debug, Clone, Copy)]
pub struct Charger<'a> {
    fleet: &'a AcceleratorFleet,
    /// Metrics sink for kernel-charge counters; borrowed so the charger
    /// stays `Copy`.
    metrics: Option<&'a MetricsRegistry>,
}

impl<'a> Charger<'a> {
    /// A charger over `fleet`.
    pub fn new(fleet: &'a AcceleratorFleet) -> Self {
        Charger {
            fleet,
            metrics: None,
        }
    }

    /// Counts kernel charges per serving device into `metrics`.
    pub fn with_metrics(mut self, metrics: Option<&'a MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The accelerator kernel class executing `op`.
    pub fn kernel_for(op: &Operator) -> KernelClass {
        match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => KernelClass::Sort,
            Operator::HashJoin { .. } => KernelClass::HashPartition,
            Operator::GroupBy { .. }
            | Operator::TsWindow { .. }
            | Operator::StreamWindow { .. } => KernelClass::Aggregate,
            Operator::GraphMatch { .. } => KernelClass::GraphTraverse,
            Operator::TrainMlp { .. } => KernelClass::Gemm,
            Operator::Predict => KernelClass::Gemv,
            Operator::KMeansCluster { .. } => KernelClass::KMeans,
            _ => KernelClass::FilterProject,
        }
    }

    /// Whether `op`'s cost is accounted by the ML engine itself (its
    /// kernels post their own `mlengine.*` events while running).
    pub fn is_ml_op(op: &Operator) -> bool {
        matches!(
            op,
            Operator::TrainMlp { .. } | Operator::Predict | Operator::KMeansCluster { .. }
        )
    }

    /// The ML engine's busy seconds already posted to `ledger` (the
    /// execution cost of an ML operator run against a node-scoped
    /// ledger).
    pub fn ml_seconds(ledger: &CostLedger) -> f64 {
        ledger.busy_for("mlengine").as_secs()
    }

    /// Posts the simulated execution cost of `op` to `ledger` and
    /// returns its seconds.
    ///
    /// Falls back to the host profile when the annotated device does not
    /// support (or has zero efficiency for) the operator's kernel class;
    /// attached accelerators additionally pay their transfer cost.
    pub fn charge(
        &self,
        ledger: &CostLedger,
        op: &Operator,
        device: DeviceKind,
        rows: u64,
        bytes: u64,
        node: NodeId,
    ) -> f64 {
        let kernel = Self::kernel_for(op);
        let profile = match self.fleet.profile(device) {
            Some(p) if p.supports(kernel) && p.efficiency(kernel) > 0.0 => p,
            _ => self.fleet.host(),
        };
        let cycles = match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => {
                BitonicSorter::cycles(profile, rows)
            }
            Operator::HashJoin { .. } | Operator::GroupBy { .. } => {
                HashPartitioner::cycles(profile, rows)
            }
            Operator::Predict => Gemm::cycles(profile, rows, 32, 1),
            _ => StreamFilter::cycles(profile, rows, bytes),
        };
        let mut t =
            SimDuration::from_secs(profile.cycles_to_s(cycles + profile.launch_overhead_cycles));
        if let Some(attached) = self.fleet.device(profile.kind()) {
            let transfer_bytes = match op {
                Operator::Sort { .. } | Operator::SortMergeJoin { .. } => rows * 16,
                _ => bytes,
            };
            t += attached.transfer_cost(transfer_bytes);
        }
        ledger.post(
            format!("executor.{}@{node}", op.name()),
            profile.kind(),
            pspp_accel::EventKind::Compute,
            bytes,
            t,
            profile.energy_j(t.as_secs()),
        );
        if let Some(metrics) = self.metrics {
            let device = format!("{:?}", profile.kind());
            metrics
                .counter(
                    "pspp_kernel_charges_total",
                    "Operator kernel charges by serving device",
                    &[("device", &device)],
                )
                .inc();
        }
        t.as_secs()
    }
}

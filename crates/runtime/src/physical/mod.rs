//! The physical execution layer: engines and accelerators as
//! interchangeable execution substrates behind one interface (§IV).
//!
//! The layer splits operator execution into three orthogonal concerns,
//! each owned by one component:
//!
//! * [`EngineAdapter`] — *how* an operator runs. One adapter per engine
//!   kind (relational, key/value, timeseries, graph, array, text,
//!   stream) plus [`adapters::MlAdapter`] for the ML patterns; the
//!   [`AdapterRegistry`] dispatches each IR operator to the first
//!   adapter claiming it. Adding a backend is "implement one trait" —
//!   the executor never names a concrete engine.
//! * [`Placer`] — *where* an operator runs. Resolves the target engine
//!   (optimizer annotation → source table → data gravity) and stages
//!   the node's inputs there, invoking the data migrator once per
//!   foreign input and accounting the migration cost.
//! * [`Charger`] — *what* an operator costs. Posts simulated kernel
//!   cycles, transfer charges and energy to the run's [`CostLedger`].
//!
//! All three are `Sync`-clean: the executor runs every independent node
//! of a topological stage on its own thread (`std::thread::scope`),
//! giving each node a private scoped ledger and merging events back in
//! node order so parallel runs are bit-identical to sequential ones —
//! outputs, makespans, and the executor's ledger all match exactly.
//! The one deliberate exception: engine stores also post scan/operator
//! events to their *own* private ledgers (attached at store
//! construction, not managed by the executor); those logs stay
//! thread-safe but their event order reflects actual interleaving when
//! two nodes hit one store concurrently.

pub mod adapter;
pub mod adapters;
pub mod charger;
pub mod placer;

pub use adapter::{AdapterRegistry, EngineAdapter};
pub use charger::Charger;
pub use placer::Placer;

use pspp_accel::{AcceleratorFleet, CostLedger, DeviceProfile, KernelClass};
use pspp_common::ShardId;

/// Everything an adapter may consult while running one operator: the
/// accelerator fleet, the (task-scoped) cost ledger, whether device
/// offload is enabled for this run, and which shard replica the task
/// addresses.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    fleet: &'a AcceleratorFleet,
    ledger: &'a CostLedger,
    offload: bool,
    shard: ShardId,
}

impl<'a> ExecCtx<'a> {
    /// A context over `fleet`, posting to `ledger`, addressing shard 0.
    pub fn new(fleet: &'a AcceleratorFleet, ledger: &'a CostLedger, offload: bool) -> Self {
        ExecCtx {
            fleet,
            ledger,
            offload,
            shard: ShardId::ZERO,
        }
    }

    /// This context redirected at one shard replica — the executor
    /// builds one per scatter-gather task.
    pub fn at_shard(mut self, shard: ShardId) -> Self {
        self.shard = shard;
        self
    }

    /// The shard replica source operators should read from.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The accelerator fleet.
    pub fn fleet(&self) -> &'a AcceleratorFleet {
        self.fleet
    }

    /// The ledger this node's costs post to.
    pub fn ledger(&self) -> &'a CostLedger {
        self.ledger
    }

    /// Whether device annotations are honored (L2+).
    pub fn offload(&self) -> bool {
        self.offload
    }

    /// The device profile ML kernels train/score on: the fleet's best
    /// matrix engine under offload, otherwise the host.
    pub fn training_profile(&self) -> &'a DeviceProfile {
        if self.offload {
            self.fleet
                .best_device(KernelClass::Gemm)
                .unwrap_or_else(|| self.fleet.host())
        } else {
            self.fleet.host()
        }
    }
}

//! The placer: *where* each node executes, and what it costs to stage
//! the node's inputs there.

use std::collections::HashMap;

use pspp_accel::CostLedger;
use pspp_common::{Batch, EngineId, Error, PartitionLookup, PartitionSpec, Result, ShardId};
use pspp_ir::{NodeId, PlanOptions, Program, ProgramNode, ShardPlan};
use pspp_migrate::{MigrationPath, Migrator};
use pspp_telemetry::MetricsRegistry;

use crate::dataset::{Dataset, Payload};
use crate::registry::EngineRegistry;

/// What staging one node's inputs cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationBill {
    /// Simulated seconds spent migrating foreign inputs.
    pub seconds: f64,
    /// Number of inputs that crossed an engine boundary.
    pub migrated_inputs: usize,
}

/// Owns target-engine resolution and cross-engine migration accounting.
///
/// Placement policy, in priority order:
///
/// 1. the optimizer's engine annotation ([`pspp_ir::Annotations`]),
/// 2. the engine owning a source operator's table,
/// 3. data gravity — the engine already holding the first input.
///
/// When a node's input lives on a different engine than the resolved
/// target, the placer invokes the migrator exactly once for that input,
/// charging the transfer to its ledger and rehoming the dataset.
#[derive(Debug, Clone)]
pub struct Placer {
    migrator: Migrator,
    path: MigrationPath,
    metrics: Option<MetricsRegistry>,
}

impl Placer {
    /// A placer migrating over `path` with `migrator`.
    pub fn new(migrator: Migrator, path: MigrationPath) -> Self {
        Placer {
            migrator,
            path,
            metrics: None,
        }
    }

    /// Records per-input migration counts and simulated durations into
    /// `metrics`. Histogram observations are commutative, so recording
    /// from parallel executor workers stays deterministic.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The migration path cross-engine edges use.
    pub fn path(&self) -> MigrationPath {
        self.path
    }

    /// This placer with a different migration path.
    pub fn with_path(mut self, path: MigrationPath) -> Self {
        self.path = path;
        self
    }

    /// A copy of this placer posting migration costs to `ledger` —
    /// executor workers scope one per node so parallel stages stay
    /// deterministic.
    pub fn scoped(&self, ledger: CostLedger) -> Placer {
        Placer {
            migrator: self.migrator.clone().with_ledger(ledger),
            path: self.path,
            metrics: self.metrics.clone(),
        }
    }

    /// The engine `node` executes on: its annotation, its source table's
    /// engine, or the engine already holding its first input.
    pub fn target_engine(
        &self,
        node: &ProgramNode,
        results: &HashMap<NodeId, Dataset>,
    ) -> Option<EngineId> {
        match node.inputs.first().and_then(|i| results.get(i)) {
            Some(d) => Self::target_engine_of(node, std::slice::from_ref(d)),
            None => Self::target_engine_of(node, &[]),
        }
    }

    /// [`Placer::target_engine`] over already-resolved input datasets —
    /// the form the executor uses, where a colocated task's inputs are
    /// per-shard partials rather than entries in the results map.
    /// Priority: optimizer annotation, then the source table's engine,
    /// then data gravity (the engine already holding the first input,
    /// so cross-engine joins pay migration at every optimization
    /// level).
    pub fn target_engine_of(node: &ProgramNode, inputs: &[Dataset]) -> Option<EngineId> {
        if let Some(e) = &node.annotations.engine {
            return Some(e.clone());
        }
        if let Some(t) = node.op.source_table() {
            return Some(t.engine.clone());
        }
        inputs.first().map(|d| d.location.clone())
    }

    /// The planning-time distribution pass: annotates every node of
    /// `program` with its output distribution and scatter set (see
    /// [`ShardPlan::plan`] for the propagation lattice), validating
    /// partitioned source tables against the deployed `registry`.
    /// `catalog` supplies planning-time partition declarations (the
    /// frontend `Catalog` implements [`PartitionLookup`]); the
    /// registry's own specs — the runtime truth after any `reshard` —
    /// take precedence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] when a partitioned table no
    /// longer exists on its engine, [`Error::Invalid`] when its engine
    /// is not relational or under-replicated, and
    /// [`Error::EmptyShardSet`] for zero-shard specs.
    pub fn plan_distribution(
        program: &Program,
        catalog: &dyn PartitionLookup,
        registry: &EngineRegistry,
    ) -> Result<ShardPlan> {
        Self::plan_distribution_opts(program, catalog, registry, PlanOptions::default())
    }

    /// [`Placer::plan_distribution`] with the planning switches
    /// explicit: `PlanOptions::gathered()` reverts every non-source
    /// node to a gather (the PR-3 baseline E18 compares against), and
    /// `exchange: false` alone reverts only the shuffle/merge-partials
    /// exchanges (the gathered baseline E19 compares against).
    ///
    /// # Errors
    ///
    /// See [`Placer::plan_distribution`].
    pub fn plan_distribution_opts(
        program: &Program,
        catalog: &dyn PartitionLookup,
        registry: &EngineRegistry,
        options: PlanOptions,
    ) -> Result<ShardPlan> {
        Self::plan_distribution_copies(program, catalog, registry, options, |_| false)
    }

    /// [`Placer::plan_distribution_opts`] consulting `copy_of` for
    /// materialized repartitions: a `ShuffleHash` edge whose
    /// [`pspp_ir::shuffle_copy_key`] the predicate accepts plans as a
    /// copy-served exchange (see [`ShardPlan::plan_with_copies`]).
    ///
    /// # Errors
    ///
    /// See [`Placer::plan_distribution`].
    pub fn plan_distribution_copies(
        program: &Program,
        catalog: &dyn PartitionLookup,
        registry: &EngineRegistry,
        options: PlanOptions,
        copy_of: impl Fn(&pspp_common::CopyKey) -> bool,
    ) -> Result<ShardPlan> {
        let spec_of = |t: &pspp_common::TableRef| {
            registry
                .partition(t)
                .or_else(|| catalog.partition_spec(t))
                .cloned()
        };
        // Deployment validation per partitioned source: the table must
        // still exist on a relational engine with enough replicas.
        for node in program.nodes() {
            let Some(table) = node.op.source_table() else {
                continue;
            };
            let Some(spec) = spec_of(table) else {
                continue;
            };
            registry.relational(&table.engine)?.table(&table.name)?;
            Self::scatter_for(&spec, registry.shard_count(&table.engine))?;
        }
        ShardPlan::plan_with_copies(program, spec_of, copy_of, options)
    }

    /// The shard replicas `node` must visit: the partition spec's
    /// scatter set for a partitioned source table, otherwise
    /// `[ShardId::ZERO]` (unsharded work). The scatter decision follows
    /// the table's *physical* home — source reads always hit
    /// `table.engine`'s replicas, so an optimizer annotation diverting
    /// the node elsewhere changes cost attribution and output routing,
    /// never the scatter width (reading one replica of a distributed
    /// table would silently drop rows). Filters fan out with their
    /// scan via L1 predicate pushdown — a pushed-down predicate rides
    /// inside the sharded `Scan`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] when the partitioned table no
    /// longer exists on its engine, [`Error::Invalid`] when the table's
    /// engine is not relational (kind mismatch) or under-replicated,
    /// and [`Error::EmptyShardSet`] when the spec yields zero shards.
    pub fn scatter_shards(
        &self,
        node: &ProgramNode,
        registry: &EngineRegistry,
    ) -> Result<Vec<ShardId>> {
        let Some(table) = node.op.source_table() else {
            return Ok(vec![ShardId::ZERO]);
        };
        let Some(spec) = registry.partition(table) else {
            return Ok(vec![ShardId::ZERO]);
        };
        // Partitioned tables must resolve on a relational engine and
        // still exist there (typed kind-mismatch / unknown-table paths).
        registry.relational(&table.engine)?.table(&table.name)?;
        Self::scatter_for(spec, registry.shard_count(&table.engine))
    }

    /// The scatter set of `spec` against an engine deployed with
    /// `replicas` shard replicas.
    ///
    /// Replicated specs only ever *read* one replica (and broadcast
    /// joins read the gathered copy), so any deployment with at least
    /// one replica serves them — a `replicated x 8` table on a 2-replica
    /// engine is fine, where a hash/range spec needs every shard
    /// deployed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyShardSet`] for zero-shard specs and
    /// [`Error::Invalid`] when a hash/range spec needs more replicas
    /// than are deployed.
    pub fn scatter_for(spec: &PartitionSpec, replicas: usize) -> Result<Vec<ShardId>> {
        let shards = spec.scatter_shards();
        if shards.is_empty() {
            return Err(Error::EmptyShardSet(format!(
                "partition spec {spec} routes to no shards"
            )));
        }
        let needed = match spec {
            PartitionSpec::Replicated { .. } => 1,
            _ => spec.shard_count(),
        };
        if needed > replicas {
            return Err(Error::Invalid(format!(
                "partition spec {spec} needs {needed} replicas, engine has {replicas}"
            )));
        }
        Ok(shards)
    }

    /// Gathers `node`'s inputs from `results`, migrating every input
    /// located on a different engine than `target` (exactly one
    /// migrator invocation per foreign input).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] when an input is missing and
    /// [`Error::Migration`] when the migrator fails.
    pub fn stage_inputs(
        &self,
        node: &ProgramNode,
        target: Option<&EngineId>,
        results: &HashMap<NodeId, Dataset>,
        registry: &EngineRegistry,
    ) -> Result<(Vec<Dataset>, MigrationBill)> {
        let inputs = node
            .inputs
            .iter()
            .map(|i| {
                results
                    .get(i)
                    .cloned()
                    .ok_or_else(|| Error::Execution(format!("missing input for {}", node.id)))
            })
            .collect::<Result<Vec<_>>>()?;
        self.stage_datasets(inputs, target, registry)
    }

    /// [`Placer::stage_inputs`] over already-resolved datasets: the
    /// executor passes per-shard partials here for colocated tasks, so
    /// each shard's foreign partial pays exactly one migrator trip.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Migration`] when the migrator fails.
    pub fn stage_datasets(
        &self,
        inputs: Vec<Dataset>,
        target: Option<&EngineId>,
        registry: &EngineRegistry,
    ) -> Result<(Vec<Dataset>, MigrationBill)> {
        let mut staged = Vec::with_capacity(inputs.len());
        let mut bill = MigrationBill::default();
        for mut d in inputs {
            if let (Some(target), Payload::Rows { schema, rows }) = (target, &d.payload) {
                if d.location != *target && !rows.is_empty() {
                    let to_model = registry
                        .get(target)
                        .map(|e| e.kind().native_model())
                        .unwrap_or(d.model);
                    let batch = Batch::from_rows(schema, rows.clone()).map_err(|e| {
                        Error::Migration(format!("cannot batch rows for migration: {e}"))
                    })?;
                    let (rows2, report) = self
                        .migrator
                        .migrate(&batch, self.path, d.model, to_model)?;
                    bill.seconds += report.total.as_secs();
                    bill.migrated_inputs += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics
                            .counter(
                                "pspp_migrations_total",
                                "Inputs migrated across engine boundaries",
                                &[],
                            )
                            .inc();
                        metrics
                            .histogram(
                                "pspp_migration_seconds",
                                "Simulated seconds per cross-engine input migration",
                                &[],
                            )
                            .observe_seconds(report.total.as_secs());
                    }
                    d = Dataset::rows(schema.clone(), rows2, to_model, target.clone());
                }
            }
            staged.push(d);
        }
        Ok((staged, bill))
    }
}

impl Default for Placer {
    fn default() -> Self {
        Placer::new(Migrator::new(), MigrationPath::BinaryPipe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::TableRef;
    use pspp_common::{row, DataModel, DataType, Schema};
    use pspp_ir::{Operator, Program};
    use pspp_relstore::RelationalStore;

    use crate::registry::EngineInstance;

    fn two_engine_registry() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        for name in ["db1", "db2"] {
            let mut db = RelationalStore::new(name);
            db.create_table("t", Schema::new(vec![("k", DataType::Int)]))
                .unwrap();
            db.insert("t", (0..50).map(|i| row![i as i64]).collect())
                .unwrap();
            r.register(EngineId::new(name), EngineInstance::Relational(db))
                .unwrap();
        }
        r
    }

    /// A join program over two engines; returns (program, join node id).
    fn join_program() -> (Program, pspp_ir::NodeId) {
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "t")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "t")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "k".into(),
                right_on: "k".into(),
            },
            vec![a, b],
            "sql",
        );
        (p, j)
    }

    fn dataset_at(engine: &str, n: i64) -> Dataset {
        Dataset::rows(
            Schema::new(vec![("k", DataType::Int)]),
            (0..n).map(|i| row![i]).collect(),
            DataModel::Relational,
            EngineId::new(engine),
        )
    }

    #[test]
    fn two_engine_join_migrates_exactly_the_foreign_input() {
        let (p, j) = join_program();
        let registry = two_engine_registry();
        let ledger = CostLedger::new();
        let placer = Placer::default().scoped(ledger.clone());

        let mut results = HashMap::new();
        results.insert(p.node(j).inputs[0], dataset_at("db1", 50));
        results.insert(p.node(j).inputs[1], dataset_at("db2", 50));

        // Annotated target db1: only the db2 input is foreign.
        let mut node = p.node(j).clone();
        node.annotations.engine = Some(EngineId::new("db1"));
        let target = placer.target_engine(&node, &results);
        assert_eq!(target, Some(EngineId::new("db1")));
        let (inputs, bill) = placer
            .stage_inputs(&node, target.as_ref(), &results, &registry)
            .unwrap();
        assert_eq!(bill.migrated_inputs, 1, "exactly one foreign input");
        assert!(bill.seconds > 0.0);
        assert!(inputs.iter().all(|d| d.location == EngineId::new("db1")));
        let transfers = ledger
            .events()
            .iter()
            .filter(|e| e.component == "migrate.transfer")
            .count();
        assert_eq!(transfers, 1, "one migrator invocation per foreign input");
    }

    #[test]
    fn data_gravity_migrates_only_the_second_input() {
        let (p, j) = join_program();
        let registry = two_engine_registry();
        let placer = Placer::default().scoped(CostLedger::new());

        let mut results = HashMap::new();
        results.insert(p.node(j).inputs[0], dataset_at("db1", 50));
        results.insert(p.node(j).inputs[1], dataset_at("db2", 50));

        // No annotation: data gravity pulls the join to the first
        // input's engine, so the second input pays exactly one trip.
        let node = p.node(j);
        let target = placer.target_engine(node, &results);
        assert_eq!(target, Some(EngineId::new("db1")));
        let (_, bill) = placer
            .stage_inputs(node, target.as_ref(), &results, &registry)
            .unwrap();
        assert_eq!(bill.migrated_inputs, 1);
    }

    #[test]
    fn local_inputs_pay_no_migration() {
        let (p, j) = join_program();
        let registry = two_engine_registry();
        let ledger = CostLedger::new();
        let placer = Placer::default().scoped(ledger.clone());

        let mut results = HashMap::new();
        results.insert(p.node(j).inputs[0], dataset_at("db1", 50));
        results.insert(p.node(j).inputs[1], dataset_at("db1", 50));

        let node = p.node(j);
        let target = placer.target_engine(node, &results);
        let (_, bill) = placer
            .stage_inputs(node, target.as_ref(), &results, &registry)
            .unwrap();
        assert_eq!(bill, MigrationBill::default());
        assert!(ledger.is_empty());
    }

    #[test]
    fn stage_inputs_missing_input_is_typed_not_a_panic() {
        let (p, j) = join_program();
        let registry = two_engine_registry();
        let placer = Placer::default();
        // No results at all: the join's inputs are unknown.
        let err = placer
            .stage_inputs(p.node(j), None, &HashMap::new(), &registry)
            .unwrap_err();
        assert!(matches!(err, Error::Execution(_)), "got {err:?}");
    }

    #[test]
    fn scatter_routes_partitioned_scans_and_defaults_to_shard_zero() {
        let mut registry = two_engine_registry();
        registry
            .reshard(
                &TableRef::new("db1", "t"),
                pspp_common::PartitionSpec::hash("k", 2),
            )
            .unwrap();
        let placer = Placer::default();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "t")), "sql");
        assert_eq!(
            placer.scatter_shards(p.node(s), &registry).unwrap(),
            vec![pspp_common::ShardId(0), pspp_common::ShardId(1)]
        );
        // Unpartitioned table: single-shard plan.
        let s2 = p.add_source(Operator::scan(TableRef::new("db2", "t")), "sql");
        assert_eq!(
            placer.scatter_shards(p.node(s2), &registry).unwrap(),
            vec![pspp_common::ShardId::ZERO]
        );
        // An annotation diverting the node elsewhere must NOT narrow
        // the scatter: the read still hits every replica of the
        // table's physical home (one replica holds a fraction of the
        // rows).
        let mut diverted = p.node(s).clone();
        diverted.annotations.engine = Some(EngineId::new("db2"));
        assert_eq!(
            placer.scatter_shards(&diverted, &registry).unwrap(),
            vec![pspp_common::ShardId(0), pspp_common::ShardId(1)]
        );
    }

    #[test]
    fn scatter_unknown_table_is_typed() {
        let mut registry = two_engine_registry();
        registry
            .set_partition(
                TableRef::new("db1", "ghost"),
                pspp_common::PartitionSpec::hash("k", 2),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "ghost")), "sql");
        let err = Placer::default()
            .scatter_shards(p.node(s), &registry)
            .unwrap_err();
        assert!(matches!(err, Error::TableNotFound(_)), "got {err:?}");
    }

    #[test]
    fn scatter_kind_mismatch_is_typed() {
        let mut registry = two_engine_registry();
        registry
            .register(
                EngineId::new("kv"),
                crate::registry::EngineInstance::KeyValue(pspp_kvstore::KvStore::new("kv")),
            )
            .unwrap();
        registry
            .set_partition(
                TableRef::new("kv", "t"),
                pspp_common::PartitionSpec::hash("k", 2),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("kv", "t")), "sql");
        let err = Placer::default()
            .scatter_shards(p.node(s), &registry)
            .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "got {err:?}");
    }

    #[test]
    fn scatter_empty_shard_set_is_typed() {
        let err = Placer::scatter_for(&pspp_common::PartitionSpec::hash("k", 0), 4).unwrap_err();
        assert!(matches!(err, Error::EmptyShardSet(_)), "got {err:?}");
        let err = Placer::scatter_for(&pspp_common::PartitionSpec::replicated(0), 4).unwrap_err();
        assert!(matches!(err, Error::EmptyShardSet(_)), "got {err:?}");
        // Under-replicated engine: typed, not a panic.
        let err = Placer::scatter_for(&pspp_common::PartitionSpec::hash("k", 8), 2).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "got {err:?}");
    }

    #[test]
    fn replicated_specs_scatter_from_any_deployed_replica() {
        // Regression: a replicated table only ever reads one replica
        // (and serves broadcast joins from its full copy), so a spec
        // declaring more copies than the engine deploys must not fail
        // the scatter the way an under-replicated hash spec does.
        let shards = Placer::scatter_for(&pspp_common::PartitionSpec::replicated(8), 2).unwrap();
        assert_eq!(shards, vec![ShardId::ZERO]);
        let shards = Placer::scatter_for(&pspp_common::PartitionSpec::replicated(2), 2).unwrap();
        assert_eq!(shards, vec![ShardId::ZERO]);
    }

    #[test]
    fn plan_distribution_validates_the_deployment() {
        let mut registry = two_engine_registry();
        registry
            .reshard(
                &TableRef::new("db1", "t"),
                pspp_common::PartitionSpec::hash("k", 2),
            )
            .unwrap();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "t")), "sql");
        p.mark_output(s);
        let plan = Placer::plan_distribution(&p, &registry, &registry).unwrap();
        assert_eq!(plan.node(s).scatter_width(), 2);
        assert!(plan.node(s).distribution.is_partitioned());

        // Unknown partitioned table: typed, not a panic.
        registry
            .set_partition(
                TableRef::new("db1", "ghost"),
                pspp_common::PartitionSpec::hash("k", 2),
            )
            .unwrap();
        let mut p2 = Program::new();
        let g = p2.add_source(Operator::scan(TableRef::new("db1", "ghost")), "sql");
        p2.mark_output(g);
        let err = Placer::plan_distribution(&p2, &registry, &registry).unwrap_err();
        assert!(matches!(err, Error::TableNotFound(_)), "got {err:?}");
    }

    #[test]
    fn annotation_beats_source_table_and_gravity() {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "t")), "sql");
        let mut node = p.node(s).clone();
        assert_eq!(
            Placer::default().target_engine(&node, &HashMap::new()),
            Some(EngineId::new("db1")),
            "source table engine wins without an annotation"
        );
        node.annotations.engine = Some(EngineId::new("db2"));
        assert_eq!(
            Placer::default().target_engine(&node, &HashMap::new()),
            Some(EngineId::new("db2")),
            "optimizer annotation wins"
        );
    }
}

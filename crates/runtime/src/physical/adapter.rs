//! The engine-adapter boundary: BigDAWG-style "shims" between the IR's
//! operator vocabulary and each engine's native execution surface.

use std::fmt;
use std::sync::Arc;

use pspp_common::{EngineId, Error, Result};
use pspp_ir::Operator;

use crate::dataset::Dataset;
use crate::physical::ExecCtx;
use crate::registry::EngineRegistry;

/// Executes the slice of the IR operator vocabulary one engine kind
/// understands.
///
/// Implementations must be stateless or internally synchronized
/// (`Send + Sync`): the executor calls `run` from multiple scheduler
/// threads at once when a stage has independent nodes.
pub trait EngineAdapter: Send + Sync + fmt::Debug {
    /// Short adapter name for diagnostics (e.g. `"relational"`).
    fn name(&self) -> &'static str;

    /// Whether this adapter executes `op`.
    fn supports(&self, op: &Operator) -> bool;

    /// Runs `op` over `inputs`.
    ///
    /// `target` is the engine the [`crate::physical::Placer`] resolved
    /// for the node (inputs have already been migrated there);
    /// `registry` resolves engine ids to live instances; `ctx` carries
    /// the fleet and the node-scoped cost ledger.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] (or engine-specific errors) when the
    /// operator cannot run.
    fn run(
        &self,
        op: &Operator,
        inputs: &[Dataset],
        target: Option<&EngineId>,
        registry: &EngineRegistry,
        ctx: &ExecCtx<'_>,
    ) -> Result<Dataset>;
}

/// The set of installed adapters; dispatches operators to the first
/// adapter that claims them.
///
/// Cloning shares the installed adapters (they are `Arc`ed), so a
/// configured registry is cheap to hand to every executor.
#[derive(Debug, Clone)]
pub struct AdapterRegistry {
    adapters: Vec<Arc<dyn EngineAdapter>>,
}

impl AdapterRegistry {
    /// An empty registry (no operator will execute).
    pub fn empty() -> Self {
        AdapterRegistry {
            adapters: Vec::new(),
        }
    }

    /// The standard install: one adapter per engine kind plus the ML
    /// adapter.
    pub fn standard() -> Self {
        use crate::physical::adapters::{
            ArrayAdapter, GraphAdapter, KvAdapter, MlAdapter, RelationalAdapter, StreamAdapter,
            TextAdapter, TimeseriesAdapter,
        };
        let mut r = AdapterRegistry::empty();
        r.install(Arc::new(RelationalAdapter));
        r.install(Arc::new(KvAdapter));
        r.install(Arc::new(TimeseriesAdapter));
        r.install(Arc::new(GraphAdapter));
        r.install(Arc::new(ArrayAdapter));
        r.install(Arc::new(TextAdapter));
        r.install(Arc::new(StreamAdapter));
        r.install(Arc::new(MlAdapter));
        r
    }

    /// Installs an adapter with higher precedence than the existing
    /// ones, so extensions can override the standard set.
    pub fn install(&mut self, adapter: Arc<dyn EngineAdapter>) {
        self.adapters.insert(0, adapter);
    }

    /// The installed adapters, in dispatch order.
    pub fn adapters(&self) -> &[Arc<dyn EngineAdapter>] {
        &self.adapters
    }

    /// The adapter that executes `op`, if any claims it.
    pub fn adapter_for(&self, op: &Operator) -> Option<&dyn EngineAdapter> {
        self.adapters
            .iter()
            .find(|a| a.supports(op))
            .map(Arc::as_ref)
    }

    /// Dispatches one operator through its adapter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] when no installed adapter claims the
    /// operator, and propagates adapter errors.
    pub fn dispatch(
        &self,
        op: &Operator,
        inputs: &[Dataset],
        target: Option<&EngineId>,
        registry: &EngineRegistry,
        ctx: &ExecCtx<'_>,
    ) -> Result<Dataset> {
        match self.adapter_for(op) {
            Some(adapter) => adapter.run(op, inputs, target, registry, ctx),
            None => Err(Error::Execution(match op {
                Operator::Custom { name } => format!("no adapter for custom op {name}"),
                other => format!("no adapter for op {}", other.name()),
            })),
        }
    }
}

impl Default for AdapterRegistry {
    fn default() -> Self {
        AdapterRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::TableRef;
    use pspp_ir::{AggFn, AggSpec, SortSpec, TextSearchMode, TsAgg};

    /// One instance of every IR operator variant.
    fn all_operators() -> Vec<Operator> {
        let t = || TableRef::new("e", "t");
        vec![
            Operator::scan(t()),
            Operator::Filter {
                predicate: pspp_common::Predicate::True,
            },
            Operator::Project {
                columns: vec!["a".into()],
            },
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "a".into(),
                    ascending: true,
                }],
            },
            Operator::HashJoin {
                left_on: "a".into(),
                right_on: "b".into(),
            },
            Operator::SortMergeJoin {
                left_on: "a".into(),
                right_on: "b".into(),
            },
            Operator::GroupBy {
                keys: vec!["a".into()],
                aggs: vec![AggSpec {
                    func: AggFn::Count,
                    column: "*".into(),
                    output: "n".into(),
                }],
            },
            Operator::Limit { n: 1 },
            Operator::KvPrefixScan {
                table: t(),
                prefix: "k".into(),
            },
            Operator::TsRange {
                table: t(),
                lo: 0,
                hi: 10,
            },
            Operator::TsWindow {
                table: t(),
                lo: 0,
                hi: 10,
                width: 2,
                agg: TsAgg::Mean,
            },
            Operator::GraphMatch {
                table: t(),
                start_label: "A".into(),
                steps: vec![(None, None)],
            },
            Operator::TextSearch {
                table: t(),
                terms: vec!["x".into()],
                mode: TextSearchMode::Any,
            },
            Operator::StreamWindow {
                table: t(),
                lo: 0,
                hi: 10,
                width: 2,
                column: 0,
                agg: TsAgg::Sum,
            },
            Operator::TrainMlp {
                label_column: "y".into(),
                hidden: vec![4],
                epochs: 1,
                batch_size: 8,
                learning_rate: 0.1,
            },
            Operator::Predict,
            Operator::KMeansCluster { k: 2, max_iters: 5 },
            Operator::Custom { name: "x".into() },
        ]
    }

    #[test]
    fn dispatch_covers_every_operator_variant() {
        let registry = AdapterRegistry::standard();
        for op in all_operators() {
            match &op {
                // The escape hatch stays unclaimed until an extension
                // installs an adapter for it.
                Operator::Custom { .. } => {
                    assert!(registry.adapter_for(&op).is_none(), "{}", op.name());
                }
                _ => {
                    let adapter = registry
                        .adapter_for(&op)
                        .unwrap_or_else(|| panic!("no adapter claims {}", op.name()));
                    assert!(adapter.supports(&op));
                }
            }
        }
    }

    #[test]
    fn dispatch_routes_operators_to_their_engine_family() {
        let registry = AdapterRegistry::standard();
        let expect = |op: &Operator, name: &str| {
            assert_eq!(
                registry.adapter_for(op).unwrap().name(),
                name,
                "{}",
                op.name()
            );
        };
        for op in all_operators() {
            match &op {
                Operator::Scan { .. }
                | Operator::Filter { .. }
                | Operator::Project { .. }
                | Operator::Sort { .. }
                | Operator::HashJoin { .. }
                | Operator::SortMergeJoin { .. }
                | Operator::GroupBy { .. }
                | Operator::Limit { .. } => expect(&op, "relational"),
                Operator::KvPrefixScan { .. } => expect(&op, "kv"),
                Operator::TsRange { .. } | Operator::TsWindow { .. } => expect(&op, "timeseries"),
                Operator::GraphMatch { .. } => expect(&op, "graph"),
                Operator::TextSearch { .. } => expect(&op, "text"),
                Operator::StreamWindow { .. } => expect(&op, "stream"),
                Operator::TrainMlp { .. } | Operator::Predict | Operator::KMeansCluster { .. } => {
                    expect(&op, "ml")
                }
                Operator::Custom { .. } => {}
            }
        }
    }

    #[test]
    fn exactly_one_standard_adapter_claims_each_operator() {
        let registry = AdapterRegistry::standard();
        for op in all_operators() {
            let claimants: Vec<&str> = registry
                .adapters()
                .iter()
                .filter(|a| a.supports(&op))
                .map(|a| a.name())
                .collect();
            assert!(
                claimants.len() <= 1,
                "{} claimed by {claimants:?}",
                op.name()
            );
        }
    }

    #[test]
    fn installed_adapters_take_precedence() {
        #[derive(Debug)]
        struct ClaimAll;
        impl EngineAdapter for ClaimAll {
            fn name(&self) -> &'static str {
                "claim-all"
            }
            fn supports(&self, _op: &Operator) -> bool {
                true
            }
            fn run(
                &self,
                _op: &Operator,
                inputs: &[Dataset],
                _target: Option<&EngineId>,
                _registry: &EngineRegistry,
                _ctx: &ExecCtx<'_>,
            ) -> Result<Dataset> {
                Ok(inputs[0].clone())
            }
        }
        let mut registry = AdapterRegistry::standard();
        registry.install(Arc::new(ClaimAll));
        let scan = Operator::scan(TableRef::new("e", "t"));
        assert_eq!(registry.adapter_for(&scan).unwrap().name(), "claim-all");
    }
}

//! Cardinality estimation, per-device operator costing, and placement
//! (§IV-B.3: "the core must decide where each task should be assigned").
//!
//! The cost model reuses the accelerator kernel cycle models, so the
//! optimizer's predictions and the executor's charges come from one
//! source of truth; prediction error then comes only from cardinality
//! estimation (measured by experiment E15).

use std::collections::{BTreeMap, HashMap};

use pspp_accel::exchange::shuffle_bill;
use pspp_accel::kernels::{BitonicSorter, Gemm, HashPartitioner, StreamFilter};
use pspp_accel::{
    AcceleratorFleet, DeploymentMode, Interconnect, KernelClass, LogCa, SimDuration,
};
use pspp_common::{
    DataModel, DeviceKind, MaterializedRepartitions, PartitionSpec, Result, ShardId, TableRef,
};
use pspp_ir::{
    ExchangeCounts, ExchangeKind, FusedChain, FusionTag, NodeId, Operator, PlanOptions, Program,
    ShardPlan,
};

use crate::rewrite::resolve_fused;

/// Simulated per-shard bookkeeping cost of a shard-ordered gather
/// (task join + result splice), charged once per gathered partial.
const GATHER_OVERHEAD_S: f64 = 2e-6;

/// Base statistics for one stored dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Row (or element) count.
    pub rows: f64,
    /// Mean row payload bytes.
    pub row_bytes: f64,
}

impl Default for TableStats {
    fn default() -> Self {
        TableStats {
            rows: 10_000.0,
            row_bytes: 64.0,
        }
    }
}

/// The outcome of placement: per-node device/cost plus plan totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Estimated per-node execution seconds, indexed by node id.
    pub node_seconds: HashMap<NodeId, f64>,
    /// Estimated migration seconds across cross-engine edges.
    pub migration_seconds: f64,
    /// Estimated total (sequential) plan seconds.
    pub total_seconds: f64,
    /// Nodes offloaded to accelerators.
    pub offloaded: usize,
    /// Per-node scatter width from the distribution plan (1 =
    /// unsharded), so prediction-error analysis (E15) can attribute
    /// error to cardinality estimation vs distribution modeling.
    pub scatter_width: HashMap<NodeId, usize>,
    /// Exchange-edge totals of the priced plan, by kind — how many
    /// gathers, broadcasts, shuffles and partial merges the optimizer
    /// chose.
    pub exchanges: ExchangeCounts,
    /// Estimated seconds spent in repartitioning exchanges (shuffle
    /// routing and partial-state merges), included in `total_seconds`.
    pub exchange_seconds: f64,
    /// Per-(node, shard) device pick: which computing unit each shard
    /// replica of a fanned-out node runs on. The executor consumes
    /// these — it never re-derives a device — so on heterogeneous
    /// deployments the same node may run on a GPU at one shard and the
    /// host at another, and planned and executed assignments agree by
    /// construction.
    pub device_picks: HashMap<(NodeId, ShardId), DeviceKind>,
    /// Shard tasks that fell back to their host because the shard's
    /// fleet lacks the device the default fleet would have picked —
    /// the price of heterogeneity, surfaced rather than panicked over.
    pub host_fallbacks: usize,
    /// Device-resident fused chains formed by the fusion pass, in
    /// discovery order. [`pspp_ir::Annotations::shard_fusion`] tags
    /// index into this vector, so executed fusion (reported by the
    /// executor per task) can be asserted equal to the plan.
    pub fused_chains: Vec<FusedChain>,
    /// Total planned device-queue wait across contended slots,
    /// included in the affected nodes' critical paths.
    pub queue_wait_seconds: f64,
}

impl PlacementPlan {
    /// This plan's estimates in the shape `EXPLAIN ANALYZE` joins
    /// against executed traces (see
    /// [`pspp_telemetry::explain_analyze`]).
    pub fn planned_costs(&self) -> pspp_telemetry::PlannedCosts {
        pspp_telemetry::PlannedCosts {
            node_seconds: self.node_seconds.clone(),
            total_seconds: self.total_seconds,
            exchange_seconds: self.exchange_seconds,
            host_fallbacks: self.host_fallbacks,
        }
    }
}

/// The optimizer cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    fleet: AcceleratorFleet,
    /// Per-shard fleet overrides for heterogeneous clusters: a shard
    /// replica is priced against its own devices, falling back to the
    /// default `fleet` for shards without an override.
    shard_fleets: BTreeMap<ShardId, AcceleratorFleet>,
    stats: HashMap<TableRef, TableStats>,
    /// Partition specs of stored tables, mirroring the deployment
    /// catalog: the distribution plan prices sharded scans and
    /// colocated joins at `rows / shard_count` plus a gather term.
    partitions: HashMap<TableRef, PartitionSpec>,
    /// Whether the executor will run compatibly-partitioned joins
    /// colocated — must mirror the deployment's setting so the model
    /// prices the plan that actually runs.
    colocate: bool,
    /// Whether the executor will emit repartitioning exchanges
    /// (shuffled joins, partial-aggregate merges) — likewise mirrored.
    exchange: bool,
    /// The deployment's materialized-repartition store, when the
    /// executor runs with materialization on: shuffle edges with a
    /// live stored layout plan as copy-served and price at zero.
    repartitions: Option<MaterializedRepartitions>,
    /// Whether placement runs the device-resident kernel-fusion pass
    /// (on by default): adjacent same-device coprocessor picks form
    /// chains that pay the host link once at the head.
    fusion: bool,
    /// Cross-engine migration link.
    pub migration_link: Interconnect,
}

impl CostModel {
    /// Creates a model over a fleet and dataset statistics.
    pub fn new(fleet: AcceleratorFleet, stats: HashMap<TableRef, TableStats>) -> Self {
        CostModel {
            fleet,
            shard_fleets: BTreeMap::new(),
            stats,
            partitions: HashMap::new(),
            colocate: true,
            exchange: true,
            repartitions: None,
            fusion: true,
            migration_link: Interconnect::network_10g(),
        }
    }

    /// This model with the kernel-fusion pass on (default) or off —
    /// off prices every offloaded node in isolation, paying the host
    /// link per node (the pre-pipeline baseline E23 measures against).
    pub fn with_fusion(mut self, on: bool) -> Self {
        self.fusion = on;
        self
    }

    /// This model with the deployment's partition specs, enabling
    /// shard-aware placement costing.
    pub fn with_partitions(mut self, partitions: HashMap<TableRef, PartitionSpec>) -> Self {
        self.partitions = partitions;
        self
    }

    /// This model pricing colocated joins (default) or the gathered
    /// baseline — must match the executor's `colocated_joins` setting.
    pub fn with_colocation(mut self, on: bool) -> Self {
        self.colocate = on;
        self
    }

    /// This model pricing repartitioning exchanges (default) or the
    /// gathered baseline — must match the executor's `exchange`
    /// setting.
    pub fn with_exchange(mut self, on: bool) -> Self {
        self.exchange = on;
        self
    }

    /// This model consulting the deployment's materialized-repartition
    /// store — must mirror the executor's `materialize_repartitions`
    /// setting so plans price the copy-served exchanges that actually
    /// run.
    pub fn with_repartitions(mut self, repartitions: MaterializedRepartitions) -> Self {
        self.repartitions = Some(repartitions);
        self
    }

    /// This model with per-shard fleet overrides — placement prices
    /// each shard replica against that shard's own devices, mirroring
    /// `PolystoreBuilder::fleet_at`.
    pub fn with_shard_fleets(mut self, fleets: BTreeMap<ShardId, AcceleratorFleet>) -> Self {
        self.shard_fleets = fleets;
        self
    }

    /// The fleet used for estimates.
    pub fn fleet(&self) -> &AcceleratorFleet {
        &self.fleet
    }

    /// The fleet pricing work placed at `shard`: its override when one
    /// is registered, the default fleet otherwise.
    pub fn shard_fleet(&self, shard: ShardId) -> &AcceleratorFleet {
        self.shard_fleets.get(&shard).unwrap_or(&self.fleet)
    }

    /// Registers statistics for a dataset.
    pub fn set_stats(&mut self, table: TableRef, stats: TableStats) {
        self.stats.insert(table, stats);
    }

    /// Registers (or overrides) a table's partition spec.
    pub fn set_partition(&mut self, table: TableRef, spec: PartitionSpec) {
        self.partitions.insert(table, spec);
    }

    /// The distribution plan placement prices against — the same
    /// propagation pass the executor consumes.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::Semantic`] on cyclic programs and
    /// spec-validation errors for invalid partition declarations.
    pub fn shard_plan(&self, program: &Program) -> Result<ShardPlan> {
        ShardPlan::plan_with_copies(
            program,
            |t| self.partitions.get(t).cloned(),
            |k| self.repartitions.as_ref().is_some_and(|r| r.contains(k)),
            PlanOptions {
                colocate: self.colocate,
                exchange: self.colocate && self.exchange,
            },
        )
    }

    /// Estimated cost of the shard-ordered gather concatenating
    /// `width` partials totaling `rows` output rows: the merge splices
    /// row handles on the host (about a cycle per row across its
    /// lanes — the payloads themselves never move), plus per-shard
    /// task-join bookkeeping. Zero when nothing scatters.
    pub fn gather_cost(&self, width: usize, rows: f64) -> SimDuration {
        if width <= 1 {
            return SimDuration::from_secs(0.0);
        }
        let host = self.fleet.host();
        let splice = rows.max(0.0) / (host.clock_hz * host.lanes as f64);
        SimDuration::from_secs(splice + width as f64 * GATHER_OVERHEAD_S)
    }

    /// Kernel class an operator maps to, when offloadable.
    pub fn kernel_of(op: &Operator) -> Option<KernelClass> {
        Some(match op {
            Operator::Scan { .. } | Operator::Filter { .. } | Operator::KvPrefixScan { .. } => {
                KernelClass::FilterProject
            }
            Operator::Project { .. } | Operator::Limit { .. } => KernelClass::FilterProject,
            Operator::Sort { .. } => KernelClass::Sort,
            Operator::HashJoin { .. } => KernelClass::HashPartition,
            Operator::SortMergeJoin { .. } => KernelClass::Sort,
            Operator::GroupBy { .. }
            | Operator::TsWindow { .. }
            | Operator::StreamWindow { .. } => KernelClass::Aggregate,
            Operator::TsRange { .. } => KernelClass::FilterProject,
            Operator::GraphMatch { .. } => KernelClass::GraphTraverse,
            Operator::TextSearch { .. } => KernelClass::FilterProject,
            Operator::TrainMlp { .. } => KernelClass::Gemm,
            Operator::Predict => KernelClass::Gemv,
            Operator::KMeansCluster { .. } => KernelClass::KMeans,
            Operator::Custom { .. } => return None,
        })
    }

    /// Fills `est_rows`/`est_bytes` annotations in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::Semantic`] on cyclic programs.
    pub fn estimate_cardinalities(&self, program: &mut Program) -> Result<()> {
        let order = program.topo_order()?;
        for id in order {
            let node = program.node(id).clone();
            let input_est: Vec<(f64, f64)> = node
                .inputs
                .iter()
                .map(|&i| {
                    let n = program.node(resolve_fused(program, i));
                    (
                        n.annotations.est_rows.unwrap_or(1_000.0),
                        n.annotations.est_bytes.unwrap_or(64_000.0),
                    )
                })
                .collect();
            let (rows, bytes) = self.estimate_node(&node.op, &input_est);
            let ann = &mut program.node_mut(id).annotations;
            ann.est_rows = Some(rows);
            ann.est_bytes = Some(bytes);
        }
        Ok(())
    }

    fn estimate_node(&self, op: &Operator, inputs: &[(f64, f64)]) -> (f64, f64) {
        let stats_for = |t: &TableRef| self.stats.get(t).copied().unwrap_or_default();
        match op {
            Operator::Scan {
                table,
                predicate,
                projection,
            } => {
                let s = stats_for(table);
                let rows = (s.rows * predicate.selectivity()).max(1.0);
                let width = if projection.is_some() {
                    s.row_bytes * 0.5
                } else {
                    s.row_bytes
                };
                (rows, rows * width)
            }
            Operator::KvPrefixScan { table, .. } => {
                let s = stats_for(table);
                (s.rows * 0.1, s.rows * 0.1 * s.row_bytes)
            }
            Operator::TsRange { table, lo, hi } => {
                let s = stats_for(table);
                let frac = (((hi - lo) as f64) / 86_400.0).clamp(0.01, 1.0);
                (s.rows * frac, s.rows * frac * 16.0)
            }
            Operator::TsWindow { lo, hi, width, .. } => {
                let windows = (((hi - lo) / width.max(&1)) as f64).max(1.0);
                (windows, windows * 16.0)
            }
            Operator::StreamWindow { lo, hi, width, .. } => {
                let windows = (((hi - lo) / width.max(&1)) as f64).max(1.0);
                (windows, windows * 16.0)
            }
            Operator::GraphMatch { table, steps, .. } => {
                let s = stats_for(table);
                let fanout = 3.0f64.powi(steps.len() as i32);
                let rows = (s.rows * 0.1 * fanout).max(1.0);
                (rows, rows * 24.0)
            }
            Operator::TextSearch { table, mode, .. } => {
                let s = stats_for(table);
                let rows = match mode {
                    pspp_ir::TextSearchMode::Ranked(k) => (*k as f64).min(s.rows),
                    _ => s.rows * 0.1,
                };
                (rows, rows * 16.0)
            }
            Operator::Filter { predicate } => {
                let (r, b) = inputs[0];
                let sel = predicate.selectivity();
                (r * sel, b * sel)
            }
            Operator::Project { columns } => {
                let (r, b) = inputs[0];
                let frac = (columns.len() as f64 * 0.15).min(1.0);
                (r, b * frac)
            }
            Operator::Sort { .. } => inputs[0],
            Operator::HashJoin { .. } | Operator::SortMergeJoin { .. } => {
                let (lr, lb) = inputs[0];
                let (rr, rb) = inputs[1];
                let rows = (lr.max(rr) * 1.2).max(1.0);
                let width = (lb / lr.max(1.0)) + (rb / rr.max(1.0));
                (rows, rows * width)
            }
            Operator::GroupBy { .. } => {
                let (r, b) = inputs[0];
                ((r * 0.1).max(1.0), (b * 0.1).max(16.0))
            }
            Operator::Limit { n } => {
                let (r, b) = inputs[0];
                let rows = (*n as f64).min(r);
                (rows, b * rows / r.max(1.0))
            }
            Operator::TrainMlp { .. } => (1.0, 4096.0), // the model itself
            Operator::Predict => inputs[0],
            Operator::KMeansCluster { k, .. } => {
                let (r, _) = inputs[0];
                (r, r * 8.0 + *k as f64 * 64.0)
            }
            Operator::Custom { .. } => inputs.first().copied().unwrap_or((1.0, 64.0)),
        }
    }

    /// Estimated execution seconds of `op` on `device`, including the
    /// coprocessor transfer where applicable, on the default fleet.
    pub fn node_cost(
        &self,
        op: &Operator,
        device: DeviceKind,
        est_rows: f64,
        est_bytes: f64,
    ) -> Option<SimDuration> {
        Self::node_cost_on(&self.fleet, op, device, est_rows, est_bytes)
    }

    /// [`CostModel::node_cost`] against an explicit fleet — the form
    /// per-shard placement uses, since each shard replica is priced on
    /// its own devices.
    pub fn node_cost_on(
        fleet: &AcceleratorFleet,
        op: &Operator,
        device: DeviceKind,
        est_rows: f64,
        est_bytes: f64,
    ) -> Option<SimDuration> {
        let kernel = Self::kernel_of(op)?;
        let profile = fleet.profile(device)?;
        if !profile.supports(kernel) || profile.efficiency(kernel) <= 0.0 {
            return None;
        }
        let n = est_rows.max(1.0) as u64;
        let cycles = match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => {
                BitonicSorter::cycles(profile, n)
            }
            Operator::TrainMlp {
                hidden,
                epochs,
                batch_size: _,
                ..
            } => {
                // epochs × (forward + backward ≈ 6×) GEMM flops.
                let dim = (est_bytes / est_rows.max(1.0) / 8.0).max(4.0);
                let mut flops = 0.0;
                let mut prev = dim;
                for &h in hidden {
                    flops += 2.0 * est_rows * prev * h as f64;
                    prev = h as f64;
                }
                flops += 2.0 * est_rows * prev;
                flops *= *epochs as f64 * 3.0;
                let edge = (flops / 2.0).cbrt().max(8.0) as u64;
                Gemm::cycles(profile, edge, edge, edge)
            }
            Operator::Predict => Gemm::cycles(profile, n, 32, 1),
            Operator::KMeansCluster { k, max_iters } => {
                let dim = (est_bytes / est_rows.max(1.0) / 8.0).max(2.0);
                let flops = *max_iters as f64 * est_rows * *k as f64 * dim * 3.0;
                let eff = profile.efficiency(KernelClass::KMeans).max(1e-3);
                (flops / (profile.lanes as f64 * 2.0 * eff)).ceil() as u64
            }
            Operator::HashJoin { .. } | Operator::GroupBy { .. } => {
                HashPartitioner::cycles(profile, n)
            }
            _ => StreamFilter::cycles(profile, n, est_bytes.max(1.0) as u64),
        };
        let mut t =
            SimDuration::from_secs(profile.cycles_to_s(cycles + profile.launch_overhead_cycles));
        if let Some(attached) = fleet.device(device) {
            t += attached.transfer_cost(Self::transfer_bytes(op, est_rows, est_bytes));
        }
        Some(t)
    }

    /// Bytes `op` ships across the offload boundary at the given
    /// volume: sorting offload ships keys + row ids (16 B/row), not
    /// whole payloads (the host applies the returned permutation);
    /// everything else ships its payload.
    pub fn transfer_bytes(op: &Operator, est_rows: f64, est_bytes: f64) -> u64 {
        match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => est_rows.max(0.0) as u64 * 16,
            _ => est_bytes.max(0.0) as u64,
        }
    }

    /// The LogCA profitability model \[43\] for offloading `op` to
    /// `device` at the given **per-task** cardinality, paired with the
    /// granularity `g` (bytes crossing the offload boundary) it should
    /// be evaluated at.
    ///
    /// The model's parameters are derived from the same kernel cycle
    /// models [`CostModel::node_cost`] prices with — `o` is the
    /// device's launch overhead, `l` the attachment link's per-byte
    /// time (zero for standalone / bump-in-the-wire devices), `c` the
    /// host's per-byte compute time at this granularity (β = 1), and
    /// `a` the kernel-only acceleration — so `speedup(g) ≥ 1` is
    /// exactly the "does offload pay at this granularity" question.
    ///
    /// Placement evaluates it on **per-shard** volumes: a node the
    /// shard plan fans out over `w` replicas offloads `rows / w` per
    /// task, and a granularity profitable whole-table can fall under
    /// the device's break-even once split `w` ways.
    ///
    /// Returns `None` for the host itself and whenever either side
    /// cannot run the kernel (no host alternative means no gate).
    pub fn offload_model(
        &self,
        op: &Operator,
        device: DeviceKind,
        est_rows: f64,
        est_bytes: f64,
    ) -> Option<(LogCa, u64)> {
        Self::offload_model_on(&self.fleet, op, device, est_rows, est_bytes)
    }

    /// [`CostModel::offload_model`] against an explicit fleet — the
    /// form per-shard placement uses.
    pub fn offload_model_on(
        fleet: &AcceleratorFleet,
        op: &Operator,
        device: DeviceKind,
        est_rows: f64,
        est_bytes: f64,
    ) -> Option<(LogCa, u64)> {
        if device == DeviceKind::Cpu {
            return None;
        }
        let host_t = Self::node_cost_on(fleet, op, DeviceKind::Cpu, est_rows, est_bytes)?.as_secs();
        let accel_t = Self::node_cost_on(fleet, op, device, est_rows, est_bytes)?.as_secs();
        if host_t <= 0.0 || accel_t <= 0.0 {
            return None;
        }
        // Offload granularity = bytes crossing the boundary: sorts ship
        // keys + row ids (16 B/row), everything else its payload.
        let g = match op {
            Operator::Sort { .. } | Operator::SortMergeJoin { .. } => est_rows.max(1.0) as u64 * 16,
            _ => est_bytes.max(1.0) as u64,
        }
        .max(1);
        let profile = fleet.profile(device)?;
        let o = profile.cycles_to_s(profile.launch_overhead_cycles);
        let link_t = fleet
            .device(device)
            .map_or(0.0, |d| d.transfer_cost(g).as_secs());
        let l = link_t / g as f64;
        let kernel_t = (accel_t - o - link_t).max(1e-15);
        let a = (host_t / kernel_t).max(1e-6);
        let c = host_t / g as f64;
        Some((LogCa::new(l, o, c, 1.0, a), g))
    }

    /// Estimated migration seconds for moving `bytes` between data
    /// models over the migration link (remodeling factor included,
    /// §IV-A.b).
    pub fn migration_cost(&self, bytes: f64, from: DataModel, to: DataModel) -> SimDuration {
        let factor = DataModel::remodel_factor(from, to);
        let t = self.migration_link.transfer_time(bytes.max(0.0) as u64);
        SimDuration::from_secs(t.as_secs() * factor)
    }

    /// Cost-based placement: annotates every live node with the device
    /// minimizing its estimated cost, fills `est_seconds`, and returns
    /// the plan summary. Cardinalities must be estimated first (done
    /// internally).
    ///
    /// Pricing is distribution-aware: a node the [`ShardPlan`] fans
    /// out over `w` shards (a partitioned scan, a colocated join, a
    /// shuffled join, a partial aggregation, a distribution-preserving
    /// filter/projection) is priced at `1/w` of each fanned-out input's
    /// volume — the per-shard tasks run on distinct replicas in
    /// parallel, matching the executor's max-over-shards accounting —
    /// plus a [`CostModel::gather_cost`] term for the shard-ordered
    /// merge of its output and a migration-class charge for every
    /// row-moving exchange edge (shuffle routing, partial-state
    /// splices), so L2 placement trades shard parallelism against data
    /// movement. The gather-vs-shuffle choice itself is
    /// [`pspp_ir::exchange_pays`] over the estimated rows crossing the
    /// edge, evaluated inside the shared planning pass — which is why
    /// the crossover flips with the table statistics.
    ///
    /// # Errors
    ///
    /// Returns [`pspp_common::Error::Semantic`] on cyclic programs.
    pub fn place(&self, program: &mut Program) -> Result<PlacementPlan> {
        self.estimate_cardinalities(program)?;
        let plan = self.shard_plan(program)?;
        let order = program.topo_order()?;
        let mut node_seconds = HashMap::new();
        let mut scatter_width = HashMap::new();
        let mut device_picks = HashMap::new();
        let mut slot_secs: HashMap<NodeId, Vec<f64>> = HashMap::new();
        let mut volumes: HashMap<NodeId, (f64, f64)> = HashMap::new();
        let mut gathers: HashMap<NodeId, f64> = HashMap::new();
        let mut host_fallbacks = 0usize;
        let mut offloaded = 0usize;
        let mut total = 0.0f64;
        let mut exchange_seconds = 0.0f64;
        for &id in &order {
            let node = program.node(id).clone();
            if node.annotations.fused_into_consumer {
                continue;
            }
            // Compute cost is driven by the *input* volume (sources
            // use their own output estimate), at per-task scale: a
            // node the plan fans out over w shards sees 1/w of each
            // partitioned input, while a broadcast (replicated or
            // gathered) join side arrives whole at every task. Joins
            // pay for build + probe (the sum of their sides);
            // everything else pays for its largest pass.
            let width = plan.scatter_width(id);
            let is_join = matches!(
                node.op,
                Operator::HashJoin { .. } | Operator::SortMergeJoin { .. }
            );
            let (task_rows, task_bytes) = if node.inputs.is_empty() {
                (
                    node.annotations.est_rows.unwrap_or(1_000.0) / width as f64,
                    node.annotations.est_bytes.unwrap_or(64_000.0) / width as f64,
                )
            } else {
                let per_input: Vec<(f64, f64)> = node
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(idx, &i)| {
                        let n = program.node(resolve_fused(program, i));
                        // Per-task volume by edge type: an aligned
                        // partial, a shuffled bucket, or a partial-
                        // aggregation shard sees 1/width of the input;
                        // a broadcast or gathered side arrives whole.
                        let divisor = match plan.node(id).exchange(idx) {
                            ExchangeKind::ShuffleHash { width: w, .. } => f64::from(*w),
                            ExchangeKind::MergePartials => width as f64,
                            ExchangeKind::Local
                                if plan.node(id).colocated
                                    && plan.node(i).distribution.is_partitioned() =>
                            {
                                width as f64
                            }
                            _ => 1.0,
                        };
                        (
                            n.annotations.est_rows.unwrap_or(1_000.0) / divisor,
                            n.annotations.est_bytes.unwrap_or(64_000.0) / divisor,
                        )
                    })
                    .collect();
                if is_join {
                    per_input
                        .iter()
                        .fold((0.0f64, 0.0f64), |(ar, ab), (r, b)| (ar + r, ab + b))
                } else {
                    per_input.iter().fold((0.0f64, 0.0f64), |(ar, ab), (r, b)| {
                        (ar.max(*r), ab.max(*b))
                    })
                }
            };
            // Exchange edges are priced like migration: the rows moved
            // cross the migration link, plus per-destination-shard
            // overhead — the same model the executor's barrier charges.
            let mut exchange = 0.0f64;
            for (idx, &i) in node.inputs.iter().enumerate() {
                let src = program.node(resolve_fused(program, i));
                let bytes = src.annotations.est_bytes.unwrap_or(64_000.0);
                match plan.node(id).exchange(idx) {
                    // A copy-served shuffle replays a stored layout:
                    // nothing crosses the wire, nothing is priced.
                    ExchangeKind::ShuffleHash { .. } if plan.node(id).is_copy_served(idx) => {}
                    ExchangeKind::ShuffleHash { width: w, .. } => {
                        // The shuffle's data plane is priced by the
                        // shared accel exchange model — partition +
                        // per-connection serialize streams + wire +
                        // decode — the same bill the executor's
                        // barrier charges, accelerated when the fleet
                        // has a device that wins a stage.
                        let rows = src.annotations.est_rows.unwrap_or(1_000.0);
                        exchange += shuffle_bill(
                            &self.fleet,
                            true,
                            rows.max(0.0) as u64,
                            bytes.max(0.0) as u64,
                            *w as usize,
                            &self.migration_link,
                        )
                        .seconds
                            + f64::from(*w) * GATHER_OVERHEAD_S;
                    }
                    ExchangeKind::MergePartials => {
                        // Partial states (one row per group per shard)
                        // cross shards and splice on the host.
                        let groups = node.annotations.est_rows.unwrap_or(1_000.0);
                        exchange += self
                            .gather_cost(width.max(2), groups * width as f64)
                            .as_secs();
                    }
                    _ => {}
                }
            }
            // Like the executor's barrier, the exchange bill rides the
            // plan's data-movement account, not the node's kernel time.
            exchange_seconds += exchange;
            let gather = self
                .gather_cost(width, node.annotations.est_rows.unwrap_or(1_000.0))
                .as_secs();
            let best_on = |fleet: &AcceleratorFleet| -> Option<(DeviceKind, SimDuration)> {
                let mut best: Option<(DeviceKind, SimDuration)> = None;
                for device in DeviceKind::all() {
                    // LogCA profitability gate, evaluated at *per-shard*
                    // granularity: an accelerator whose speedup at this
                    // task's volume is under 1 never enters the running,
                    // however the raw cycle estimates round.
                    if device != DeviceKind::Cpu {
                        if let Some((logca, g)) =
                            Self::offload_model_on(fleet, &node.op, device, task_rows, task_bytes)
                        {
                            if logca.speedup(g) < 1.0 {
                                continue;
                            }
                        }
                    }
                    if let Some(t) =
                        Self::node_cost_on(fleet, &node.op, device, task_rows, task_bytes)
                    {
                        if best.is_none_or(|(_, bt)| t < bt) {
                            best = Some((device, t));
                        }
                    }
                }
                best
            };
            // Each scatter slot is priced on its own shard's fleet: a
            // heterogeneous deployment may offload the replica at one
            // shard while another falls back to its host. The node's
            // estimate is the critical (slowest) slot, matching the
            // executor's max-over-shards accounting.
            let base_pick = best_on(&self.fleet)
                .map(|(d, _)| d)
                .unwrap_or(DeviceKind::Cpu);
            let scatter = plan.node(id).scatter.clone();
            let mut per_slot = Vec::with_capacity(scatter.len());
            for &shard in &scatter {
                let (device, secs) = match best_on(self.shard_fleet(shard)) {
                    Some((d, t)) => (d, t.as_secs()),
                    None => (DeviceKind::Cpu, 0.0),
                };
                if device == DeviceKind::Cpu && base_pick != DeviceKind::Cpu {
                    host_fallbacks += 1;
                }
                device_picks.insert((id, shard), device);
                per_slot.push(secs);
            }
            scatter_width.insert(id, width);
            slot_secs.insert(id, per_slot);
            volumes.insert(id, (task_rows, task_bytes));
            gathers.insert(id, gather);
            // Engine: sources stay with their table; transforms inherit
            // the first input's engine (data gravity).
            let ann = &mut program.node_mut(id).annotations;
            if let Some(t) = node.op.source_table() {
                ann.engine = Some(t.engine.clone());
            } else if let Some(&first) = node.inputs.first() {
                let inherited = program
                    .node(resolve_fused(program, first))
                    .annotations
                    .engine
                    .clone();
                program.node_mut(id).annotations.engine = inherited;
            }
        }
        // Pipeline-granular adjustment passes over the per-slot picks:
        // device-resident kernel fusion, then contended-device
        // queueing over the (possibly promoted) picks.
        let mut fusion_tags: HashMap<NodeId, Vec<Option<FusionTag>>> = HashMap::new();
        let fused_chains = if self.fusion {
            self.fuse_pass(
                program,
                &plan,
                &order,
                &mut device_picks,
                &mut slot_secs,
                &volumes,
                &mut fusion_tags,
            )
        } else {
            Vec::new()
        };
        let (queue_waits, queue_wait_seconds) = self.queue_pass(
            program,
            &plan,
            &mut device_picks,
            &mut slot_secs,
            &volumes,
            &fusion_tags,
        )?;
        // Finalize per-node estimates from the adjusted slots: the
        // node's estimate is the critical (slowest) slot — device time
        // plus any queue wait — matching the executor's
        // max-over-shards accounting.
        for &id in &order {
            if program.node(id).annotations.fused_into_consumer {
                continue;
            }
            let scatter = &plan.node(id).scatter;
            let secs_slots = &slot_secs[&id];
            let waits = queue_waits.get(&id);
            let mut picks = Vec::with_capacity(scatter.len());
            let mut critical = (DeviceKind::Cpu, 0.0f64);
            for (k, &shard) in scatter.iter().enumerate() {
                let device = device_picks[&(id, shard)];
                let secs = secs_slots[k] + waits.map_or(0.0, |w| w[k]);
                picks.push(device);
                if secs > critical.1 || picks.len() == 1 {
                    critical = (device, secs);
                }
            }
            let width = scatter_width[&id];
            let seconds = critical.1 + gathers[&id];
            if picks.iter().any(|&d| d != DeviceKind::Cpu) {
                offloaded += 1;
            }
            let ann = &mut program.node_mut(id).annotations;
            // `device` carries the critical slot's pick (the single
            // global answer pre-heterogeneity callers read);
            // `shard_devices` the per-slot map the executor consumes.
            ann.device = Some(critical.0);
            ann.shard_devices = if width > 1 { Some(picks) } else { None };
            ann.shard_fusion = fusion_tags.get(&id).cloned();
            ann.shard_queue_waits = waits
                .filter(|w| w.iter().any(|&x| x > 0.0))
                .cloned();
            ann.est_seconds = Some(seconds);
            node_seconds.insert(id, seconds);
            total += seconds;
        }
        // Migration across engine changes.
        let mut migration = 0.0;
        for n in program.nodes() {
            if n.annotations.fused_into_consumer {
                continue;
            }
            for &i in &n.inputs {
                let src = program.node(resolve_fused(program, i));
                if src.annotations.engine != n.annotations.engine {
                    let bytes = src.annotations.est_bytes.unwrap_or(64_000.0);
                    migration += self
                        .migration_cost(bytes, DataModel::Relational, DataModel::Relational)
                        .as_secs();
                }
            }
        }
        total += migration + exchange_seconds;
        Ok(PlacementPlan {
            node_seconds,
            migration_seconds: migration,
            total_seconds: total,
            offloaded,
            scatter_width,
            exchanges: plan.exchange_counts(),
            exchange_seconds,
            device_picks,
            host_fallbacks,
            fused_chains,
            queue_wait_seconds,
        })
    }

    /// Kernel-fusion pass (§III–§IV: pipeline operators on the
    /// accelerator so intermediates never surface to the host). Walks
    /// the plan in topological order and, per scatter slot, greedily
    /// grows chains of adjacent nodes that can run back-to-back on the
    /// same coprocessor of the same shard: the chain pays host→device
    /// transfer once at the head, intermediate edges are billed at the
    /// device-local link, and the LogCA profitability gate re-runs on
    /// the chain as a whole — so a chain can be profitable where each
    /// node alone is not (nodes get *promoted* onto the device), and a
    /// set of individually-profitable nodes can stay unfused when the
    /// chain math doesn't carry.
    #[allow(clippy::too_many_arguments)]
    fn fuse_pass(
        &self,
        program: &Program,
        plan: &ShardPlan,
        order: &[NodeId],
        device_picks: &mut HashMap<(NodeId, ShardId), DeviceKind>,
        slot_secs: &mut HashMap<NodeId, Vec<f64>>,
        volumes: &HashMap<NodeId, (f64, f64)>,
        fusion_tags: &mut HashMap<NodeId, Vec<Option<FusionTag>>>,
    ) -> Vec<FusedChain> {
        // A producer edge is fusable only when the producer's full
        // output flows straight into this one consumer on the same
        // shard layout: a Local exchange, single consumer, not a
        // program output, identical scatter vectors.
        let mut consumer_count: HashMap<NodeId, usize> = HashMap::new();
        for n in program.nodes() {
            if n.annotations.fused_into_consumer {
                continue;
            }
            for &i in &n.inputs {
                *consumer_count
                    .entry(resolve_fused(program, i))
                    .or_insert(0) += 1;
            }
        }
        let outputs: Vec<NodeId> = program.outputs().to_vec();
        // Open chains under construction, keyed by (tail node, shard).
        struct Build {
            shard: ShardId,
            slot: usize,
            device: DeviceKind,
            nodes: Vec<NodeId>,
            /// Fused per-member device seconds, head first.
            member_secs: Vec<f64>,
            /// Total fused chain seconds.
            fused: f64,
            /// Total standalone (pre-fusion) slot seconds.
            solo: f64,
            /// Host (CPU) seconds for the whole chain.
            host: f64,
            /// Summed launch overheads across members.
            launch: f64,
            /// Head transfer granularity (the one PCIe payment).
            head_g: u64,
        }
        let mut open: Vec<Build> = Vec::new();
        let mut tails: HashMap<(NodeId, ShardId), usize> = HashMap::new();
        for &id in order {
            let node = program.node(id);
            if node.annotations.fused_into_consumer {
                continue;
            }
            // The eligible producer edge for this node, if any: the
            // widest Local edge whose producer feeds only us.
            let mut producer: Option<(NodeId, f64)> = None;
            for (idx, &i) in node.inputs.iter().enumerate() {
                let p = resolve_fused(program, i);
                if !matches!(plan.node(id).exchange(idx), ExchangeKind::Local) {
                    continue;
                }
                if consumer_count.get(&p).copied().unwrap_or(0) != 1 {
                    continue;
                }
                if outputs.contains(&p) {
                    continue;
                }
                if plan.node(p).scatter != plan.node(id).scatter {
                    continue;
                }
                let divisor = if plan.node(id).colocated
                    && plan.node(i).distribution.is_partitioned()
                {
                    plan.scatter_width(id) as f64
                } else {
                    1.0
                };
                let bytes =
                    program.node(p).annotations.est_bytes.unwrap_or(64_000.0) / divisor;
                if producer.is_none_or(|(_, b)| bytes > b) {
                    producer = Some((p, bytes));
                }
            }
            let scatter = plan.node(id).scatter.clone();
            let (c_rows, c_bytes) = volumes[&id];
            for (k, &shard) in scatter.iter().enumerate() {
                let fleet = self.shard_fleet(shard);
                let solo_c = slot_secs[&id][k];
                let host_c =
                    match Self::node_cost_on(fleet, &node.op, DeviceKind::Cpu, c_rows, c_bytes)
                    {
                        Some(t) => t.as_secs(),
                        None => continue,
                    };
                // Try to extend an open chain ending at our producer.
                if let Some(&bi) = producer.and_then(|(p, _)| tails.get(&(p, shard))) {
                    let b = &open[bi];
                    let pick = device_picks[&(id, shard)];
                    // A slot already committed to a *different* device
                    // breaks the chain; a host pick is promotable.
                    if pick == b.device || pick == DeviceKind::Cpu {
                        let (_, edge_bytes) = producer.unwrap();
                        if let Some(body) = self.fused_member_cost(
                            fleet,
                            &node.op,
                            b.device,
                            c_rows,
                            c_bytes,
                            edge_bytes,
                        ) {
                            // Never extend past the point where the
                            // member itself regresses vs its solo cost.
                            if body <= solo_c {
                                let launch = Self::launch_secs(fleet, b.device);
                                let b = &mut open[bi];
                                let prev_tail = *b.nodes.last().unwrap();
                                b.nodes.push(id);
                                b.member_secs.push(body);
                                b.fused += body;
                                b.solo += solo_c;
                                b.host += host_c;
                                b.launch += launch;
                                tails.remove(&(prev_tail, shard));
                                tails.insert((id, shard), bi);
                                continue;
                            }
                        }
                    }
                }
                // Otherwise try to seed a fresh chain on this edge:
                // pick the cheapest coprocessor both endpoints can run
                // on (attached in Coprocessor mode — a standalone or
                // bump-in-the-wire device pays no PCIe and has nothing
                // to fuse away).
                let Some((p, edge_bytes)) = producer else {
                    continue;
                };
                let p_node = program.node(p);
                let (p_rows, p_bytes) = volumes[&p];
                let solo_p = slot_secs[&p][k];
                let host_p = match Self::node_cost_on(
                    fleet,
                    &p_node.op,
                    DeviceKind::Cpu,
                    p_rows,
                    p_bytes,
                ) {
                    Some(t) => t.as_secs(),
                    None => continue,
                };
                let p_pick = device_picks[&(p, shard)];
                let c_pick = device_picks[&(id, shard)];
                let mut best: Option<(DeviceKind, f64, f64)> = None;
                for device in DeviceKind::all() {
                    if device == DeviceKind::Cpu {
                        continue;
                    }
                    // Respect committed non-host picks: fusing must
                    // not silently move a slot off its chosen device.
                    if (p_pick != DeviceKind::Cpu && p_pick != device)
                        || (c_pick != DeviceKind::Cpu && c_pick != device)
                    {
                        continue;
                    }
                    let Some(attached) = fleet.device(device) else {
                        continue;
                    };
                    if attached.mode != DeploymentMode::Coprocessor {
                        continue;
                    }
                    let Some(head) = Self::node_cost_on(fleet, &p_node.op, device, p_rows, p_bytes)
                    else {
                        continue;
                    };
                    let Some(body) = self.fused_member_cost(
                        fleet, &node.op, device, c_rows, c_bytes, edge_bytes,
                    ) else {
                        continue;
                    };
                    let head = head.as_secs();
                    if best.is_none_or(|(_, h, b)| head + body < h + b) {
                        best = Some((device, head, body));
                    }
                }
                let Some((device, head, body)) = best else {
                    continue;
                };
                // A seed that is already worse than the standalone
                // picks can never be rescued by growing — skip it.
                if head + body > solo_p + solo_c {
                    continue;
                }
                let head_g = Self::transfer_bytes(&p_node.op, p_rows, p_bytes).max(1);
                let launch = Self::launch_secs(fleet, device);
                let bi = open.len();
                open.push(Build {
                    shard,
                    slot: k,
                    device,
                    nodes: vec![p, id],
                    member_secs: vec![head, body],
                    fused: head + body,
                    solo: solo_p + solo_c,
                    host: host_p + host_c,
                    launch: launch * 2.0,
                    head_g,
                });
                tails.insert((id, shard), bi);
            }
        }
        // Emit: re-run the LogCA profitability gate on each chain as a
        // whole. The chain's LogCA parameters are derived so that
        // speedup(g) >= 1 exactly when chain host time >= fused time.
        let mut chains = Vec::new();
        for b in open {
            if b.nodes.len() < 2 || b.host <= 0.0 {
                continue;
            }
            let fleet = self.shard_fleet(b.shard);
            let Some(attached) = fleet.device(b.device) else {
                continue;
            };
            let g = b.head_g;
            let gf = g as f64;
            let link_t = attached.transfer_cost(g).as_secs();
            let kernel_t = (b.fused - b.launch - link_t).max(1e-15);
            let logca = LogCa::new(
                link_t / gf,
                b.launch,
                b.host / gf,
                1.0,
                (b.host / kernel_t).max(1e-6),
            );
            if logca.speedup(g) < 1.0 || b.fused > b.solo {
                continue;
            }
            let chain = chains.len();
            let len = b.nodes.len();
            for (pos, (&nid, &secs)) in b.nodes.iter().zip(&b.member_secs).enumerate() {
                device_picks.insert((nid, b.shard), b.device);
                slot_secs.get_mut(&nid).unwrap()[b.slot] = secs;
                let width = plan.node(nid).scatter.len();
                fusion_tags
                    .entry(nid)
                    .or_insert_with(|| vec![None; width])[b.slot] =
                    Some(FusionTag { chain, pos, len });
            }
            chains.push(FusedChain {
                shard: b.shard,
                device: b.device,
                nodes: b.nodes,
                saved_seconds: b.solo - b.fused,
            });
        }
        chains
    }

    /// Contended-device queueing: when several (node, shard) slots of
    /// one execution stage pick the same *physical* device (a fleet
    /// with declared capacity), serialize them on a deterministic queue
    /// — stable stage order, earliest-available server, ties to the
    /// lowest server index — and put the wait on each slot's critical
    /// path. A non-fused slot falls back to its host when waiting
    /// beats the exclusive-price fiction; fused members wait rather
    /// than fission their chain.
    fn queue_pass(
        &self,
        program: &Program,
        plan: &ShardPlan,
        device_picks: &mut HashMap<(NodeId, ShardId), DeviceKind>,
        slot_secs: &mut HashMap<NodeId, Vec<f64>>,
        volumes: &HashMap<NodeId, (f64, f64)>,
        fusion_tags: &HashMap<NodeId, Vec<Option<FusionTag>>>,
    ) -> Result<(HashMap<NodeId, Vec<f64>>, f64)> {
        let mut waits: HashMap<NodeId, Vec<f64>> = HashMap::new();
        let mut total = 0.0f64;
        for stage in program.execution_stages()? {
            // One server vector per contention domain: shards with
            // their own fleet own their physical devices; shards on
            // the default fleet share one pool.
            let mut servers: HashMap<(Option<ShardId>, DeviceKind), Vec<f64>> = HashMap::new();
            for &id in &stage.compute {
                let node = program.node(id);
                let scatter = plan.node(id).scatter.clone();
                for (k, &shard) in scatter.iter().enumerate() {
                    let device = device_picks[&(id, shard)];
                    if device == DeviceKind::Cpu {
                        continue;
                    }
                    let fleet = self.shard_fleet(shard);
                    let Some(cap) = fleet.capacity(device) else {
                        continue;
                    };
                    let domain = (
                        if self.shard_fleets.contains_key(&shard) {
                            Some(shard)
                        } else {
                            None
                        },
                        device,
                    );
                    let queue = servers
                        .entry(domain)
                        .or_insert_with(|| vec![0.0; cap.max(1)]);
                    let (si, avail) = queue
                        .iter()
                        .enumerate()
                        .fold((0usize, f64::INFINITY), |(bi, bt), (i, &t)| {
                            if t < bt {
                                (i, t)
                            } else {
                                (bi, bt)
                            }
                        });
                    let secs = slot_secs[&id][k];
                    let fused = fusion_tags
                        .get(&id)
                        .and_then(|v| v[k])
                        .is_some();
                    if !fused && avail > 0.0 {
                        let (rows, bytes) = volumes[&id];
                        if let Some(host) = Self::node_cost_on(
                            fleet,
                            &node.op,
                            DeviceKind::Cpu,
                            rows,
                            bytes,
                        ) {
                            let host = host.as_secs();
                            if host < avail + secs {
                                // Waiting beats the fiction of
                                // exclusive access: run on the host
                                // instead, freeing the device.
                                device_picks.insert((id, shard), DeviceKind::Cpu);
                                slot_secs.get_mut(&id).unwrap()[k] = host;
                                continue;
                            }
                        }
                    }
                    if avail > 0.0 {
                        waits.entry(id).or_insert_with(|| vec![0.0; scatter.len()])[k] = avail;
                        total += avail;
                    }
                    queue[si] = avail + secs;
                }
            }
        }
        Ok((waits, total))
    }

    /// Cost of a non-head fused-chain member on `device` at one shard:
    /// the standalone device cost with its host→device PCIe transfer
    /// replaced by the device-local link moving the fused edge's
    /// bytes. Requires a Coprocessor-mode attachment (other modes pay
    /// no transfer, so fusion has nothing to save).
    fn fused_member_cost(
        &self,
        fleet: &AcceleratorFleet,
        op: &Operator,
        device: DeviceKind,
        est_rows: f64,
        est_bytes: f64,
        edge_bytes: f64,
    ) -> Option<f64> {
        let attached = fleet.device(device)?;
        if attached.mode != DeploymentMode::Coprocessor {
            return None;
        }
        let full = Self::node_cost_on(fleet, op, device, est_rows, est_bytes)?.as_secs();
        let tb = Self::transfer_bytes(op, est_rows, est_bytes);
        let pcie = attached.transfer_cost(tb).as_secs();
        // The resident edge bills the same transfer-bytes convention the
        // charger uses (sorts ship key+payload pairs, not raw edge
        // payload), so planned savings equal executed savings.
        let local_tb = Self::transfer_bytes(op, est_rows, edge_bytes.max(0.0));
        let local = Interconnect::local().transfer_time(local_tb).as_secs();
        Some((full - pcie + local).max(0.0))
    }

    /// Kernel-launch overhead of `device` in seconds (zero for a fleet
    /// without the device).
    fn launch_secs(fleet: &AcceleratorFleet, device: DeviceKind) -> f64 {
        fleet
            .device(device)
            .map(|a| a.profile.cycles_to_s(a.profile.launch_overhead_cycles))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_accel::fleet::AttachedDevice;
    use pspp_accel::{DeploymentMode, DeviceProfile};
    use pspp_common::Predicate;
    use pspp_ir::SortSpec;

    fn model() -> CostModel {
        let mut stats = HashMap::new();
        stats.insert(
            TableRef::new("db1", "big"),
            TableStats {
                rows: 2_000_000.0,
                row_bytes: 64.0,
            },
        );
        stats.insert(
            TableRef::new("db2", "small"),
            TableStats {
                rows: 1_000.0,
                row_bytes: 32.0,
            },
        );
        CostModel::new(AcceleratorFleet::workstation(), stats)
    }

    fn sort_program() -> (Program, NodeId) {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "date".into(),
                    ascending: true,
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(sort);
        (p, sort)
    }

    #[test]
    fn cardinalities_flow_through() {
        let m = model();
        let mut p = Program::new();
        let s = p.add_source(
            Operator::Scan {
                table: TableRef::new("db1", "big"),
                predicate: Predicate::eq("k", 1i64),
                projection: None,
            },
            "sql",
        );
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::gt("v", 0i64),
            },
            vec![s],
            "sql",
        );
        p.mark_output(f);
        m.estimate_cardinalities(&mut p).unwrap();
        let scan_rows = p.node(s).annotations.est_rows.unwrap();
        let filter_rows = p.node(f).annotations.est_rows.unwrap();
        assert!(scan_rows < 2_000_000.0);
        assert!(filter_rows < scan_rows);
    }

    #[test]
    fn placement_offloads_big_sort_to_fpga() {
        let m = model();
        let (mut p, sort) = sort_program();
        let plan = m.place(&mut p).unwrap();
        assert_eq!(p.node(sort).annotations.device, Some(DeviceKind::Fpga));
        assert!(plan.offloaded >= 1);
        assert!(plan.total_seconds > 0.0);
    }

    #[test]
    fn small_inputs_stay_on_cpu() {
        let m = model();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db2", "small")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "k".into(),
                    ascending: true,
                }],
            },
            vec![s],
            "sql",
        );
        p.mark_output(sort);
        m.place(&mut p).unwrap();
        assert_eq!(p.node(sort).annotations.device, Some(DeviceKind::Cpu));
    }

    #[test]
    fn train_goes_to_tpu() {
        let m = model();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        let t = p.add_node(
            Operator::TrainMlp {
                label_column: "y".into(),
                hidden: vec![64, 32],
                epochs: 10,
                batch_size: 32,
                learning_rate: 0.1,
            },
            vec![s],
            "ml",
        );
        p.mark_output(t);
        m.place(&mut p).unwrap();
        assert_eq!(p.node(t).annotations.device, Some(DeviceKind::Tpu));
    }

    #[test]
    fn cross_engine_edges_charge_migration() {
        let m = model();
        let mut p = Program::new();
        let a = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        let b = p.add_source(Operator::scan(TableRef::new("db2", "small")), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "k".into(),
                right_on: "k".into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        let plan = m.place(&mut p).unwrap();
        assert!(plan.migration_seconds > 0.0);
    }

    #[test]
    fn remodel_factor_raises_migration_cost() {
        let m = model();
        let plain = m.migration_cost(1e6, DataModel::Relational, DataModel::Relational);
        let remodel = m.migration_cost(1e6, DataModel::Text, DataModel::Tensor);
        assert!(remodel.as_secs() > plain.as_secs() * 2.0);
    }

    #[test]
    fn fused_nodes_cost_nothing() {
        let m = model();
        let (mut p, _) = sort_program();
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::True,
            },
            vec![p.outputs()[0]],
            "sql",
        );
        p.node_mut(f).annotations.fused_into_consumer = true;
        let plan = m.place(&mut p).unwrap();
        assert!(!plan.node_seconds.contains_key(&f));
    }

    fn scan_program() -> (Program, NodeId) {
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        p.mark_output(s);
        (p, s)
    }

    #[test]
    fn four_shard_scan_is_priced_at_a_quarter_plus_gather() {
        // The acceptance identity: sharded estimate = unsharded
        // estimate over rows/4 + the gather term. Same device, same
        // kernel model — only the scatter width differs.
        let unsharded = model();
        let mut sharded = model();
        sharded.set_partition(
            TableRef::new("db1", "big"),
            pspp_common::PartitionSpec::hash("k", 4),
        );

        let (mut p_flat, s_flat) = scan_program();
        let flat = unsharded.place(&mut p_flat).unwrap();
        let (mut p_shard, s_shard) = scan_program();
        let plan = sharded.place(&mut p_shard).unwrap();

        assert_eq!(plan.scatter_width[&s_shard], 4);
        assert_eq!(flat.scatter_width[&s_flat], 1);

        let est_rows = p_shard.node(s_shard).annotations.est_rows.unwrap();
        let est_bytes = p_shard.node(s_shard).annotations.est_bytes.unwrap();
        let device = p_shard.node(s_shard).annotations.device.unwrap();
        let gather = sharded.gather_cost(4, est_rows).as_secs();
        let quarter = sharded
            .node_cost(
                &p_shard.node(s_shard).op,
                device,
                est_rows / 4.0,
                est_bytes / 4.0,
            )
            .unwrap()
            .as_secs();
        let predicted = plan.node_seconds[&s_shard];
        assert!(
            (predicted - (quarter + gather)).abs() < 1e-12,
            "sharded scan estimate {predicted} != per-shard cost {quarter} + gather {gather}"
        );
        assert!(gather > 0.0, "gathering 4 partials is not free");
        assert!(
            predicted < flat.node_seconds[&s_flat],
            "shard parallelism must cut the estimate ({predicted} vs {})",
            flat.node_seconds[&s_flat]
        );
        // The speedup is roughly the scatter width (gather term and
        // launch overhead eat a little of it).
        let ratio = flat.node_seconds[&s_flat] / predicted;
        assert!(
            ratio > 2.0 && ratio <= 4.5,
            "4-shard scan speedup {ratio:.2}x out of the plausible band"
        );
    }

    #[test]
    fn colocated_join_is_priced_at_per_shard_volume() {
        let make = |sharded: bool| {
            let mut m = model();
            m.set_stats(
                TableRef::new("db2", "big2"),
                TableStats {
                    rows: 2_000_000.0,
                    row_bytes: 64.0,
                },
            );
            if sharded {
                m.set_partition(
                    TableRef::new("db1", "big"),
                    pspp_common::PartitionSpec::hash("k", 4),
                );
                m.set_partition(
                    TableRef::new("db2", "big2"),
                    pspp_common::PartitionSpec::hash("k", 4),
                );
            }
            m
        };
        let join_program = || {
            let mut p = Program::new();
            let a = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
            let b = p.add_source(Operator::scan(TableRef::new("db2", "big2")), "sql");
            let j = p.add_node(
                Operator::HashJoin {
                    left_on: "k".into(),
                    right_on: "k".into(),
                },
                vec![a, b],
                "sql",
            );
            p.mark_output(j);
            (p, j)
        };
        let (mut p_flat, j_flat) = join_program();
        let flat = make(false).place(&mut p_flat).unwrap();
        let (mut p_shard, j_shard) = join_program();
        let m = make(true);
        let plan = m.place(&mut p_shard).unwrap();
        assert_eq!(plan.scatter_width[&j_shard], 4, "join priced colocated");
        assert!(
            plan.node_seconds[&j_shard] < flat.node_seconds[&j_flat],
            "colocated join estimate must beat the gathered one ({} vs {})",
            plan.node_seconds[&j_shard],
            flat.node_seconds[&j_flat]
        );
        // Mismatched keys at these (large) stats shuffle: the join is
        // still priced at the full scatter width.
        let mut mismatched = make(true);
        mismatched.set_partition(
            TableRef::new("db2", "big2"),
            pspp_common::PartitionSpec::hash("other", 4),
        );
        let (mut p_mis, j_mis) = join_program();
        let plan_mis = mismatched.place(&mut p_mis).unwrap();
        assert_eq!(plan_mis.scatter_width[&j_mis], 4);
        assert_eq!(plan_mis.exchanges.shuffles, 2);
        assert!(plan_mis.exchange_seconds > 0.0);
    }

    /// The acceptance crossover: the same mismatched-key join plan must
    /// flip between gather and shuffle purely on estimated row counts.
    #[test]
    fn placement_flips_between_gather_and_shuffle_at_the_crossover() {
        let join_program = || {
            let mut p = Program::new();
            let a = p.add_source(Operator::scan(TableRef::new("db1", "t1")), "sql");
            let b = p.add_source(Operator::scan(TableRef::new("db2", "t2")), "sql");
            let j = p.add_node(
                Operator::HashJoin {
                    left_on: "k".into(),
                    right_on: "k".into(),
                },
                vec![a, b],
                "sql",
            );
            p.mark_output(j);
            (p, j)
        };
        let model_with_rows = |rows: f64| {
            let mut stats = HashMap::new();
            for t in [TableRef::new("db1", "t1"), TableRef::new("db2", "t2")] {
                stats.insert(
                    t.clone(),
                    TableStats {
                        rows,
                        row_bytes: 64.0,
                    },
                );
            }
            let mut m = CostModel::new(AcceleratorFleet::workstation(), stats);
            // Mismatched partition keys: never colocated, so the plan
            // is gather or shuffle by cost alone.
            m.set_partition(
                TableRef::new("db1", "t1"),
                pspp_common::PartitionSpec::hash("k", 4),
            );
            m.set_partition(
                TableRef::new("db2", "t2"),
                pspp_common::PartitionSpec::hash("other", 4),
            );
            m
        };
        // Below the crossover (see pspp_ir::exchange_pays at width 4:
        // total rows must exceed ~1365): gather.
        let (mut p_small, j_small) = join_program();
        let small = model_with_rows(400.0).place(&mut p_small).unwrap();
        assert_eq!(small.scatter_width[&j_small], 1, "small joins gather");
        assert_eq!(small.exchanges.shuffles, 0);
        assert_eq!(small.exchanges.gathers, 2);

        // Above the crossover: shuffle, priced per shard.
        let (mut p_big, j_big) = join_program();
        let big = model_with_rows(100_000.0).place(&mut p_big).unwrap();
        assert_eq!(big.scatter_width[&j_big], 4, "big joins shuffle");
        assert_eq!(big.exchanges.shuffles, 2);
        assert_eq!(big.exchanges.gathers, 0);
        assert!(big.exchange_seconds > 0.0);
    }

    /// The per-shard cardinality regression: offload profitability is
    /// a function of **per-task** granularity. A bump-in-the-wire FPGA
    /// wins the hash-partition kernel at the gathered join's 200k-row
    /// granularity, but once the shard plan colocates the same join 4
    /// ways each 50k-row task falls under the LogCA break-even —
    /// whole-table rows would overstate `g` by the scatter width and
    /// offload every replica at a loss.
    #[test]
    fn offload_profitability_is_judged_at_per_shard_granularity() {
        let t1 = TableRef::new("db1", "t1");
        let t2 = TableRef::new("db2", "t2");
        let fleet = || {
            AcceleratorFleet::new(
                DeviceProfile::cpu(),
                vec![AttachedDevice {
                    profile: DeviceProfile::fpga(),
                    mode: DeploymentMode::BumpInTheWire,
                    link: Interconnect::pcie(),
                }],
            )
            .expect("cpu host")
        };
        let make = |sharded: bool| {
            let mut stats = HashMap::new();
            for t in [t1.clone(), t2.clone()] {
                stats.insert(
                    t,
                    TableStats {
                        rows: 100_000.0,
                        row_bytes: 64.0,
                    },
                );
            }
            let mut m = CostModel::new(fleet(), stats);
            if sharded {
                // Matching keys: the join plans colocated at width 4.
                m.set_partition(t1.clone(), pspp_common::PartitionSpec::hash("k", 4));
                m.set_partition(t2.clone(), pspp_common::PartitionSpec::hash("k", 4));
            }
            m
        };
        let join_program = || {
            let mut p = Program::new();
            let a = p.add_source(Operator::scan(t1.clone()), "sql");
            let b = p.add_source(Operator::scan(t2.clone()), "sql");
            let j = p.add_node(
                Operator::HashJoin {
                    left_on: "k".into(),
                    right_on: "k".into(),
                },
                vec![a, b],
                "sql",
            );
            p.mark_output(j);
            (p, j)
        };

        // Gathered: build + probe = 200k rows per task — offload pays.
        let (mut p_flat, j_flat) = join_program();
        let flat = make(false).place(&mut p_flat).unwrap();
        assert_eq!(flat.scatter_width[&j_flat], 1);
        assert_eq!(
            p_flat.node(j_flat).annotations.device,
            Some(DeviceKind::Fpga),
            "gathered 200k-row hash join offloads"
        );

        // Colocated 4 ways: 50k rows per task — under the break-even,
        // every replica stays on its host.
        let (mut p_shard, j_shard) = join_program();
        let plan = make(true).place(&mut p_shard).unwrap();
        assert_eq!(plan.scatter_width[&j_shard], 4, "join planned colocated");
        assert_eq!(
            p_shard.node(j_shard).annotations.device,
            Some(DeviceKind::Cpu),
            "per-shard 50k-row tasks stay on the CPU"
        );

        // The LogCA model itself brackets the crossover: profitable at
        // the gathered granularity, unprofitable per shard, with the
        // break-even granularity strictly between the two.
        let m = make(false);
        let op = Operator::HashJoin {
            left_on: "k".into(),
            right_on: "k".into(),
        };
        let (whole, g_whole) = m
            .offload_model(&op, DeviceKind::Fpga, 200_000.0, 200_000.0 * 64.0)
            .unwrap();
        assert!(whole.speedup(g_whole) > 1.0);
        let (shard, g_shard) = m
            .offload_model(&op, DeviceKind::Fpga, 50_000.0, 50_000.0 * 64.0)
            .unwrap();
        assert!(shard.speedup(g_shard) < 1.0);
        let crossover = whole.break_even(g_whole).expect("profitable at 200k rows");
        assert!(
            g_shard < crossover && crossover <= g_whole,
            "break-even {crossover} B outside ({g_shard}, {g_whole}] B"
        );
    }

    /// A heterogeneous deployment (accelerator at shard 0 only) must
    /// produce a *mixed* device-pick map: the replica at shard 0
    /// offloads while the accelerator-less shards fall back to their
    /// hosts — counted, not panicked over — and the executor-facing
    /// annotations carry the per-slot picks.
    #[test]
    fn heterogeneous_fleet_produces_mixed_device_picks() {
        let t1 = TableRef::new("db1", "t1");
        let t2 = TableRef::new("db2", "t2");
        let accel_fleet = AcceleratorFleet::new(
            DeviceProfile::cpu(),
            vec![AttachedDevice {
                profile: DeviceProfile::fpga(),
                mode: DeploymentMode::BumpInTheWire,
                link: Interconnect::pcie(),
            }],
        )
        .expect("cpu host");
        let mut stats = HashMap::new();
        for t in [t1.clone(), t2.clone()] {
            stats.insert(
                t,
                TableStats {
                    rows: 400_000.0,
                    row_bytes: 64.0,
                },
            );
        }
        // Shards 1..3 have no attached devices; shard 0 keeps the
        // default (accelerated) fleet.
        let overrides: BTreeMap<ShardId, AcceleratorFleet> = (1..4)
            .map(|s| (ShardId(s), AcceleratorFleet::cpu_only()))
            .collect();
        let mut m = CostModel::new(accel_fleet, stats).with_shard_fleets(overrides);
        m.set_partition(t1.clone(), pspp_common::PartitionSpec::hash("k", 4));
        m.set_partition(t2.clone(), pspp_common::PartitionSpec::hash("k", 4));

        let mut p = Program::new();
        let a = p.add_source(Operator::scan(t1), "sql");
        let b = p.add_source(Operator::scan(t2), "sql");
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "k".into(),
                right_on: "k".into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        let plan = m.place(&mut p).unwrap();

        assert_eq!(plan.scatter_width[&j], 4, "join planned colocated");
        // 200k rows per task is over the BITW FPGA's break-even, so
        // the shard-0 replica offloads; the bare shards cannot.
        assert_eq!(plan.device_picks[&(j, ShardId(0))], DeviceKind::Fpga);
        for s in 1..4 {
            assert_eq!(plan.device_picks[&(j, ShardId(s))], DeviceKind::Cpu);
        }
        assert!(
            plan.host_fallbacks >= 3,
            "three bare shards fell back to their hosts, got {}",
            plan.host_fallbacks
        );
        assert_eq!(
            p.node(j).annotations.shard_devices,
            Some(vec![
                DeviceKind::Fpga,
                DeviceKind::Cpu,
                DeviceKind::Cpu,
                DeviceKind::Cpu
            ]),
            "per-slot picks ride the annotations to the executor"
        );
        // The critical (slowest) slot is a host replica, so the scalar
        // device annotation reports Cpu even though the node offloads
        // at shard 0.
        assert_eq!(p.node(j).annotations.device, Some(DeviceKind::Cpu));
        assert!(plan.offloaded >= 1, "the node counts as offloaded");
    }

    #[test]
    fn exchange_off_prices_the_gathered_baseline() {
        let mut stats = HashMap::new();
        for t in [TableRef::new("db1", "t1"), TableRef::new("db2", "t2")] {
            stats.insert(
                t.clone(),
                TableStats {
                    rows: 100_000.0,
                    row_bytes: 64.0,
                },
            );
        }
        let model = |exchange: bool| {
            let mut m = CostModel::new(AcceleratorFleet::workstation(), stats.clone())
                .with_exchange(exchange);
            m.set_partition(
                TableRef::new("db1", "t1"),
                pspp_common::PartitionSpec::hash("k", 4),
            );
            m.set_partition(
                TableRef::new("db2", "t2"),
                pspp_common::PartitionSpec::hash("other", 4),
            );
            m
        };
        let program = || {
            let mut p = Program::new();
            let a = p.add_source(Operator::scan(TableRef::new("db1", "t1")), "sql");
            let b = p.add_source(Operator::scan(TableRef::new("db2", "t2")), "sql");
            let j = p.add_node(
                Operator::HashJoin {
                    left_on: "k".into(),
                    right_on: "k".into(),
                },
                vec![a, b],
                "sql",
            );
            p.mark_output(j);
            (p, j)
        };
        let (mut p_ex, j_ex) = program();
        let with = model(true).place(&mut p_ex).unwrap();
        let (mut p_base, j_base) = program();
        let without = model(false).place(&mut p_base).unwrap();
        assert_eq!(without.scatter_width[&j_base], 1);
        assert_eq!(without.exchanges.shuffles, 0);
        assert!(
            with.node_seconds[&j_ex] < without.node_seconds[&j_base],
            "the shuffled join estimate must beat the gathered one ({} vs {})",
            with.node_seconds[&j_ex],
            without.node_seconds[&j_base]
        );
    }

    /// A chain profitable where each node alone is not: over a slow
    /// (4 GB/s) coprocessor link, a single 1M-row sort loses to the
    /// host because the PCIe shuttle erodes the kernel win, so both
    /// sorts pick the CPU in isolation. Fusing the back-to-back sorts
    /// pays PCIe once at the head and moves the intermediate over the
    /// device-local link — the chain-level LogCA gate passes and both
    /// nodes get *promoted* onto the FPGA.
    #[test]
    fn fusion_promotes_chain_profitable_nodes() {
        let slow_fleet = || {
            let mut link = Interconnect::pcie();
            link.bandwidth_bps = 4.0e9;
            AcceleratorFleet::new(
                DeviceProfile::cpu(),
                vec![AttachedDevice {
                    profile: DeviceProfile::fpga(),
                    mode: DeploymentMode::Coprocessor,
                    link,
                }],
            )
            .expect("cpu host")
        };
        let mut stats = HashMap::new();
        stats.insert(
            TableRef::new("db1", "big"),
            TableStats {
                rows: 1_000_000.0,
                row_bytes: 64.0,
            },
        );
        let two_sorts = || {
            let mut p = Program::new();
            let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
            let sort1 = p.add_node(
                Operator::Sort {
                    keys: vec![SortSpec {
                        column: "a".into(),
                        ascending: true,
                    }],
                },
                vec![s],
                "sql",
            );
            let sort2 = p.add_node(
                Operator::Sort {
                    keys: vec![SortSpec {
                        column: "b".into(),
                        ascending: true,
                    }],
                },
                vec![sort1],
                "sql",
            );
            p.mark_output(sort2);
            (p, sort1, sort2)
        };

        // Unfused baseline: each sort judged alone stays on the host.
        let off = CostModel::new(slow_fleet(), stats.clone()).with_fusion(false);
        let (mut p_off, s1_off, s2_off) = two_sorts();
        let plan_off = off.place(&mut p_off).unwrap();
        assert!(plan_off.fused_chains.is_empty());
        assert_eq!(p_off.node(s1_off).annotations.device, Some(DeviceKind::Cpu));
        assert_eq!(p_off.node(s2_off).annotations.device, Some(DeviceKind::Cpu));

        // Fused: the sort->sort chain clears the chain-level gate.
        let on = CostModel::new(slow_fleet(), stats);
        let (mut p_on, s1_on, s2_on) = two_sorts();
        let plan_on = on.place(&mut p_on).unwrap();
        let chain = plan_on
            .fused_chains
            .iter()
            .find(|c| c.nodes.contains(&s2_on))
            .expect("sort->sort fused");
        assert_eq!(chain.device, DeviceKind::Fpga);
        assert!(chain.nodes.contains(&s1_on), "head rides the chain");
        assert!(chain.saved_seconds > 0.0);
        assert_eq!(p_on.node(s1_on).annotations.device, Some(DeviceKind::Fpga));
        assert_eq!(p_on.node(s2_on).annotations.device, Some(DeviceKind::Fpga));
        let tag = p_on.node(s2_on).annotations.shard_fusion.as_ref().unwrap()[0]
            .expect("tail slot tagged");
        assert_eq!((tag.pos, tag.len), (tag.len - 1, chain.nodes.len()));
        assert!(
            plan_on.total_seconds < plan_off.total_seconds,
            "fused plan {} not under unfused {}",
            plan_on.total_seconds,
            plan_off.total_seconds
        );
    }

    /// The opposite gate direction: nodes that are individually
    /// profitable on *different* devices stay unfused — fusing would
    /// silently move one off its best device, so the chain never forms
    /// and both keep their standalone picks.
    #[test]
    fn fusion_rejects_chains_across_device_picks() {
        let m = model();
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        let sort = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "k".into(),
                    ascending: true,
                }],
            },
            vec![s],
            "sql",
        );
        let train = p.add_node(
            Operator::TrainMlp {
                label_column: "y".into(),
                hidden: vec![64, 32],
                epochs: 10,
                batch_size: 32,
                learning_rate: 0.1,
            },
            vec![sort],
            "ml",
        );
        p.mark_output(train);
        let plan = m.place(&mut p).unwrap();
        assert_eq!(p.node(sort).annotations.device, Some(DeviceKind::Fpga));
        assert_eq!(p.node(train).annotations.device, Some(DeviceKind::Tpu));
        assert!(
            !plan
                .fused_chains
                .iter()
                .any(|c| c.nodes.contains(&sort) && c.nodes.contains(&train)),
            "sort (FPGA) and train (TPU) must not fuse"
        );
    }

    /// Contended-device queueing: two same-stage training nodes both
    /// want the single declared TPU. The placer serializes them in
    /// stable slot order — the first runs immediately, the second
    /// carries the queue wait on its critical path — and a declared
    /// capacity of 2 dissolves the contention.
    #[test]
    fn contended_device_queues_in_stable_order() {
        let mut stats = HashMap::new();
        stats.insert(
            TableRef::new("db1", "big"),
            TableStats {
                rows: 2_000_000.0,
                row_bytes: 64.0,
            },
        );
        let train = || Operator::TrainMlp {
            label_column: "y".into(),
            hidden: vec![64, 32],
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.1,
        };
        let program = || {
            let mut p = Program::new();
            let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
            let t1 = p.add_node(train(), vec![s], "ml");
            let t2 = p.add_node(train(), vec![s], "ml");
            p.mark_output(t1);
            p.mark_output(t2);
            (p, t1, t2)
        };

        let contended =
            CostModel::new(AcceleratorFleet::workstation().with_capacity(DeviceKind::Tpu, 1), stats.clone());
        let (mut p1, t1, t2) = program();
        let plan = contended.place(&mut p1).unwrap();
        // Training's device win is enormous, so the loser waits rather
        // than falling back to the host.
        assert_eq!(p1.node(t1).annotations.device, Some(DeviceKind::Tpu));
        assert_eq!(p1.node(t2).annotations.device, Some(DeviceKind::Tpu));
        assert!(plan.queue_wait_seconds > 0.0);
        assert!(p1.node(t1).annotations.shard_queue_waits.is_none());
        let waits = p1.node(t2).annotations.shard_queue_waits.as_ref().unwrap();
        assert!((waits[0] - plan.queue_wait_seconds).abs() < 1e-12);
        assert!(
            plan.node_seconds[&t2] > plan.node_seconds[&t1],
            "the queued slot's wait rides its critical path"
        );

        // Two physical TPUs: no queue, identical estimates.
        let wide =
            CostModel::new(AcceleratorFleet::workstation().with_capacity(DeviceKind::Tpu, 2), stats.clone());
        let (mut p2, w1, w2) = program();
        let plan2 = wide.place(&mut p2).unwrap();
        assert_eq!(plan2.queue_wait_seconds, 0.0);
        assert!((plan2.node_seconds[&w1] - plan2.node_seconds[&w2]).abs() < 1e-12);

        // Undeclared capacity keeps the historical exclusive-access
        // pricing bit-exact.
        let fiction = CostModel::new(AcceleratorFleet::workstation(), stats);
        let (mut p3, f1, f2) = program();
        let plan3 = fiction.place(&mut p3).unwrap();
        assert_eq!(plan3.queue_wait_seconds, 0.0);
        assert_eq!(plan3.node_seconds[&f1], plan2.node_seconds[&w1]);
        assert_eq!(plan3.node_seconds[&f2], plan2.node_seconds[&w2]);
    }

    /// When waiting beats the exclusive-price fiction, the gate sends
    /// the queued slot back to its host: two same-stage 2M-row sorts
    /// contend for one FPGA whose win over the host is under 2x, so
    /// serving the second from the queue would be slower than just
    /// running it on the CPU.
    #[test]
    fn contention_falls_back_to_host_when_waiting_loses() {
        let mut stats = HashMap::new();
        stats.insert(
            TableRef::new("db1", "big"),
            TableStats {
                rows: 2_000_000.0,
                row_bytes: 64.0,
            },
        );
        let sort = |col: &str| Operator::Sort {
            keys: vec![SortSpec {
                column: col.into(),
                ascending: true,
            }],
        };
        let m = CostModel::new(
            AcceleratorFleet::workstation().with_capacity(DeviceKind::Fpga, 1),
            stats,
        );
        let mut p = Program::new();
        let s = p.add_source(Operator::scan(TableRef::new("db1", "big")), "sql");
        let s1 = p.add_node(sort("a"), vec![s], "sql");
        let s2 = p.add_node(sort("b"), vec![s], "sql");
        p.mark_output(s1);
        p.mark_output(s2);
        let plan = m.place(&mut p).unwrap();
        assert_eq!(p.node(s1).annotations.device, Some(DeviceKind::Fpga));
        assert_eq!(
            p.node(s2).annotations.device,
            Some(DeviceKind::Cpu),
            "queued sort falls back to the host"
        );
        assert_eq!(plan.queue_wait_seconds, 0.0, "a fallback never waits");
    }
}



//! The Polystore++ optimizer (§IV-B.3, §IV-C).
//!
//! Three layers, matching Fig. 6:
//!
//! * **L1 rewrites** ([`rewrite`]) — semantic, engine-agnostic IR
//!   transformations: predicate/projection pushdown into scans, filter
//!   fusion, join-algorithm selection.
//! * **Cost model + placement** ([`cost`]) — cardinality estimation,
//!   per-(operator, device) simulated-cost prediction from the
//!   accelerator kernel models, migration-cost estimation from the
//!   interconnect models, and a greedy HEFT-style placement pass that
//!   assigns every node an engine and a device.
//! * **Design-space exploration** ([`dse`]) — the §IV-C black-box
//!   multi-objective optimizer: categorical/ordinal design spaces,
//!   random search, and **active learning** with a random-forest
//!   surrogate ([`forest`]) that iteratively samples near the predicted
//!   Pareto front (Fig. 8), plus Pareto/hypervolume utilities.
//!
//! # Examples
//!
//! ```
//! use pspp_optimizer::dse::{DesignSpace, Param};
//!
//! let space = DesignSpace::new(vec![
//!     Param::categorical("device", &["cpu", "gpu", "fpga"]),
//!     Param::ordinal("batch", &[8.0, 16.0, 32.0, 64.0]),
//! ]);
//! assert_eq!(space.size(), 12);
//! ```

pub mod cost;
pub mod dse;
pub mod forest;
pub mod rewrite;

pub use cost::{CostModel, PlacementPlan, TableStats};
pub use dse::{ActiveLearner, DesignSpace, Objectives, Param, ParetoFront, Point, RandomSearch};
pub use forest::{RandomForest, RegressionTree};
pub use rewrite::{optimize_l1, OptLevel, RewriteReport};

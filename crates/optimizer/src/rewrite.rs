//! L1 optimizations: semantic, engine-agnostic IR rewrites (Fig. 6).
//!
//! Rules implemented:
//!
//! 1. **Predicate pushdown** — a `Filter` directly above a `Scan` is
//!    merged into the scan's pushed-down predicate (§III-A.2's reduced
//!    data-access traffic starts here).
//! 2. **Projection pushdown** — a `Project` directly above a `Scan`
//!    becomes the scan's projection list.
//! 3. **Filter fusion** — `Filter∘Filter` chains fuse into one
//!    conjunction (operator fusion à la Weld \[19\]).
//! 4. **Join-algorithm selection** — `SortMergeJoin` is rewritten to
//!    `HashJoin` unless an input is already sorted on the join key;
//!    a `HashJoin` over two sorted inputs becomes a `SortMergeJoin`.
//!
//! Fused nodes are *not* removed: they are marked
//! [`fused_into_consumer`](pspp_ir::Annotations::fused_into_consumer)
//! and forward their input unchanged, which keeps node ids stable for
//! the later passes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pspp_common::Predicate;
use pspp_ir::{NodeId, Operator, Program};

/// How much of the optimizer to run — the Fig. 6 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization: literal program, host CPU everywhere.
    None,
    /// L1 rewrites only.
    L1,
    /// L1 + cost-based placement on engines and accelerators.
    L2,
    /// L2 + pipelined stage execution.
    L3,
}

impl OptLevel {
    /// All levels, in ascending order.
    pub fn all() -> [OptLevel; 4] {
        [OptLevel::None, OptLevel::L1, OptLevel::L2, OptLevel::L3]
    }

    /// Whether L1 rewrites run at this level.
    pub fn rewrites(self) -> bool {
        self != OptLevel::None
    }

    /// Whether cost-based placement runs at this level.
    pub fn placement(self) -> bool {
        matches!(self, OptLevel::L2 | OptLevel::L3)
    }

    /// Whether stages execute pipelined at this level.
    pub fn pipelined(self) -> bool {
        self == OptLevel::L3
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptLevel::None => "none",
            OptLevel::L1 => "L1",
            OptLevel::L2 => "L1+L2",
            OptLevel::L3 => "L1+L2+L3",
        };
        f.write_str(s)
    }
}

/// Which rules fired, and how often.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RewriteReport {
    /// Predicates merged into scans.
    pub predicate_pushdowns: usize,
    /// Projections merged into scans.
    pub projection_pushdowns: usize,
    /// Filter pairs fused.
    pub filter_fusions: usize,
    /// Join algorithms switched.
    pub join_rewrites: usize,
}

impl RewriteReport {
    /// Total rule applications.
    pub fn total(&self) -> usize {
        self.predicate_pushdowns
            + self.projection_pushdowns
            + self.filter_fusions
            + self.join_rewrites
    }
}

/// Runs the L1 rewrite suite in place.
pub fn optimize_l1(program: &mut Program) -> RewriteReport {
    let mut report = RewriteReport::default();
    // Iterate to fixpoint: pushing one filter may expose another.
    loop {
        let before = report.total();
        fuse_filter_chains(program, &mut report);
        push_predicates(program, &mut report);
        push_projections(program, &mut report);
        select_join_algorithms(program, &mut report);
        if report.total() == before {
            break;
        }
    }
    report
}

/// Follows fused nodes down to the live producer.
pub fn resolve_fused(program: &Program, mut id: NodeId) -> NodeId {
    while program.node(id).annotations.fused_into_consumer {
        id = program.node(id).inputs[0];
    }
    id
}

fn single_consumer_map(program: &Program) -> HashMap<NodeId, usize> {
    let mut counts: HashMap<NodeId, usize> = HashMap::new();
    for n in program.nodes() {
        for &i in &n.inputs {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    counts
}

fn push_predicates(program: &mut Program, report: &mut RewriteReport) {
    let consumers = single_consumer_map(program);
    let ids: Vec<NodeId> = program.nodes().iter().map(|n| n.id).collect();
    for id in ids {
        if program.node(id).annotations.fused_into_consumer {
            continue;
        }
        let Operator::Filter { predicate } = program.node(id).op.clone() else {
            continue;
        };
        let input = resolve_fused(program, program.node(id).inputs[0]);
        if consumers.get(&input).copied().unwrap_or(0) != 1 {
            continue; // shared input: pushing would change other consumers
        }
        let input_node = program.node(input).clone();
        if let Operator::Scan {
            table,
            predicate: scan_pred,
            projection,
        } = input_node.op
        {
            let merged = if scan_pred == Predicate::True {
                predicate
            } else {
                scan_pred.and(predicate)
            };
            program.node_mut(input).op = Operator::Scan {
                table,
                predicate: merged,
                projection,
            };
            program.node_mut(id).annotations.fused_into_consumer = true;
            report.predicate_pushdowns += 1;
        }
    }
}

fn push_projections(program: &mut Program, report: &mut RewriteReport) {
    let consumers = single_consumer_map(program);
    let ids: Vec<NodeId> = program.nodes().iter().map(|n| n.id).collect();
    for id in ids {
        if program.node(id).annotations.fused_into_consumer {
            continue;
        }
        let Operator::Project { columns } = program.node(id).op.clone() else {
            continue;
        };
        let input = resolve_fused(program, program.node(id).inputs[0]);
        if consumers.get(&input).copied().unwrap_or(0) != 1 {
            continue;
        }
        let input_node = program.node(input).clone();
        if let Operator::Scan {
            table,
            predicate,
            projection: None,
        } = input_node.op
        {
            // Only safe if the scan predicate references projected
            // columns — conservatively require predicate == True or all
            // referenced columns kept. We keep it simple: only push when
            // the scan has no predicate yet OR the predicate columns are
            // included (checked by the runtime anyway); conservative
            // variant: predicate True.
            if predicate == Predicate::True {
                program.node_mut(input).op = Operator::Scan {
                    table,
                    predicate,
                    projection: Some(columns),
                };
                program.node_mut(id).annotations.fused_into_consumer = true;
                report.projection_pushdowns += 1;
            }
        }
    }
}

fn fuse_filter_chains(program: &mut Program, report: &mut RewriteReport) {
    let consumers = single_consumer_map(program);
    let ids: Vec<NodeId> = program.nodes().iter().map(|n| n.id).collect();
    for id in ids {
        if program.node(id).annotations.fused_into_consumer {
            continue;
        }
        let Operator::Filter { predicate: upper } = program.node(id).op.clone() else {
            continue;
        };
        let input = resolve_fused(program, program.node(id).inputs[0]);
        if consumers.get(&input).copied().unwrap_or(0) != 1 || input == id {
            continue;
        }
        let input_node = program.node(input).clone();
        if let Operator::Filter { predicate: lower } = input_node.op {
            program.node_mut(id).op = Operator::Filter {
                predicate: lower.and(upper),
            };
            program.node_mut(input).annotations.fused_into_consumer = true;
            report.filter_fusions += 1;
        }
    }
}

fn select_join_algorithms(program: &mut Program, report: &mut RewriteReport) {
    let ids: Vec<NodeId> = program.nodes().iter().map(|n| n.id).collect();
    for id in ids {
        let node = program.node(id).clone();
        match node.op {
            Operator::SortMergeJoin { left_on, right_on } => {
                let sorted = |input: NodeId, col: &str| {
                    let input = resolve_fused(program, input);
                    matches!(
                        &program.node(input).op,
                        Operator::Sort { keys } if keys.first().is_some_and(|k| k.column == col && k.ascending)
                    )
                };
                if !sorted(node.inputs[0], &left_on) && !sorted(node.inputs[1], &right_on) {
                    program.node_mut(id).op = Operator::HashJoin { left_on, right_on };
                    report.join_rewrites += 1;
                }
            }
            Operator::HashJoin { left_on, right_on } => {
                let sorted = |input: NodeId, col: &str| {
                    let input = resolve_fused(program, input);
                    matches!(
                        &program.node(input).op,
                        Operator::Sort { keys } if keys.first().is_some_and(|k| k.column == col && k.ascending)
                    )
                };
                if sorted(node.inputs[0], &left_on) && sorted(node.inputs[1], &right_on) {
                    program.node_mut(id).op = Operator::SortMergeJoin { left_on, right_on };
                    report.join_rewrites += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::TableRef;
    use pspp_ir::SortSpec;

    fn scan(p: &mut Program) -> NodeId {
        p.add_source(Operator::scan(TableRef::new("db", "t")), "sql")
    }

    #[test]
    fn predicate_pushes_into_scan() {
        let mut p = Program::new();
        let s = scan(&mut p);
        let f = p.add_node(
            Operator::Filter {
                predicate: Predicate::gt("a", 5i64),
            },
            vec![s],
            "sql",
        );
        p.mark_output(f);
        let report = optimize_l1(&mut p);
        assert_eq!(report.predicate_pushdowns, 1);
        assert!(p.node(f).annotations.fused_into_consumer);
        match &p.node(s).op {
            Operator::Scan { predicate, .. } => assert_eq!(*predicate, Predicate::gt("a", 5i64)),
            _ => panic!(),
        }
        assert_eq!(resolve_fused(&p, f), s);
    }

    #[test]
    fn filter_chain_fuses_then_pushes() {
        let mut p = Program::new();
        let s = scan(&mut p);
        let f1 = p.add_node(
            Operator::Filter {
                predicate: Predicate::gt("a", 5i64),
            },
            vec![s],
            "sql",
        );
        let f2 = p.add_node(
            Operator::Filter {
                predicate: Predicate::lt("a", 10i64),
            },
            vec![f1],
            "sql",
        );
        p.mark_output(f2);
        let report = optimize_l1(&mut p);
        assert_eq!(report.filter_fusions, 1);
        assert_eq!(report.predicate_pushdowns, 1);
        // Both filters end up fused; the scan carries the conjunction.
        match &p.node(s).op {
            Operator::Scan { predicate, .. } => {
                assert!(matches!(predicate, Predicate::And(..)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn projection_pushes_only_without_scan_predicate() {
        let mut p = Program::new();
        let s = scan(&mut p);
        let proj = p.add_node(
            Operator::Project {
                columns: vec!["a".into()],
            },
            vec![s],
            "sql",
        );
        p.mark_output(proj);
        let report = optimize_l1(&mut p);
        assert_eq!(report.projection_pushdowns, 1);
        match &p.node(s).op {
            Operator::Scan { projection, .. } => {
                assert_eq!(projection.as_deref(), Some(&["a".to_owned()][..]));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn shared_scan_blocks_pushdown() {
        let mut p = Program::new();
        let s = scan(&mut p);
        let f1 = p.add_node(
            Operator::Filter {
                predicate: Predicate::gt("a", 5i64),
            },
            vec![s],
            "sql",
        );
        let f2 = p.add_node(
            Operator::Filter {
                predicate: Predicate::lt("a", 2i64),
            },
            vec![s],
            "sql",
        );
        p.mark_output(f1);
        p.mark_output(f2);
        let report = optimize_l1(&mut p);
        assert_eq!(report.predicate_pushdowns, 0);
    }

    #[test]
    fn merge_join_on_unsorted_inputs_becomes_hash_join() {
        let mut p = Program::new();
        let a = scan(&mut p);
        let b = scan(&mut p);
        let j = p.add_node(
            Operator::SortMergeJoin {
                left_on: "k".into(),
                right_on: "k".into(),
            },
            vec![a, b],
            "sql",
        );
        p.mark_output(j);
        let report = optimize_l1(&mut p);
        assert_eq!(report.join_rewrites, 1);
        assert_eq!(p.node(j).op.name(), "hash_join");
    }

    #[test]
    fn hash_join_on_sorted_inputs_becomes_merge_join() {
        let mut p = Program::new();
        let a = scan(&mut p);
        let sa = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "k".into(),
                    ascending: true,
                }],
            },
            vec![a],
            "sql",
        );
        let b = scan(&mut p);
        let sb = p.add_node(
            Operator::Sort {
                keys: vec![SortSpec {
                    column: "k".into(),
                    ascending: true,
                }],
            },
            vec![b],
            "sql",
        );
        let j = p.add_node(
            Operator::HashJoin {
                left_on: "k".into(),
                right_on: "k".into(),
            },
            vec![sa, sb],
            "sql",
        );
        p.mark_output(j);
        let report = optimize_l1(&mut p);
        assert_eq!(report.join_rewrites, 1);
        assert_eq!(p.node(j).op.name(), "sort_merge_join");
    }

    #[test]
    fn opt_levels_ordering() {
        assert!(!OptLevel::None.rewrites());
        assert!(OptLevel::L1.rewrites() && !OptLevel::L1.placement());
        assert!(OptLevel::L2.placement() && !OptLevel::L2.pipelined());
        assert!(OptLevel::L3.pipelined());
        assert_eq!(OptLevel::L3.to_string(), "L1+L2+L3");
    }
}

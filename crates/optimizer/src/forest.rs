//! Random-forest regression: the surrogate model of the active-learning
//! loop (§IV-C: "one can use randomized decision forests \[69\] as the
//! base predictors").

use pspp_common::SplitMix64;

/// A CART regression tree trained by recursive variance-minimizing
/// splits.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug, Clone, PartialEq)]
enum TreeNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split (None = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

impl RegressionTree {
    /// Fits a tree on `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or `xs` is empty.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &TreeConfig, rng: &mut SplitMix64) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit on empty data");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let indices: Vec<usize> = (0..xs.len()).collect();
        tree.grow(xs, ys, &indices, 0, config, rng);
        tree
    }

    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut SplitMix64,
    ) -> usize {
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
        let node_id = self.nodes.len();
        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || Self::variance(ys, indices) < 1e-12
        {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return node_id;
        }
        let n_features = xs[0].len();
        let k = config.max_features.unwrap_or(n_features).min(n_features);
        let mut features: Vec<usize> = (0..n_features).collect();
        rng.shuffle(&mut features);
        features.truncate(k.max(1));

        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, score
        for &f in &features {
            let mut vals: Vec<f64> = indices.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            for w in vals.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (l, r): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| xs[i][f] <= threshold);
                if l.is_empty() || r.is_empty() {
                    continue;
                }
                let score = Self::variance(ys, &l) * l.len() as f64
                    + Self::variance(ys, &r) * r.len() as f64;
                if best.is_none() || score < best.expect("checked").2 {
                    best = Some((f, threshold, score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return node_id;
        };
        let (l, r): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        // Reserve the split slot, grow children, then patch.
        self.nodes.push(TreeNode::Leaf { value: mean });
        let left = self.grow(xs, ys, &l, depth + 1, config, rng);
        let right = self.grow(xs, ys, &r, depth + 1, config, rng);
        self.nodes[node_id] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    fn variance(ys: &[f64], indices: &[usize]) -> f64 {
        let n = indices.len() as f64;
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / n;
        indices.iter().map(|&i| (ys[i] - mean).powi(2)).sum::<f64>() / n
    }

    /// Predicts one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the fitted feature count.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// A bagged ensemble of regression trees with feature subsampling.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap resamples of `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched training data.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, seed: u64) -> Self {
        assert!(!xs.is_empty(), "cannot fit on empty data");
        let mut rng = SplitMix64::new(seed);
        let n_features = xs[0].len();
        let config = TreeConfig {
            max_features: Some(((n_features as f64).sqrt().ceil() as usize).max(1)),
            ..TreeConfig::default()
        };
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            // Bootstrap sample.
            let (bx, by): (Vec<Vec<f64>>, Vec<f64>) = (0..xs.len())
                .map(|_| {
                    let i = rng.next_index(xs.len());
                    (xs[i].clone(), ys[i])
                })
                .unzip();
            trees.push(RegressionTree::fit(&bx, &by, &config, &mut rng));
        }
        RandomForest { trees }
    }

    /// Mean prediction across trees.
    ///
    /// # Panics
    ///
    /// Panics if the forest is empty.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "empty forest");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Prediction standard deviation across trees — the uncertainty
    /// signal active learning exploits.
    pub fn predict_std(&self, x: &[f64]) -> f64 {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        (preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64).sqrt()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (i as f64 / n as f64, j as f64 / n as f64);
                xs.push(vec![a, b]);
                ys.push(f(a, b));
            }
        }
        (xs, ys)
    }

    #[test]
    fn tree_fits_step_function_exactly() {
        let (xs, ys) = grid(12, |a, _| if a > 0.5 { 10.0 } else { -10.0 });
        let mut rng = SplitMix64::new(1);
        let tree = RegressionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict(&[0.9, 0.2]), 10.0);
        assert_eq!(tree.predict(&[0.1, 0.8]), -10.0);
    }

    #[test]
    fn tree_constant_target_is_single_leaf() {
        let (xs, ys) = grid(5, |_, _| 3.0);
        let mut rng = SplitMix64::new(1);
        let tree = RegressionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng);
        assert!(tree.is_empty());
        assert_eq!(tree.predict(&[0.5, 0.5]), 3.0);
    }

    #[test]
    fn forest_approximates_smooth_function() {
        let (xs, ys) = grid(15, |a, b| a * 2.0 + b);
        let forest = RandomForest::fit(&xs, &ys, 30, 7);
        let mut err = 0.0;
        let mut count = 0;
        for (x, y) in xs.iter().zip(&ys) {
            err += (forest.predict(x) - y).abs();
            count += 1;
        }
        let mae = err / count as f64;
        assert!(mae < 0.15, "mae {mae}");
    }

    #[test]
    fn forest_uncertainty_higher_off_training_manifold() {
        // Train only on the left half; uncertainty on the right should
        // not collapse to zero while a training point's should be small.
        let (xs, ys) = grid(10, |a, b| (a * 6.0).sin() + b);
        let left: Vec<(Vec<f64>, f64)> = xs
            .iter()
            .zip(&ys)
            .filter(|(x, _)| x[0] < 0.5)
            .map(|(x, y)| (x.clone(), *y))
            .collect();
        let (lx, ly): (Vec<_>, Vec<_>) = left.into_iter().unzip();
        let forest = RandomForest::fit(&lx, &ly, 40, 3);
        let on = forest.predict_std(&[0.2, 0.2]);
        let off = forest.predict_std(&[0.95, 0.95]);
        assert!(off >= on, "off-manifold std {off} vs on {on}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = grid(8, |a, b| a + b);
        let f1 = RandomForest::fit(&xs, &ys, 10, 42);
        let f2 = RandomForest::fit(&xs, &ys, 10, 42);
        assert_eq!(f1.predict(&[0.3, 0.7]), f2.predict(&[0.3, 0.7]));
        assert_eq!(f1.len(), 10);
    }
}

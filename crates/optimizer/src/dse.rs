//! Black-box multi-objective design-space exploration (§IV-C, Fig. 8).
//!
//! The design space mixes categorical and ordinal variables (derivatives
//! are unavailable, eq. 1 of the paper), objectives are vector-valued
//! (latency, energy, ...), and evaluation is expensive. Two searchers
//! are provided:
//!
//! * [`RandomSearch`] — the baseline: uniform sampling.
//! * [`ActiveLearner`] — the paper's approach: fit a random-forest
//!   surrogate per objective, predict over a candidate pool, keep the
//!   predicted-Pareto points, evaluate those for real, retrain
//!   ("interleaving exploration and exploitation", §IV-C.1).
//!
//! Quality is compared via the dominated [`ParetoFront::hypervolume`] indicator.

use pspp_common::{Error, Result, SplitMix64};

use crate::forest::RandomForest;

/// One design-space dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Dimension name.
    pub name: String,
    /// Level encodings fed to the surrogate (categoricals get their
    /// index; ordinals their actual value).
    pub levels: Vec<f64>,
    /// Human-readable labels per level.
    pub labels: Vec<String>,
}

impl Param {
    /// A categorical dimension.
    pub fn categorical(name: impl Into<String>, options: &[&str]) -> Self {
        Param {
            name: name.into(),
            levels: (0..options.len()).map(|i| i as f64).collect(),
            labels: options.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// An ordinal dimension over numeric values.
    pub fn ordinal(name: impl Into<String>, values: &[f64]) -> Self {
        Param {
            name: name.into(),
            levels: values.to_vec(),
            labels: values.iter().map(f64::to_string).collect(),
        }
    }

    /// Number of levels.
    pub fn cardinality(&self) -> usize {
        self.levels.len()
    }
}

/// A full design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    params: Vec<Param>,
}

/// A point: one chosen level index per dimension.
pub type Point = Vec<usize>;

/// The objective vector at a point (all objectives are minimized).
pub type Objectives = Vec<f64>;

impl DesignSpace {
    /// Builds a space.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty.
    pub fn new(params: Vec<Param>) -> Self {
        assert!(params.iter().all(|p| p.cardinality() > 0));
        DesignSpace { params }
    }

    /// The dimensions.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total number of configurations.
    pub fn size(&self) -> usize {
        self.params.iter().map(Param::cardinality).product()
    }

    /// Uniformly random point.
    pub fn sample(&self, rng: &mut SplitMix64) -> Point {
        self.params
            .iter()
            .map(|p| rng.next_index(p.cardinality()))
            .collect()
    }

    /// Surrogate features of a point.
    pub fn encode(&self, point: &Point) -> Vec<f64> {
        point
            .iter()
            .zip(&self.params)
            .map(|(&i, p)| p.levels[i])
            .collect()
    }

    /// Human-readable rendering of a point.
    pub fn describe(&self, point: &Point) -> String {
        point
            .iter()
            .zip(&self.params)
            .map(|(&i, p)| format!("{}={}", p.name, p.labels[i]))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A set of mutually non-dominated `(point, objectives)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFront {
    entries: Vec<(Point, Objectives)>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// `a` dominates `b` when it is no worse everywhere and better
    /// somewhere (all objectives minimized).
    pub fn dominates(a: &[f64], b: &[f64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    }

    /// Inserts a point, dropping dominated entries. Returns whether the
    /// point joined the front.
    pub fn insert(&mut self, point: Point, objectives: Objectives) -> bool {
        if self
            .entries
            .iter()
            .any(|(_, o)| Self::dominates(o, &objectives) || *o == objectives)
        {
            return false;
        }
        self.entries
            .retain(|(_, o)| !Self::dominates(&objectives, o));
        self.entries.push((point, objectives));
        true
    }

    /// The non-dominated entries.
    pub fn entries(&self) -> &[(Point, Objectives)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dominated hypervolume against `reference` (must be dominated by
    /// every front point). Supports 2-objective fronts exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Optimizer`] for non-2-objective fronts.
    pub fn hypervolume(&self, reference: &[f64]) -> Result<f64> {
        if self.entries.is_empty() {
            return Ok(0.0);
        }
        if reference.len() != 2 || self.entries.iter().any(|(_, o)| o.len() != 2) {
            return Err(Error::Optimizer(
                "hypervolume implemented for 2 objectives".into(),
            ));
        }
        let mut pts: Vec<&Objectives> = self.entries.iter().map(|(_, o)| o).collect();
        pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let mut hv = 0.0;
        let mut prev_y = reference[1];
        for p in pts {
            let width = (reference[0] - p[0]).max(0.0);
            let height = (prev_y - p[1]).max(0.0);
            hv += width * height;
            prev_y = prev_y.min(p[1]);
        }
        Ok(hv)
    }
}

/// Uniform random search baseline.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    rng: SplitMix64,
}

impl RandomSearch {
    /// Creates a seeded searcher.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: SplitMix64::new(seed),
        }
    }

    /// Evaluates `budget` random points, returning the front and the
    /// evaluation log.
    pub fn run<F: FnMut(&Point) -> Objectives>(
        &mut self,
        space: &DesignSpace,
        budget: usize,
        mut eval: F,
    ) -> (ParetoFront, Vec<(Point, Objectives)>) {
        let mut front = ParetoFront::new();
        let mut log = Vec::with_capacity(budget);
        for _ in 0..budget {
            let p = space.sample(&mut self.rng);
            let o = eval(&p);
            front.insert(p.clone(), o.clone());
            log.push((p, o));
        }
        (front, log)
    }
}

/// Active-learning searcher: random-forest surrogates steering samples
/// toward the predicted Pareto front (Fig. 8).
#[derive(Debug, Clone)]
pub struct ActiveLearner {
    rng: SplitMix64,
    /// Initial random warm-up evaluations.
    pub warmup: usize,
    /// Evaluations per active-learning iteration.
    pub batch: usize,
    /// Candidate pool size scanned by the surrogate per iteration.
    pub pool: usize,
    /// Trees per forest.
    pub trees: usize,
}

impl ActiveLearner {
    /// Creates a seeded learner with sensible defaults.
    pub fn new(seed: u64) -> Self {
        ActiveLearner {
            rng: SplitMix64::new(seed),
            warmup: 10,
            batch: 5,
            pool: 200,
            trees: 24,
        }
    }

    /// Runs until `budget` evaluations are spent; returns the front and
    /// the evaluation log.
    pub fn run<F: FnMut(&Point) -> Objectives>(
        &mut self,
        space: &DesignSpace,
        budget: usize,
        mut eval: F,
    ) -> (ParetoFront, Vec<(Point, Objectives)>) {
        let mut front = ParetoFront::new();
        let mut log: Vec<(Point, Objectives)> = Vec::new();

        let warmup = self.warmup.min(budget);
        for _ in 0..warmup {
            let p = space.sample(&mut self.rng);
            let o = eval(&p);
            front.insert(p.clone(), o.clone());
            log.push((p, o));
        }

        while log.len() < budget {
            let n_obj = log.first().map_or(0, |(_, o)| o.len());
            if n_obj == 0 {
                break;
            }
            // Fit one surrogate per objective on everything seen so far.
            let xs: Vec<Vec<f64>> = log.iter().map(|(p, _)| space.encode(p)).collect();
            let forests: Vec<RandomForest> = (0..n_obj)
                .map(|k| {
                    let ys: Vec<f64> = log.iter().map(|(_, o)| o[k]).collect();
                    RandomForest::fit(&xs, &ys, self.trees, self.rng.next_u64())
                })
                .collect();
            // Predict a candidate pool and keep its non-dominated subset
            // (the predicted Pareto region).
            let mut predicted = ParetoFront::new();
            for _ in 0..self.pool {
                let p = space.sample(&mut self.rng);
                let enc = space.encode(&p);
                let o: Objectives = forests.iter().map(|f| f.predict(&enc)).collect();
                predicted.insert(p, o);
            }
            // Evaluate up to `batch` predicted-Pareto points for real,
            // preferring uncertain ones (exploration/exploitation mix).
            let mut candidates: Vec<(Point, f64)> = predicted
                .entries()
                .iter()
                .map(|(p, _)| {
                    let enc = space.encode(p);
                    let unc: f64 = forests.iter().map(|f| f.predict_std(&enc)).sum();
                    (p.clone(), unc)
                })
                .collect();
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
            let take = self.batch.min(budget - log.len()).max(1);
            let mut taken = 0;
            for (p, _) in candidates {
                if taken >= take || log.len() >= budget {
                    break;
                }
                if log.iter().any(|(seen, _)| *seen == p) {
                    continue; // don't waste budget re-evaluating
                }
                let o = eval(&p);
                front.insert(p.clone(), o.clone());
                log.push((p, o));
                taken += 1;
            }
            if taken == 0 {
                // Pool exhausted (tiny spaces): fall back to random.
                let p = space.sample(&mut self.rng);
                if log.iter().any(|(seen, _)| *seen == p) && space.size() <= log.len() {
                    break; // space fully enumerated
                }
                let o = eval(&p);
                front.insert(p.clone(), o.clone());
                log.push((p, o));
            }
        }
        (front, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::ordinal("x", &(0..20).map(|i| i as f64 / 19.0).collect::<Vec<_>>()),
            Param::ordinal("y", &(0..20).map(|i| i as f64 / 19.0).collect::<Vec<_>>()),
        ])
    }

    /// A classic 2-objective trade-off: f1 = x, f2 = 1 - sqrt(x) + y²;
    /// the true Pareto front lies at y = 0.
    fn eval(space: &DesignSpace, p: &Point) -> Objectives {
        let enc = space.encode(p);
        let (x, y) = (enc[0], enc[1]);
        vec![x, 1.0 - x.sqrt() + y * y]
    }

    #[test]
    fn pareto_insert_and_dominance() {
        let mut f = ParetoFront::new();
        assert!(f.insert(vec![0], vec![1.0, 5.0]));
        assert!(f.insert(vec![1], vec![5.0, 1.0]));
        assert!(!f.insert(vec![2], vec![6.0, 2.0])); // dominated
        assert!(f.insert(vec![3], vec![0.5, 0.5])); // dominates both
        assert_eq!(f.len(), 1);
        assert!(ParetoFront::dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(!ParetoFront::dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn hypervolume_known_case() {
        let mut f = ParetoFront::new();
        f.insert(vec![0], vec![1.0, 2.0]);
        f.insert(vec![1], vec![2.0, 1.0]);
        // Reference (4,4): boxes (4-1)x(4-2)=6 plus (4-2)x(2-1)=2.
        assert!((f.hypervolume(&[4.0, 4.0]).unwrap() - 8.0).abs() < 1e-12);
        assert_eq!(ParetoFront::new().hypervolume(&[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn hypervolume_rejects_other_dims() {
        let mut f = ParetoFront::new();
        f.insert(vec![0], vec![1.0, 2.0, 3.0]);
        assert!(f.hypervolume(&[4.0, 4.0]).is_err());
    }

    #[test]
    fn active_learning_beats_random_at_equal_budget() {
        let s = space();
        let budget = 60;
        let reference = [2.0, 2.0];

        let mut hv_al_wins = 0;
        for seed in 0..5 {
            let (f_rand, log_r) = RandomSearch::new(seed).run(&s, budget, |p| eval(&s, p));
            let (f_al, log_a) = ActiveLearner::new(seed).run(&s, budget, |p| eval(&s, p));
            assert_eq!(log_r.len(), budget);
            assert!(log_a.len() <= budget);
            let hv_r = f_rand.hypervolume(&reference).unwrap();
            let hv_a = f_al.hypervolume(&reference).unwrap();
            if hv_a >= hv_r {
                hv_al_wins += 1;
            }
        }
        assert!(
            hv_al_wins >= 3,
            "active learning should win most seeds, won {hv_al_wins}/5"
        );
    }

    #[test]
    fn active_learner_respects_budget_and_dedups() {
        let s = DesignSpace::new(vec![Param::categorical("d", &["a", "b", "c"])]);
        let mut evals = 0usize;
        let (_, log) = ActiveLearner::new(1).run(&s, 10, |_| {
            evals += 1;
            vec![1.0, 1.0]
        });
        assert!(log.len() <= 10);
        assert_eq!(evals, log.len());
    }

    #[test]
    fn describe_points() {
        let s = DesignSpace::new(vec![
            Param::categorical("device", &["cpu", "fpga"]),
            Param::ordinal("batch", &[8.0, 16.0]),
        ]);
        assert_eq!(s.describe(&vec![1, 0]), "device=fpga, batch=8");
        assert_eq!(s.size(), 4);
    }
}

//! A key/value data-processing engine (Accumulo/Redis-like substrate).
//!
//! One of the paper's heterogeneous data stores (Fig. 1 pairs an RDBMS
//! with a key/value store and a timeseries store). Supports versioned
//! puts, point gets, deletes, prefix and range scans, and TTL expiry
//! against a logical clock. Every operation posts simulated CPU cost to
//! the shared [`CostLedger`].
//!
//! # Examples
//!
//! ```
//! use pspp_kvstore::KvStore;
//! use pspp_common::Value;
//!
//! let mut kv = KvStore::new("profiles");
//! kv.put("user:1", Value::from("ada"));
//! assert_eq!(kv.get("user:1"), Some(&Value::Str("ada".into())));
//! assert_eq!(kv.get("user:2"), None);
//! ```

use std::collections::BTreeMap;

use pspp_accel::kernels::KernelReport;
use pspp_accel::{CostLedger, DeviceProfile, KernelClass};
use pspp_common::{EngineId, Row, Value};

/// Maximum versions retained per key.
const MAX_VERSIONS: usize = 4;

/// One stored version of a value.
#[derive(Debug, Clone, PartialEq)]
struct Versioned {
    value: Value,
    /// Logical write time.
    written_at: u64,
    /// Expiry tick (None = immortal).
    expires_at: Option<u64>,
}

/// The key/value engine.
#[derive(Debug, Clone)]
pub struct KvStore {
    id: EngineId,
    data: BTreeMap<String, Vec<Versioned>>,
    clock: u64,
    ledger: CostLedger,
    cpu: DeviceProfile,
}

impl KvStore {
    /// An empty store.
    pub fn new(id: impl Into<EngineId>) -> Self {
        KvStore {
            id: id.into(),
            data: BTreeMap::new(),
            clock: 0,
            ledger: CostLedger::new(),
            cpu: DeviceProfile::cpu(),
        }
    }

    /// Attaches a shared cost ledger.
    pub fn with_ledger(mut self, ledger: CostLedger) -> Self {
        self.ledger = ledger;
        self
    }

    /// The engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// The ledger this engine posts to.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock (expiring TTL'd entries lazily on read).
    pub fn tick(&mut self, by: u64) {
        self.clock += by;
    }

    /// Writes a new version of `key`.
    pub fn put(&mut self, key: impl Into<String>, value: Value) {
        self.put_with_ttl(key, value, None);
    }

    /// Writes a version that expires `ttl` ticks from now.
    pub fn put_with_ttl(&mut self, key: impl Into<String>, value: Value, ttl: Option<u64>) {
        let key = key.into();
        let bytes = (key.len() + value.byte_size()) as u64;
        let versions = self.data.entry(key).or_default();
        versions.push(Versioned {
            value,
            written_at: self.clock,
            expires_at: ttl.map(|t| self.clock + t),
        });
        if versions.len() > MAX_VERSIONS {
            versions.remove(0);
        }
        self.charge("kvstore.put", 1, bytes, 60);
    }

    /// The live value for `key`, if present and unexpired.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.charge("kvstore.get", 1, key.len() as u64, 50);
        let v = self.data.get(key)?.last()?;
        match v.expires_at {
            Some(t) if t <= self.clock => None,
            _ => Some(&v.value),
        }
    }

    /// The value as of logical time `at` (time-travel read).
    pub fn get_at(&self, key: &str, at: u64) -> Option<&Value> {
        self.charge("kvstore.get_at", 1, key.len() as u64, 80);
        let versions = self.data.get(key)?;
        versions
            .iter()
            .rev()
            .find(|v| v.written_at <= at && v.expires_at.is_none_or(|t| t > at))
            .map(|v| &v.value)
    }

    /// Removes a key entirely. Returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.charge("kvstore.delete", 1, key.len() as u64, 60);
        self.data.remove(key).is_some()
    }

    /// Number of live keys (expired keys included until compaction).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// All live `(key, value)` pairs with keys starting with `prefix`.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(&str, &Value)> {
        let out: Vec<(&str, &Value)> = self
            .data
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, vs)| {
                let v = vs.last()?;
                match v.expires_at {
                    Some(t) if t <= self.clock => None,
                    _ => Some((k.as_str(), &v.value)),
                }
            })
            .collect();
        let bytes: u64 = out
            .iter()
            .map(|(k, v)| (k.len() + v.byte_size()) as u64)
            .sum();
        self.charge(
            "kvstore.scan",
            out.len() as u64,
            bytes,
            40 + out.len() as u64 * 8,
        );
        out
    }

    /// All live pairs in `[lo, hi)` key order.
    pub fn scan_range(&self, lo: &str, hi: &str) -> Vec<(&str, &Value)> {
        let out: Vec<(&str, &Value)> = self
            .data
            .range(lo.to_owned()..hi.to_owned())
            .filter_map(|(k, vs)| {
                let v = vs.last()?;
                match v.expires_at {
                    Some(t) if t <= self.clock => None,
                    _ => Some((k.as_str(), &v.value)),
                }
            })
            .collect();
        let bytes: u64 = out
            .iter()
            .map(|(k, v)| (k.len() + v.byte_size()) as u64)
            .sum();
        self.charge(
            "kvstore.scan",
            out.len() as u64,
            bytes,
            40 + out.len() as u64 * 8,
        );
        out
    }

    /// Drops expired versions and empty keys; returns reclaimed entries.
    pub fn compact(&mut self) -> usize {
        let clock = self.clock;
        let mut reclaimed = 0;
        self.data.retain(|_, vs| {
            let before = vs.len();
            vs.retain(|v| v.expires_at.is_none_or(|t| t > clock));
            reclaimed += before - vs.len();
            !vs.is_empty()
        });
        self.charge(
            "kvstore.compact",
            reclaimed as u64,
            0,
            100 + reclaimed as u64 * 20,
        );
        reclaimed
    }

    /// Exports live pairs as two-column rows (`key: Str`, `value`), the
    /// relational projection of the KV model used by the data migrator.
    pub fn to_rows(&self) -> Vec<Row> {
        self.data
            .iter()
            .filter_map(|(k, vs)| {
                let v = vs.last()?;
                match v.expires_at {
                    Some(t) if t <= self.clock => None,
                    _ => Some(Row::from(vec![Value::from(k.clone()), v.value.clone()])),
                }
            })
            .collect()
    }

    fn charge(&self, component: &str, elems: u64, bytes: u64, cycles: u64) {
        KernelReport::charge(
            &self.cpu,
            KernelClass::FilterProject,
            elems,
            bytes,
            cycles,
            Some(&self.ledger),
            component,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::new("kv");
        kv.put("a", Value::Int(1));
        assert_eq!(kv.get("a"), Some(&Value::Int(1)));
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn versions_overwrite_and_time_travel() {
        let mut kv = KvStore::new("kv");
        kv.put("k", Value::Int(1));
        kv.tick(10);
        kv.put("k", Value::Int(2));
        assert_eq!(kv.get("k"), Some(&Value::Int(2)));
        assert_eq!(kv.get_at("k", 5), Some(&Value::Int(1)));
        assert_eq!(kv.get_at("k", 10), Some(&Value::Int(2)));
    }

    #[test]
    fn version_cap_enforced() {
        let mut kv = KvStore::new("kv");
        for i in 0..10 {
            kv.tick(1);
            kv.put("k", Value::Int(i));
        }
        // Oldest surviving version is 10 - MAX_VERSIONS.
        assert_eq!(kv.get_at("k", 7), Some(&Value::Int(6)));
        assert_eq!(kv.get_at("k", 5), None);
    }

    #[test]
    fn ttl_expiry_and_compaction() {
        let mut kv = KvStore::new("kv");
        kv.put_with_ttl("session", Value::Bool(true), Some(5));
        kv.put("forever", Value::Bool(true));
        assert!(kv.get("session").is_some());
        kv.tick(5);
        assert!(kv.get("session").is_none());
        assert!(kv.get("forever").is_some());
        let reclaimed = kv.compact();
        assert_eq!(reclaimed, 1);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_and_range_scans() {
        let mut kv = KvStore::new("kv");
        for (k, v) in [("user:1", 1i64), ("user:2", 2), ("item:9", 9)] {
            kv.put(k, Value::Int(v));
        }
        let users = kv.scan_prefix("user:");
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0, "user:1");
        let range = kv.scan_range("item:", "user:");
        assert_eq!(range.len(), 1);
    }

    #[test]
    fn expired_keys_hidden_from_scans() {
        let mut kv = KvStore::new("kv");
        kv.put_with_ttl("user:1", Value::Int(1), Some(1));
        kv.put("user:2", Value::Int(2));
        kv.tick(2);
        assert_eq!(kv.scan_prefix("user:").len(), 1);
        assert_eq!(kv.to_rows().len(), 1);
    }

    #[test]
    fn costs_are_charged() {
        let mut kv = KvStore::new("kv");
        kv.put("a", Value::Int(1));
        kv.get("a");
        assert!(kv.ledger().len() >= 2);
    }

    #[test]
    fn rows_export_shape() {
        let mut kv = KvStore::new("kv");
        kv.put("a", Value::Int(1));
        let rows = kv.to_rows();
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][0], Value::from("a"));
    }
}

//! An array data-processing engine (SciDB-like substrate).
//!
//! The paper's array store: "matrix operations in SciDB" (§I). Dense
//! n-dimensional `f64` arrays with slicing, reshaping, elementwise ops,
//! axis reductions, and 2-d matrix multiply routed through the
//! accelerator GEMM kernel. Costs are posted to the shared
//! [`CostLedger`].
//!
//! # Examples
//!
//! ```
//! use pspp_arraystore::{ArrayStore, NdArray};
//!
//! # fn main() -> pspp_common::Result<()> {
//! let mut store = ArrayStore::new("arrays");
//! store.put("a", NdArray::from_vec(vec![2, 3], (0..6).map(f64::from).collect())?)?;
//! let s = store.get("a")?.sum();
//! assert_eq!(s, 15.0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use pspp_accel::kernels::{Gemm, KernelReport, Matrix};
use pspp_accel::{CostLedger, DeviceProfile, KernelClass};
use pspp_common::{EngineId, Error, Result};

/// A dense n-dimensional array of `f64` in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl NdArray {
    /// An all-zero array.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        NdArray {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Builds from a flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when the buffer does not match the shape.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(Error::Invalid(format!(
                "shape {shape:?} needs {n} elements, got {}",
                data.len()
            )));
        }
        Ok(NdArray { shape, data })
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Element at a full index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for wrong arity or out-of-bounds index.
    pub fn get(&self, index: &[usize]) -> Result<f64> {
        Ok(self.data[self.offset(index)?])
    }

    /// Sets the element at a full index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for wrong arity or out-of-bounds index.
    pub fn set(&mut self, index: &[usize], value: f64) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(Error::Invalid(format!(
                "index arity {} vs ndim {}",
                index.len(),
                self.shape.len()
            )));
        }
        let mut off = 0usize;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            if i >= s {
                return Err(Error::Invalid(format!(
                    "index {i} out of bounds in dim {d}"
                )));
            }
            off = off * s + i;
        }
        Ok(off)
    }

    /// Reshapes without copying semantics change.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(Error::Invalid("reshape changes element count".into()));
        }
        self.shape = shape;
        Ok(self)
    }

    /// Slices `[lo, hi)` along the first axis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for bad bounds.
    pub fn slice_axis0(&self, lo: usize, hi: usize) -> Result<NdArray> {
        let d0 = *self
            .shape
            .first()
            .ok_or_else(|| Error::Invalid("cannot slice 0-d array".into()))?;
        if lo > hi || hi > d0 {
            return Err(Error::Invalid(format!("slice {lo}..{hi} out of 0..{d0}")));
        }
        let stride: usize = self.shape[1..].iter().product::<usize>().max(1);
        let mut shape = self.shape.clone();
        shape[0] = hi - lo;
        NdArray::from_vec(shape, self.data[lo * stride..hi * stride].to_vec())
    }

    /// Elementwise combination with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on shape mismatch.
    pub fn zip_with<F: Fn(f64, f64) -> f64>(&self, other: &NdArray, f: F) -> Result<NdArray> {
        if self.shape != other.shape {
            return Err(Error::Invalid(format!(
                "shape mismatch {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        NdArray::from_vec(self.shape.clone(), data)
    }

    /// Elementwise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> NdArray {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Reduces along `axis` with a binary fold, producing an array with
    /// that axis removed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for a bad axis.
    pub fn reduce_axis<F: Fn(f64, f64) -> f64>(
        &self,
        axis: usize,
        init: f64,
        f: F,
    ) -> Result<NdArray> {
        if axis >= self.shape.len() {
            return Err(Error::Invalid(format!("axis {axis} out of range")));
        }
        let out_shape: Vec<usize> = self
            .shape
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != axis)
            .map(|(_, &s)| s)
            .collect();
        let out_len: usize = out_shape.iter().product::<usize>().max(1);
        let mut out = vec![init; out_len];
        let inner: usize = self.shape[axis + 1..].iter().product::<usize>().max(1);
        let axis_len = self.shape[axis];
        let outer: usize = self.shape[..axis].iter().product::<usize>().max(1);
        for o in 0..outer {
            for a in 0..axis_len {
                for i in 0..inner {
                    let src = (o * axis_len + a) * inner + i;
                    let dst = o * inner + i;
                    out[dst] = f(out[dst], self.data[src]);
                }
            }
        }
        NdArray::from_vec(out_shape, out)
    }

    /// Converts a 2-d array into an accelerator [`Matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] unless `ndim == 2`.
    pub fn to_matrix(&self) -> Result<Matrix> {
        if self.shape.len() != 2 {
            return Err(Error::Invalid(format!(
                "to_matrix on {}-d array",
                self.ndim()
            )));
        }
        Matrix::from_vec(self.shape[0], self.shape[1], self.data.clone())
    }

    /// Builds a 2-d array from a [`Matrix`].
    pub fn from_matrix(m: &Matrix) -> NdArray {
        NdArray {
            shape: vec![m.rows(), m.cols()],
            data: m.as_slice().to_vec(),
        }
    }
}

/// The array engine: named arrays plus native operators.
#[derive(Debug, Clone)]
pub struct ArrayStore {
    id: EngineId,
    arrays: BTreeMap<String, NdArray>,
    ledger: CostLedger,
    cpu: DeviceProfile,
}

impl ArrayStore {
    /// An empty store.
    pub fn new(id: impl Into<EngineId>) -> Self {
        ArrayStore {
            id: id.into(),
            arrays: BTreeMap::new(),
            ledger: CostLedger::new(),
            cpu: DeviceProfile::cpu(),
        }
    }

    /// Attaches a shared cost ledger.
    pub fn with_ledger(mut self, ledger: CostLedger) -> Self {
        self.ledger = ledger;
        self
    }

    /// The engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// The cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Stores an array under `name` (replacing any previous).
    ///
    /// # Errors
    ///
    /// Currently infallible; reserved for quota enforcement.
    pub fn put(&mut self, name: impl Into<String>, array: NdArray) -> Result<()> {
        let bytes = (array.len() * 8) as u64;
        self.arrays.insert(name.into(), array);
        self.charge("arraystore.put", bytes / 8, bytes, bytes / 8);
        Ok(())
    }

    /// Fetches an array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableNotFound`] for unknown names.
    pub fn get(&self, name: &str) -> Result<&NdArray> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::TableNotFound(format!("array {name}")))
    }

    /// Names of stored arrays.
    pub fn names(&self) -> Vec<&str> {
        self.arrays.keys().map(String::as_str).collect()
    }

    /// Elementwise add of two stored arrays, stored as `out`.
    ///
    /// # Errors
    ///
    /// Propagates lookup and shape errors.
    pub fn add(&mut self, a: &str, b: &str, out: impl Into<String>) -> Result<()> {
        let r = self.get(a)?.zip_with(self.get(b)?, |x, y| x + y)?;
        let n = r.len() as u64;
        self.charge("arraystore.add", n, n * 8, n / 8);
        self.arrays.insert(out.into(), r);
        Ok(())
    }

    /// 2-d matrix multiply `out = a · b` on the host CPU model, stored as
    /// `out`.
    ///
    /// # Errors
    ///
    /// Propagates lookup, shape and dimension errors.
    pub fn matmul(&mut self, a: &str, b: &str, out: impl Into<String>) -> Result<()> {
        let ma = self.get(a)?.to_matrix()?;
        let mb = self.get(b)?.to_matrix()?;
        let (mc, _report) = Gemm::run(&self.cpu, &ma, &mb, Some(&self.ledger), "arraystore.matmul")
            .map_err(|e| Error::Invalid(format!("matmul: {e}")))?;
        self.arrays.insert(out.into(), NdArray::from_matrix(&mc));
        Ok(())
    }

    fn charge(&self, component: &str, elems: u64, bytes: u64, cycles: u64) {
        KernelReport::charge(
            &self.cpu,
            KernelClass::Gemm,
            elems,
            bytes,
            cycles,
            Some(&self.ledger),
            component,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr23() -> NdArray {
        NdArray::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap()
    }

    #[test]
    fn indexing_row_major() {
        let a = arr23();
        assert_eq!(a.get(&[0, 2]).unwrap(), 2.0);
        assert_eq!(a.get(&[1, 0]).unwrap(), 3.0);
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
    }

    #[test]
    fn set_and_get() {
        let mut a = arr23();
        a.set(&[1, 1], 42.0).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), 42.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = arr23().reshape(vec![3, 2]).unwrap();
        assert_eq!(a.get(&[2, 1]).unwrap(), 5.0);
        assert!(arr23().reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn slicing_axis0() {
        let a = arr23().slice_axis0(1, 2).unwrap();
        assert_eq!(a.shape(), &[1, 3]);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
        assert!(arr23().slice_axis0(2, 1).is_err());
    }

    #[test]
    fn elementwise_and_reduce() {
        let a = arr23();
        let doubled = a.zip_with(&a, |x, y| x + y).unwrap();
        assert_eq!(doubled.sum(), 30.0);
        let col_sums = a.reduce_axis(0, 0.0, |acc, x| acc + x).unwrap();
        assert_eq!(col_sums.as_slice(), &[3.0, 5.0, 7.0]);
        let row_sums = a.reduce_axis(1, 0.0, |acc, x| acc + x).unwrap();
        assert_eq!(row_sums.as_slice(), &[3.0, 12.0]);
        assert!(a.reduce_axis(5, 0.0, |acc, x| acc + x).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = arr23();
        let b = NdArray::zeros(vec![3, 2]);
        assert!(a.zip_with(&b, |x, _| x).is_err());
    }

    #[test]
    fn store_put_get_add() {
        let mut s = ArrayStore::new("arr");
        s.put("a", arr23()).unwrap();
        s.put("b", arr23()).unwrap();
        s.add("a", "b", "c").unwrap();
        assert_eq!(s.get("c").unwrap().sum(), 30.0);
        assert!(s.get("missing").is_err());
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn store_matmul_matches_manual() {
        let mut s = ArrayStore::new("arr");
        s.put(
            "a",
            NdArray::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        )
        .unwrap();
        s.put(
            "i",
            NdArray::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
        )
        .unwrap();
        s.matmul("a", "i", "out").unwrap();
        assert_eq!(s.get("out").unwrap(), s.get("a").unwrap());
        // GEMM cost was charged to the ledger.
        assert!(s
            .ledger()
            .events()
            .iter()
            .any(|e| e.component == "arraystore.matmul"));
    }

    #[test]
    fn matrix_roundtrip() {
        let a = arr23();
        let m = a.to_matrix().unwrap();
        assert_eq!(NdArray::from_matrix(&m), a);
        assert!(NdArray::zeros(vec![2, 2, 2]).to_matrix().is_err());
    }
}

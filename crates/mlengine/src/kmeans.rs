//! K-means clustering written as OptiML-style parallel patterns (Fig. 7).
//!
//! The paper's Fig. 7 shows a Tensorflow k-means translated into OptiML's
//! `untilconverged { samples.groupRowsBy { minIndex(dist) } .map(mean) }`.
//! The implementation below keeps exactly that structure — a `map` over
//! samples (assignment) and a `groupBy`-average (update) — because those
//! are the parallel patterns a CGRA/FPGA backend would map to hardware.

use pspp_accel::kernels::{KernelReport, Matrix};
use pspp_accel::{CostLedger, DeviceKind, DeviceProfile, KernelClass};
use pspp_common::{Error, Result, SplitMix64};

/// K-means hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iters: 50,
            tol: 1e-6,
            seed: 1,
        }
    }
}

/// The clustering result.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Final centroids (`k × dim`).
    pub centroids: Matrix,
    /// Per-sample cluster index.
    pub assignments: Vec<usize>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl KMeans {
    /// Runs k-means on `samples` (`n × dim`), charging `device` for the
    /// distance and update patterns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for `k == 0` or `k > n`.
    pub fn run(
        device: &DeviceProfile,
        samples: &Matrix,
        config: &KMeansConfig,
        ledger: Option<&CostLedger>,
    ) -> Result<KMeans> {
        let n = samples.rows();
        let dim = samples.cols();
        let k = config.k;
        if k == 0 || k > n {
            return Err(Error::Invalid(format!("k={k} out of range for n={n}")));
        }

        // Initialize centroids on a shuffled sample (tf.random_shuffle +
        // slice in Fig. 7's left column).
        let mut order: Vec<usize> = (0..n).collect();
        SplitMix64::new(config.seed).shuffle(&mut order);
        let mut centroids = Matrix::zeros(k, dim);
        for (c, &i) in order.iter().take(k).enumerate() {
            for d in 0..dim {
                centroids.set(c, d, samples.get(i, d));
            }
        }

        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        for _ in 0..config.max_iters {
            iterations += 1;
            // Pattern 1 — map over samples: nearest-centroid assignment
            // (`kMeans.mapRows(mean => dist(sample, mean)).minIndex`).
            for (i, slot) in assignments.iter_mut().enumerate() {
                let row = samples.row(i);
                let mut best = (0usize, f64::INFINITY);
                for c in 0..k {
                    let d2: f64 = centroids
                        .row(c)
                        .iter()
                        .zip(row)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if d2 < best.1 {
                        best = (c, d2);
                    }
                }
                *slot = best.0;
            }
            // Pattern 2 — groupBy + average: new centroids
            // (`clusters.map(e => e.sum / e.length)`).
            let mut sums = Matrix::zeros(k, dim);
            let mut counts = vec![0usize; k];
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                let row = samples.row(i);
                let acc = sums.row_mut(c);
                for (a, b) in acc.iter_mut().zip(row) {
                    *a += b;
                }
            }
            let mut movement = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes counts, sums and centroids alike
            for c in 0..k {
                if counts[c] == 0 {
                    continue; // empty cluster keeps its centroid
                }
                for d in 0..dim {
                    let new = sums.get(c, d) / counts[c] as f64;
                    movement += (new - centroids.get(c, d)).abs();
                    centroids.set(c, d, new);
                }
            }
            if movement < config.tol {
                break;
            }
        }

        let inertia: f64 = (0..n)
            .map(|i| {
                let c = assignments[i];
                samples
                    .row(i)
                    .iter()
                    .zip(centroids.row(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            })
            .sum();

        // Charge the device: iterations × n × k × dim fused
        // multiply-adds for assignment plus n × dim for the update.
        let cycles = Self::cycles(device, n as u64, k as u64, dim as u64, iterations as u64);
        KernelReport::charge(
            device,
            KernelClass::KMeans,
            n as u64,
            (n * dim * 8) as u64,
            cycles,
            ledger,
            "mlengine.kmeans",
        );

        Ok(KMeans {
            centroids,
            assignments,
            iterations,
            inertia,
        })
    }

    /// Device cycles for the full clustering run.
    pub fn cycles(device: &DeviceProfile, n: u64, k: u64, dim: u64, iters: u64) -> u64 {
        let flops = iters as f64 * (n as f64 * k as f64 * dim as f64 * 3.0 + n as f64 * dim as f64);
        match device.kind() {
            DeviceKind::Tpu => {
                // Distance matrix as batched GEMM on the systolic array.
                let eff = device.efficiency(KernelClass::KMeans).max(1e-3);
                (flops / (device.lanes as f64 * device.lanes as f64 * 2.0 * eff)).ceil() as u64
            }
            _ => {
                let eff = device.efficiency(KernelClass::KMeans).max(1e-3);
                (flops / (device.lanes as f64 * 2.0 * eff)).ceil() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn recovers_well_separated_blobs() {
        let data = Dataset::synthetic_blobs(300, 2, 3, 17);
        let result = KMeans::run(
            &DeviceProfile::cpu(),
            data.features(),
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // Every generated cluster maps to exactly one k-means cluster.
        let mut mapping = std::collections::HashMap::new();
        let mut pure = 0usize;
        for (i, &a) in result.assignments.iter().enumerate() {
            let truth = data.labels()[i] as usize;
            let entry = mapping.entry(truth).or_insert(a);
            if *entry == a {
                pure += 1;
            }
        }
        let purity = pure as f64 / data.len() as f64;
        assert!(purity > 0.95, "purity {purity}");
        assert!(result.iterations < 50);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = Dataset::synthetic_blobs(200, 3, 4, 23);
        let run = |k| {
            KMeans::run(
                &DeviceProfile::cpu(),
                data.features(),
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                None,
            )
            .unwrap()
            .inertia
        };
        assert!(run(4) < run(2));
        assert!(run(2) < run(1));
    }

    #[test]
    fn invalid_k_rejected() {
        let data = Dataset::synthetic_blobs(10, 2, 2, 1);
        for k in [0, 11] {
            assert!(KMeans::run(
                &DeviceProfile::cpu(),
                data.features(),
                &KMeansConfig {
                    k,
                    ..Default::default()
                },
                None,
            )
            .is_err());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::synthetic_blobs(100, 2, 3, 5);
        let cfg = KMeansConfig {
            k: 3,
            seed: 9,
            ..Default::default()
        };
        let a = KMeans::run(&DeviceProfile::cpu(), data.features(), &cfg, None).unwrap();
        let b = KMeans::run(&DeviceProfile::cpu(), data.features(), &cfg, None).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn accelerators_cost_less_time_and_energy() {
        let cpu = DeviceProfile::cpu();
        let gpu = DeviceProfile::gpu();
        let (n, k, dim, iters) = (1 << 20, 16, 16, 10);
        let t_cpu = cpu.cycles_to_s(KMeans::cycles(&cpu, n, k, dim, iters));
        let t_gpu = gpu.cycles_to_s(KMeans::cycles(&gpu, n, k, dim, iters));
        assert!(t_gpu < t_cpu / 5.0, "gpu {t_gpu}s vs cpu {t_cpu}s");
    }

    #[test]
    fn charges_kmeans_kernel() {
        let data = Dataset::synthetic_blobs(50, 2, 2, 3);
        let ledger = CostLedger::new();
        KMeans::run(
            &DeviceProfile::cpu(),
            data.features(),
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.events()[0].component, "mlengine.kmeans");
    }
}

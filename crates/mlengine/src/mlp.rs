//! A multi-layer perceptron trained by mini-batch SGD.
//!
//! Training and inference lower to GEMM/GEMV exactly as §III-A.1
//! describes, and every matrix multiply is routed through
//! [`Gemm::run`], so the same training loop can be costed on the CPU
//! model or offloaded to the TPU model — the paper's Fig. 3 scenario.

use pspp_accel::kernels::{Gemm, Matrix};
use pspp_accel::{CostLedger, DeviceProfile};
use pspp_common::{Error, Result, SplitMix64};

use crate::dataset::Dataset;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD step size.
    pub learning_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.1,
        }
    }
}

/// A feed-forward network with ReLU hidden layers and a sigmoid output,
/// for binary classification (Fig. 2's "long stay vs short stay").
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Per-layer weight matrices (`in_dim × out_dim`).
    weights: Vec<Matrix>,
    /// Per-layer bias vectors.
    biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Builds a network with the given layer sizes
    /// (`[input, hidden..., output]`), He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for fewer than two sizes or a non-1
    /// output layer.
    pub fn new(sizes: &[usize], seed: u64) -> Result<Self> {
        if sizes.len() < 2 {
            return Err(Error::Invalid(
                "need at least input and output sizes".into(),
            ));
        }
        if *sizes.last().expect("nonempty") != 1 {
            return Err(Error::Invalid(
                "binary classifier needs output size 1".into(),
            ));
        }
        let mut rng = SplitMix64::new(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / fan_in as f64).sqrt();
            let data: Vec<f64> = (0..fan_in * fan_out)
                .map(|_| rng.next_gaussian() * scale)
                .collect();
            weights.push(Matrix::from_vec(fan_in, fan_out, data)?);
            biases.push(vec![0.0; fan_out]);
        }
        Ok(Mlp { weights, biases })
    }

    /// Number of layers (excluding the input).
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Expected feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.first().map_or(0, Matrix::rows)
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights
            .iter()
            .map(|w| w.rows() * w.cols())
            .sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// A profile with launch overhead stripped: kernels inside one
    /// training/inference run are enqueued back-to-back (command-queue
    /// batching), so the per-run launch cost is charged once by the
    /// caller-facing entry points rather than per GEMM.
    fn queued(device: &DeviceProfile) -> DeviceProfile {
        let mut queued = device.clone();
        queued.launch_overhead_cycles = 0;
        queued
    }

    fn charge_launch(device: &DeviceProfile, ledger: Option<&CostLedger>) {
        if let Some(ledger) = ledger {
            let t = device.cycles_to_s(device.launch_overhead_cycles);
            ledger.post(
                "mlengine.launch",
                device.kind(),
                pspp_accel::EventKind::Launch,
                0,
                pspp_accel::SimDuration::from_secs(t),
                device.energy_j(t),
            );
        }
    }

    /// Forward pass: returns per-layer pre-activations and activations.
    fn forward(
        &self,
        device: &DeviceProfile,
        x: &Matrix,
        ledger: Option<&CostLedger>,
    ) -> Result<(Vec<Matrix>, Vec<Matrix>)> {
        let mut activations = vec![x.clone()];
        let mut zs = Vec::new();
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let (mut z, _) = Gemm::run(
                device,
                activations.last().expect("seeded"),
                w,
                ledger,
                "mlengine.forward",
            )
            .map_err(|e| Error::Execution(format!("forward gemm: {e}")))?;
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                for (c, bias) in b.iter().enumerate() {
                    row[c] += bias;
                }
            }
            zs.push(z.clone());
            let last = l == self.weights.len() - 1;
            z.map_inplace(|v| if last { sigmoid(v) } else { v.max(0.0) });
            activations.push(z);
        }
        Ok((zs, activations))
    }

    /// Predicted probability of the positive class per example.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn predict_proba(
        &self,
        device: &DeviceProfile,
        features: &Matrix,
        ledger: Option<&CostLedger>,
    ) -> Result<Vec<f64>> {
        Self::charge_launch(device, ledger);
        let queued = Self::queued(device);
        let (_, acts) = self.forward(&queued, features, ledger)?;
        Ok(acts.last().expect("nonempty").as_slice().to_vec())
    }

    /// Hard 0/1 predictions at threshold 0.5.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn predict(
        &self,
        device: &DeviceProfile,
        features: &Matrix,
        ledger: Option<&CostLedger>,
    ) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(device, features, ledger)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn accuracy(
        &self,
        device: &DeviceProfile,
        data: &Dataset,
        ledger: Option<&CostLedger>,
    ) -> Result<f64> {
        let preds = self.predict(device, data.features(), ledger)?;
        let correct = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, y)| (*p - **y).abs() < 0.5)
            .count();
        Ok(correct as f64 / data.len().max(1) as f64)
    }

    /// Mean binary cross-entropy loss on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn loss(
        &self,
        device: &DeviceProfile,
        data: &Dataset,
        ledger: Option<&CostLedger>,
    ) -> Result<f64> {
        let probs = self.predict_proba(device, data.features(), ledger)?;
        let eps = 1e-12;
        let total: f64 = probs
            .iter()
            .zip(data.labels())
            .map(|(p, y)| -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln()))
            .sum();
        Ok(total / data.len().max(1) as f64)
    }

    /// One SGD step on a mini-batch; returns the batch loss before the
    /// update.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn train_batch(
        &mut self,
        device: &DeviceProfile,
        batch: &Dataset,
        learning_rate: f64,
        ledger: Option<&CostLedger>,
    ) -> Result<f64> {
        let n = batch.len();
        if n == 0 {
            return Ok(0.0);
        }
        let (zs, acts) = self.forward(device, batch.features(), ledger)?;
        let probs = acts.last().expect("nonempty");

        // Batch loss (for reporting).
        let eps = 1e-12;
        let loss: f64 = probs
            .as_slice()
            .iter()
            .zip(batch.labels())
            .map(|(p, y)| -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln()))
            .sum::<f64>()
            / n as f64;

        // Output delta for sigmoid + BCE: (p - y) / n.
        let mut delta = probs.clone();
        for (i, y) in batch.labels().iter().enumerate() {
            let v = delta.get(i, 0) - y;
            delta.set(i, 0, v / n as f64);
        }

        for l in (0..self.weights.len()).rev() {
            // dW = A_{l}ᵀ · delta ; db = column sums of delta.
            let a_prev_t = acts[l].transpose();
            let (dw, _) = Gemm::run(device, &a_prev_t, &delta, ledger, "mlengine.backward")
                .map_err(|e| Error::Execution(format!("backward gemm: {e}")))?;
            let mut db = vec![0.0; delta.cols()];
            for r in 0..delta.rows() {
                for (c, acc) in db.iter_mut().enumerate() {
                    *acc += delta.get(r, c);
                }
            }
            // Propagate before updating weights: dA = delta · W_lᵀ.
            if l > 0 {
                let w_t = self.weights[l].transpose();
                let (mut da, _) = Gemm::run(device, &delta, &w_t, ledger, "mlengine.backward")
                    .map_err(|e| Error::Execution(format!("backward gemm: {e}")))?;
                // ReLU gate from the saved pre-activations.
                for r in 0..da.rows() {
                    for c in 0..da.cols() {
                        if zs[l - 1].get(r, c) <= 0.0 {
                            da.set(r, c, 0.0);
                        }
                    }
                }
                delta = da;
            }
            // SGD update.
            let w = &mut self.weights[l];
            for r in 0..w.rows() {
                for c in 0..w.cols() {
                    let v = w.get(r, c) - learning_rate * dw.get(r, c);
                    w.set(r, c, v);
                }
            }
            for (b, g) in self.biases[l].iter_mut().zip(&db) {
                *b -= learning_rate * g;
            }
        }
        Ok(loss)
    }

    /// Full SGD training; returns the per-epoch mean batch loss.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Execution`] on dimension mismatch.
    pub fn train(
        &mut self,
        device: &DeviceProfile,
        data: &Dataset,
        config: &TrainConfig,
        ledger: Option<&CostLedger>,
    ) -> Result<Vec<f64>> {
        Self::charge_launch(device, ledger);
        let queued = Self::queued(device);
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut epoch_loss = 0.0;
            let batches = data.batches(config.batch_size);
            let n_batches = batches.len().max(1);
            for batch in &batches {
                epoch_loss += self.train_batch(&queued, batch, config.learning_rate, ledger)?;
            }
            losses.push(epoch_loss / n_batches as f64);
        }
        Ok(losses)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shapes() {
        assert!(Mlp::new(&[4], 1).is_err());
        assert!(Mlp::new(&[4, 2], 1).is_err());
        assert!(Mlp::new(&[4, 8, 1], 1).is_ok());
    }

    #[test]
    fn parameter_count() {
        let mlp = Mlp::new(&[4, 8, 1], 1).unwrap();
        assert_eq!(mlp.parameter_count(), 4 * 8 + 8 + 8 + 1);
        assert_eq!(mlp.depth(), 2);
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::synthetic_threshold(300, 4, 3);
        let mut mlp = Mlp::new(&[4, 8, 1], 5).unwrap();
        let cpu = DeviceProfile::cpu();
        let before = mlp.loss(&cpu, &data, None).unwrap();
        let losses = mlp
            .train(
                &cpu,
                &data,
                &TrainConfig {
                    epochs: 25,
                    batch_size: 32,
                    learning_rate: 0.5,
                },
                None,
            )
            .unwrap();
        let after = mlp.loss(&cpu, &data, None).unwrap();
        assert!(after < before * 0.5, "loss {before} -> {after}");
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn learns_threshold_task_well() {
        let data = Dataset::synthetic_threshold(500, 4, 11);
        let (train, test) = data.split(0.2, 13).unwrap();
        let mut mlp = Mlp::new(&[4, 16, 1], 7).unwrap();
        let cpu = DeviceProfile::cpu();
        mlp.train(
            &cpu,
            &train,
            &TrainConfig {
                epochs: 40,
                batch_size: 32,
                learning_rate: 0.5,
            },
            None,
        )
        .unwrap();
        let acc = mlp.accuracy(&cpu, &test, None).unwrap();
        assert!(acc > 0.9, "test accuracy {acc}");
    }

    #[test]
    fn identical_results_on_cpu_and_tpu_models() {
        // The device model changes cost, never numerics.
        let data = Dataset::synthetic_threshold(100, 4, 3);
        let cpu = DeviceProfile::cpu();
        let tpu = DeviceProfile::tpu();
        let mut a = Mlp::new(&[4, 8, 1], 5).unwrap();
        let mut b = Mlp::new(&[4, 8, 1], 5).unwrap();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            learning_rate: 0.2,
        };
        a.train(&cpu, &data, &cfg, None).unwrap();
        b.train(&tpu, &data, &cfg, None).unwrap();
        assert_eq!(
            a.predict_proba(&cpu, data.features(), None).unwrap(),
            b.predict_proba(&tpu, data.features(), None).unwrap()
        );
    }

    #[test]
    fn training_charges_gemms_to_ledger() {
        let data = Dataset::synthetic_threshold(64, 4, 3);
        let ledger = CostLedger::new();
        let mut mlp = Mlp::new(&[4, 8, 1], 5).unwrap();
        mlp.train(
            &DeviceProfile::tpu(),
            &data,
            &TrainConfig {
                epochs: 1,
                batch_size: 32,
                learning_rate: 0.1,
            },
            Some(&ledger),
        )
        .unwrap();
        assert!(!ledger.is_empty());
        assert!(ledger
            .events()
            .iter()
            .all(|e| e.component.starts_with("mlengine.")));
    }
}

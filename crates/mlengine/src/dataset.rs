//! Feature datasets: the tensor data model of the ML engine.

use pspp_accel::kernels::Matrix;
use pspp_common::{Error, Result, SplitMix64};

/// A supervised dataset: row-per-example features plus binary labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] when feature rows and labels disagree.
    pub fn new(features: Matrix, labels: Vec<f64>) -> Result<Self> {
        if features.rows() != labels.len() {
            return Err(Error::Invalid(format!(
                "{} feature rows vs {} labels",
                features.rows(),
                labels.len()
            )));
        }
        Ok(Dataset { features, labels })
    }

    /// Builds from per-example feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on ragged features or length mismatch.
    pub fn from_examples(examples: &[(Vec<f64>, f64)]) -> Result<Self> {
        let rows = examples.len();
        let cols = examples.first().map_or(0, |(f, _)| f.len());
        let mut data = Vec::with_capacity(rows * cols);
        let mut labels = Vec::with_capacity(rows);
        for (f, y) in examples {
            if f.len() != cols {
                return Err(Error::Invalid("ragged feature vectors".into()));
            }
            data.extend_from_slice(f);
            labels.push(*y);
        }
        Ok(Dataset {
            features: Matrix::from_vec(rows, cols, data)?,
            labels,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The `i`-th example's features.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.features.row(i), self.labels[i])
    }

    /// Deterministic shuffled split into `(train, test)` with `test_frac`
    /// of examples in the test set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for fractions outside (0, 1).
    pub fn split(&self, test_frac: f64, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&test_frac) || test_frac == 0.0 {
            return Err(Error::Invalid("test_frac must be in (0,1)".into()));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        SplitMix64::new(seed).shuffle(&mut order);
        let n_test = ((self.len() as f64) * test_frac).round() as usize;
        let (test_idx, train_idx) = order.split_at(n_test.min(self.len()));
        Ok((self.subset(train_idx)?, self.subset(test_idx)?))
    }

    /// The subset of examples at `indices`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for out-of-bounds indices.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let cols = self.dim();
        let mut data = Vec::with_capacity(indices.len() * cols);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(Error::Invalid(format!("example index {i} out of bounds")));
            }
            data.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            features: Matrix::from_vec(indices.len(), cols, data)?,
            labels,
        })
    }

    /// Contiguous mini-batches of at most `batch_size` examples.
    pub fn batches(&self, batch_size: usize) -> Vec<Dataset> {
        assert!(batch_size > 0, "batch size must be positive");
        (0..self.len())
            .step_by(batch_size)
            .map(|start| {
                let idx: Vec<usize> = (start..(start + batch_size).min(self.len())).collect();
                self.subset(&idx).expect("in-bounds batch")
            })
            .collect()
    }

    /// A deterministic synthetic binary task: `y = 1` iff the first
    /// feature exceeds 0.5 (plus light noise on the other dims). Used by
    /// tests and benchmarks.
    pub fn synthetic_threshold(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = rng.next_f64();
            data.push(x0);
            for _ in 1..dim {
                data.push(rng.next_f64());
            }
            labels.push(if x0 > 0.5 { 1.0 } else { 0.0 });
        }
        Dataset {
            features: Matrix::from_vec(n, dim, data).expect("consistent dims"),
            labels,
        }
    }

    /// A deterministic two-Gaussian clustering task in `dim` dimensions;
    /// labels are the generating cluster (used to sanity-check k-means).
    pub fn synthetic_blobs(n: usize, dim: usize, k: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix64::new(seed);
        let centers: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.next_range(-5.0, 5.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % k;
            for center_d in &centers[c] {
                data.push(center_d + rng.next_gaussian() * 0.4);
            }
            labels.push(c as f64);
        }
        Dataset {
            features: Matrix::from_vec(n, dim, data).expect("consistent dims"),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_lengths() {
        assert!(Dataset::new(Matrix::zeros(3, 2), vec![0.0; 3]).is_ok());
        assert!(Dataset::new(Matrix::zeros(3, 2), vec![0.0; 2]).is_err());
        assert!(Dataset::from_examples(&[(vec![1.0], 0.0), (vec![1.0, 2.0], 1.0)]).is_err());
    }

    #[test]
    fn split_partitions_every_example() {
        let d = Dataset::synthetic_threshold(100, 3, 1);
        let (train, test) = d.split(0.2, 9).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
        assert_eq!(train.dim(), 3);
        assert!(d.split(0.0, 9).is_err());
        assert!(d.split(1.0, 9).is_err());
    }

    #[test]
    fn split_is_deterministic() {
        let d = Dataset::synthetic_threshold(50, 2, 1);
        let (a, _) = d.split(0.3, 5).unwrap();
        let (b, _) = d.split(0.3, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batches_cover_dataset() {
        let d = Dataset::synthetic_threshold(25, 2, 1);
        let batches = d.batches(8);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.iter().map(Dataset::len).sum::<usize>(), 25);
        assert_eq!(batches[3].len(), 1);
    }

    #[test]
    fn blobs_have_k_distinct_labels() {
        let d = Dataset::synthetic_blobs(90, 2, 3, 7);
        let mut labels: Vec<i64> = d.labels().iter().map(|&l| l as i64).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn subset_bounds_checked() {
        let d = Dataset::synthetic_threshold(10, 2, 1);
        assert!(d.subset(&[0, 9]).is_ok());
        assert!(d.subset(&[10]).is_err());
    }
}

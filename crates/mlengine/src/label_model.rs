//! Snorkel-style weak supervision (Fig. 3, reference \[14\]).
//!
//! The paper's Fig. 3 shows Snorkel's pipeline: unlabeled data in an
//! RDBMS, labeling functions producing noisy votes, and a label model
//! turning votes into probabilistic training labels for the ML engine.
//! This module implements the label model: per-function accuracies are
//! estimated by agreement-weighted EM, and examples get probabilistic
//! labels via a weighted (log-odds) vote.

use pspp_common::{Error, Result};

/// A labeling function's vote on one example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// No opinion.
    Abstain,
    /// Vote for the negative class.
    Negative,
    /// Vote for the positive class.
    Positive,
}

impl Vote {
    fn as_sign(self) -> Option<f64> {
        match self {
            Vote::Abstain => None,
            Vote::Negative => Some(-1.0),
            Vote::Positive => Some(1.0),
        }
    }
}

/// A named labeling function: any heuristic mapping an example to a
/// [`Vote`] (regex matches, threshold rules, dictionary lookups...).
pub struct LabelingFunction<T> {
    /// Human-readable name.
    pub name: String,
    /// The heuristic.
    pub func: Box<dyn Fn(&T) -> Vote + Send + Sync>,
}

impl<T> LabelingFunction<T> {
    /// Wraps a closure.
    pub fn new(name: impl Into<String>, func: impl Fn(&T) -> Vote + Send + Sync + 'static) -> Self {
        LabelingFunction {
            name: name.into(),
            func: Box::new(func),
        }
    }
}

impl<T> std::fmt::Debug for LabelingFunction<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LabelingFunction({})", self.name)
    }
}

/// The trained label model: one weight per labeling function.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelModel {
    /// Estimated accuracy per function, in (0.5, 1).
    pub accuracies: Vec<f64>,
    /// Log-odds weight per function.
    pub weights: Vec<f64>,
}

impl LabelModel {
    /// Fits the model on a vote matrix (`votes[example][function]`) by
    /// agreement-weighted EM: initialize all accuracies at 0.7, compute
    /// probabilistic labels, re-estimate each function's accuracy against
    /// them, repeat.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for an empty or ragged vote matrix.
    pub fn fit(votes: &[Vec<Vote>], iterations: usize) -> Result<LabelModel> {
        let n = votes.len();
        let m = votes.first().map(Vec::len).unwrap_or(0);
        if n == 0 || m == 0 {
            return Err(Error::Invalid("empty vote matrix".into()));
        }
        if votes.iter().any(|r| r.len() != m) {
            return Err(Error::Invalid("ragged vote matrix".into()));
        }

        let mut acc = vec![0.7f64; m];
        for _ in 0..iterations.max(1) {
            let weights: Vec<f64> = acc.iter().map(|&a| Self::log_odds(a)).collect();
            // E-step: probabilistic labels under current weights.
            let probs: Vec<f64> = votes
                .iter()
                .map(|row| Self::combine(row, &weights))
                .collect();
            // M-step: accuracy of each function against soft labels.
            for j in 0..m {
                let mut agree = 0.0;
                let mut total = 0.0;
                for (row, &p) in votes.iter().zip(&probs) {
                    let Some(sign) = row[j].as_sign() else {
                        continue;
                    };
                    // Probability this vote matches the soft label.
                    let match_p = if sign > 0.0 { p } else { 1.0 - p };
                    agree += match_p;
                    total += 1.0;
                }
                if total > 0.0 {
                    // Clamp away from 0.5/1.0 for stable log-odds.
                    acc[j] = (agree / total).clamp(0.55, 0.95);
                }
            }
        }
        let weights = acc.iter().map(|&a| Self::log_odds(a)).collect();
        Ok(LabelModel {
            accuracies: acc,
            weights,
        })
    }

    /// Probabilistic label for one example's votes.
    pub fn predict_proba(&self, row: &[Vote]) -> f64 {
        Self::combine(row, &self.weights)
    }

    /// Probabilistic labels for a vote matrix.
    pub fn predict(&self, votes: &[Vec<Vote>]) -> Vec<f64> {
        votes.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Applies labeling functions to data, producing the vote matrix.
    pub fn apply_functions<T>(functions: &[LabelingFunction<T>], data: &[T]) -> Vec<Vec<Vote>> {
        data.iter()
            .map(|x| functions.iter().map(|lf| (lf.func)(x)).collect())
            .collect()
    }

    fn log_odds(acc: f64) -> f64 {
        (acc / (1.0 - acc)).ln()
    }

    fn combine(row: &[Vote], weights: &[f64]) -> f64 {
        let score: f64 = row
            .iter()
            .zip(weights)
            .filter_map(|(v, w)| v.as_sign().map(|s| s * w))
            .sum();
        1.0 / (1.0 + (-score).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspp_common::SplitMix64;

    /// Synthetic task: true label = x > 0; three LFs with different
    /// accuracies and one near-random LF.
    fn synthetic() -> (Vec<f64>, Vec<Vec<Vote>>) {
        let mut rng = SplitMix64::new(99);
        let mut labels = Vec::new();
        let mut votes = Vec::new();
        for _ in 0..500 {
            let x = rng.next_range(-1.0, 1.0);
            let y = if x > 0.0 { 1.0 } else { 0.0 };
            labels.push(y);
            let vote = |acc: f64, rng: &mut SplitMix64| {
                if rng.next_f64() < 0.2 {
                    Vote::Abstain
                } else if rng.next_f64() < acc {
                    if y > 0.5 {
                        Vote::Positive
                    } else {
                        Vote::Negative
                    }
                } else if y > 0.5 {
                    Vote::Negative
                } else {
                    Vote::Positive
                }
            };
            votes.push(vec![
                vote(0.9, &mut rng),
                vote(0.8, &mut rng),
                vote(0.7, &mut rng),
                vote(0.52, &mut rng),
            ]);
        }
        (labels, votes)
    }

    #[test]
    fn fit_orders_function_accuracies() {
        let (_, votes) = synthetic();
        let model = LabelModel::fit(&votes, 10).unwrap();
        assert!(model.accuracies[0] > model.accuracies[3]);
        assert!(model.weights[0] > model.weights[3]);
    }

    #[test]
    fn weighted_vote_beats_single_function() {
        let (labels, votes) = synthetic();
        let model = LabelModel::fit(&votes, 10).unwrap();
        let probs = model.predict(&votes);
        let acc_model = accuracy(&labels, &probs);
        // Accuracy of using only LF-2 (0.7 accurate) directly.
        let lf2: Vec<f64> = votes
            .iter()
            .map(|r| match r[2] {
                Vote::Positive => 1.0,
                Vote::Negative => 0.0,
                Vote::Abstain => 0.5,
            })
            .collect();
        let acc_lf2 = accuracy(&labels, &lf2);
        assert!(
            acc_model > acc_lf2 + 0.05,
            "model {acc_model} vs lf2 {acc_lf2}"
        );
        assert!(acc_model > 0.85);
    }

    #[test]
    fn abstain_only_rows_give_uncertain_labels() {
        let votes = vec![vec![Vote::Abstain, Vote::Abstain]; 3];
        let model = LabelModel {
            accuracies: vec![0.8, 0.8],
            weights: vec![1.0, 1.0],
        };
        for p in model.predict(&votes) {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LabelModel::fit(&[], 5).is_err());
        assert!(LabelModel::fit(&[vec![]], 5).is_err());
        assert!(LabelModel::fit(
            &[vec![Vote::Positive], vec![Vote::Positive, Vote::Negative]],
            5
        )
        .is_err());
    }

    #[test]
    fn apply_functions_builds_matrix() {
        let lfs = vec![
            LabelingFunction::new("positive_if_big", |x: &i64| {
                if *x > 10 {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            }),
            LabelingFunction::new("negative_if_negative", |x: &i64| {
                if *x < 0 {
                    Vote::Negative
                } else {
                    Vote::Abstain
                }
            }),
        ];
        let data = vec![20i64, -5, 3];
        let votes = LabelModel::apply_functions(&lfs, &data);
        assert_eq!(votes[0], vec![Vote::Positive, Vote::Abstain]);
        assert_eq!(votes[1], vec![Vote::Abstain, Vote::Negative]);
        assert_eq!(votes[2], vec![Vote::Abstain, Vote::Abstain]);
        assert_eq!(format!("{:?}", lfs[0]), "LabelingFunction(positive_if_big)");
    }

    fn accuracy(labels: &[f64], probs: &[f64]) -> f64 {
        labels
            .iter()
            .zip(probs)
            .filter(|(y, p)| (**p >= 0.5) == (**y >= 0.5))
            .count() as f64
            / labels.len() as f64
    }
}

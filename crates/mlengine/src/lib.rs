//! An ML/DL data-processing engine (Tensorflow-like substrate).
//!
//! The paper's "Deep Neural Network Engine" (Fig. 2): deep-learning
//! workloads lower to GEMM/GEMV (§III-A.1), so the engine routes all
//! dense algebra through the accelerator GEMM kernel — training and
//! inference can therefore run on the CPU model or the TPU model, with
//! costs posted to the shared [`pspp_accel::CostLedger`].
//!
//! Components:
//!
//! * [`Dataset`] — feature matrix + labels, with deterministic splits.
//! * [`Mlp`] — a multi-layer perceptron with sigmoid output (the Fig. 2
//!   "will the patient stay > 5 days" binary classifier), trained by
//!   mini-batch SGD exactly like the Snorkel loop of Fig. 3.
//! * [`KMeans`] — the Fig. 7 clustering example written as OptiML-style
//!   parallel patterns (map → groupBy → average).
//! * [`LabelModel`] — Snorkel-style weak supervision: combines noisy
//!   labeling functions into probabilistic training labels.
//!
//! # Examples
//!
//! ```
//! use pspp_mlengine::{Dataset, Mlp, TrainConfig};
//! use pspp_accel::DeviceProfile;
//!
//! # fn main() -> pspp_common::Result<()> {
//! // Learn y = x0 > 0.5 from a tiny synthetic set.
//! let data = Dataset::synthetic_threshold(200, 4, 42);
//! let mut mlp = Mlp::new(&[4, 8, 1], 7)?;
//! let cfg = TrainConfig { epochs: 30, batch_size: 16, learning_rate: 0.5 };
//! mlp.train(&DeviceProfile::cpu(), &data, &cfg, None)?;
//! let acc = mlp.accuracy(&DeviceProfile::cpu(), &data, None)?;
//! assert!(acc > 0.9, "accuracy {acc}");
//! # Ok(())
//! # }
//! ```

pub mod dataset;
pub mod kmeans;
pub mod label_model;
pub mod mlp;

pub use dataset::Dataset;
pub use kmeans::{KMeans, KMeansConfig};
pub use label_model::{LabelModel, LabelingFunction, Vote};
pub use mlp::{Mlp, TrainConfig};

//! A hermetic mini `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmark-harness subset the `pspp-bench` benches use: groups,
//! `sample_size` / `warm_up_time` / `measurement_time` knobs,
//! `bench_function` with a [`Bencher`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain median-of-samples over
//! `std::time::Instant` — no statistics engine, no plots — printed in a
//! `name ... median time` line per benchmark.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The harness entry point handed to every benchmark target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; sampling is bounded by
    /// `sample_size` alone here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up: run until the budget is spent at least once.
        let start = Instant::now();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        while start.elapsed() < self.warm_up {
            f(&mut b);
            if b.samples.is_empty() {
                break; // routine never called iter; nothing to time
            }
        }
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "{}/{id}: median {median:?} over {} samples",
            self.name,
            b.samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures inside a benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once, recording its wall-clock time as one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        black_box(routine());
        self.samples.push(t.elapsed());
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_samples_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut runs = 0;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 3);
    }
}

//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no crates.io access, and
//! no code path serializes data yet — `#[derive(Serialize, Deserialize)]`
//! annotations exist as forward-compatibility markers on IR and plan
//! types. This stub keeps those annotations compiling: the traits are
//! blanket-implemented markers and the derives (re-exported from the
//! sibling `serde_derive` stub) expand to nothing. Swapping in real
//! serde later is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirrors `serde::ser` far enough for qualified imports.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for qualified imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

//! A hermetic mini `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest's API the workspace tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map`,
//! `any`, numeric range strategies, tuple strategies, vector
//! collections, and `[chars]{lo,hi}` string patterns.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input.
//! * **Deterministic generation** — each test derives its RNG seed from
//!   the test name (override with `PROPTEST_SEED`), so failures are
//!   reproducible bit-for-bit across runs and machines.

pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` — one-stop imports, mirroring the real crate.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Re-export of the [`crate::prop`] module under the prelude, as
    /// `use proptest::prelude::*` is expected to bring `prop::` in.
    pub mod prop {
        pub use crate::prop::*;
    }
}

/// The `prop` namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Declares property tests.
///
/// Supports the two forms the workspace uses: an optional leading
/// `#![proptest_config(...)]`, then `fn name(pat in strategy, ...) { body }`
/// items carrying arbitrary attributes (including doc comments and
/// `#[test]`).
#[macro_export]
macro_rules! proptest {
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::new_value(&$strat, runner.rng()),)+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        runner.seed(),
                        e
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

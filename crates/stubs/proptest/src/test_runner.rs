//! Test execution: configuration, failure type, and the deterministic
//! random source strategies draw from.

use std::fmt;

/// How many cases a property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carried out of the test body by
/// `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with this message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64: tiny, fast, and good enough for test-input generation.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// An RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Drives one property test's cases.
#[derive(Debug)]
pub struct TestRunner {
    rng: Rng,
    seed: u64,
}

impl TestRunner {
    /// A runner whose seed derives from the test name (or the
    /// `PROPTEST_SEED` environment variable, when set).
    pub fn new(_config: &ProptestConfig, test_name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        TestRunner {
            rng: Rng::new(seed),
            seed,
        }
    }

    /// The random source for the current case.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The seed this run used (for reproduction reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// FNV-1a over bytes: stable, dependency-free name hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..256 {
            let x = r.next_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::Rng;

/// Generates values of an associated type from a random source.
///
/// Object-safe core (`new_value`) plus sized combinators, mirroring the
/// proptest surface the workspace tests rely on.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut Rng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut Rng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut Rng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    /// All bit patterns — finite, infinite, and NaN — like proptest's
    /// default `f64` domain.
    fn arbitrary(rng: &mut Rng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn new_value(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&'static str` patterns of the form `[chars]{lo,hi}` generate
/// matching strings (the only regex shape the workspace tests use).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut Rng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self);
        let len = lo + rng.next_below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[a-z ,"]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    macro_rules! bad {
        () => {
            panic!("unsupported string pattern {pattern:?}: expected `[chars]{{lo,hi}}`")
        };
    }
    let Some(rest) = pattern.strip_prefix('[') else {
        bad!()
    };
    let Some((class, rest)) = rest.split_once(']') else {
        bad!()
    };
    let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        bad!()
    };
    let Some((lo, hi)) = counts.split_once(',') else {
        bad!()
    };
    let Ok(lo) = lo.trim().parse::<usize>() else {
        bad!()
    };
    let Ok(hi) = hi.trim().parse::<usize>() else {
        bad!()
    };
    assert!(lo <= hi, "empty repetition in pattern {pattern:?}");

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\\' && i + 1 < chars.len() {
            alphabet.push(chars[i + 1]);
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "reversed range in pattern {pattern:?}");
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    (alphabet, lo, hi)
}

/// The strategy behind `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of `size.start..size.end` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..512 {
            let v = (-5i64..7).new_value(&mut rng);
            assert!((-5..7).contains(&v));
            let f = (0.25f64..0.75).new_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (1usize..16).new_value(&mut rng);
            assert!((1..16).contains(&u));
        }
    }

    #[test]
    fn class_patterns_generate_matching_strings() {
        let mut rng = Rng::new(9);
        for _ in 0..256 {
            let s = "[a-c ,]{0,5}".new_value(&mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ' | ',')));
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = Rng::new(4);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_and_vec_compose() {
        let mut rng = Rng::new(5);
        let s = vec((0i64..10).prop_map(|x| x * 2), 1..4);
        for _ in 0..64 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|x| x % 2 == 0 && (0..20).contains(x)));
        }
    }
}

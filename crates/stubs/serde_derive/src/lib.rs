//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds in a hermetic environment with no crates.io
//! access, and nothing in it actually serializes values — the derives
//! only mark plan/IR types as wire-ready for future transports. These
//! stubs accept the derive syntax (including `#[serde(...)]` helper
//! attributes) and expand to nothing, so the annotations stay in place
//! until the real dependency can be vendored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

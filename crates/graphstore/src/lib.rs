//! A graph data-processing engine (Neo4j-like substrate).
//!
//! The paper's graph store: "path-finding in Neo4j" (§I) and the Cypher
//! ("cipher") operators of §III-A.1 — "match, subtree, path, and join".
//! A property graph with labeled vertices/edges and native operators:
//! pattern match, BFS shortest path, Dijkstra weighted path, k-hop
//! neighborhoods and PageRank. Costs are posted to the shared
//! [`CostLedger`].
//!
//! # Examples
//!
//! ```
//! use pspp_graphstore::GraphStore;
//! use pspp_common::Value;
//!
//! let mut g = GraphStore::new("social");
//! let a = g.add_node("Person", vec![("name".into(), Value::from("ada"))]);
//! let b = g.add_node("Person", vec![("name".into(), Value::from("bob"))]);
//! g.add_edge(a, b, "KNOWS", 1.0).unwrap();
//! assert_eq!(g.shortest_path(a, b).unwrap(), vec![a, b]);
//! ```

use std::collections::{BinaryHeap, HashMap, VecDeque};

use pspp_accel::kernels::KernelReport;
use pspp_accel::{CostLedger, DeviceProfile, KernelClass};
use pspp_common::{EngineId, Error, Result, Value};

/// A vertex id.
pub type NodeId = u64;

/// A labeled vertex with properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Unique id.
    pub id: NodeId,
    /// Label (e.g. `Person`, `Patient`).
    pub label: String,
    /// Property map.
    pub props: HashMap<String, Value>,
}

/// A typed, weighted, directed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub from: NodeId,
    /// Target vertex.
    pub to: NodeId,
    /// Relationship type (e.g. `KNOWS`, `ADMITTED_TO`).
    pub rel: String,
    /// Weight for path-finding.
    pub weight: f64,
}

/// One step of a match pattern: follow edges of type `rel` to nodes
/// labeled `node_label` (either may be `None` = wildcard).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PatternStep {
    /// Required relationship type, if any.
    pub rel: Option<String>,
    /// Required target label, if any.
    pub node_label: Option<String>,
}

impl PatternStep {
    /// A step matching `rel` edges into `label` nodes.
    pub fn new(rel: impl Into<String>, label: impl Into<String>) -> Self {
        PatternStep {
            rel: Some(rel.into()),
            node_label: Some(label.into()),
        }
    }

    /// A step that follows any edge into any node.
    pub fn any() -> Self {
        PatternStep::default()
    }
}

/// The graph engine.
#[derive(Debug, Clone)]
pub struct GraphStore {
    id: EngineId,
    nodes: HashMap<NodeId, Node>,
    adjacency: HashMap<NodeId, Vec<Edge>>,
    reverse: HashMap<NodeId, Vec<NodeId>>,
    next_id: NodeId,
    ledger: CostLedger,
    cpu: DeviceProfile,
}

impl GraphStore {
    /// An empty graph.
    pub fn new(id: impl Into<EngineId>) -> Self {
        GraphStore {
            id: id.into(),
            nodes: HashMap::new(),
            adjacency: HashMap::new(),
            reverse: HashMap::new(),
            next_id: 0,
            ledger: CostLedger::new(),
            cpu: DeviceProfile::cpu(),
        }
    }

    /// Attaches a shared cost ledger.
    pub fn with_ledger(mut self, ledger: CostLedger) -> Self {
        self.ledger = ledger;
        self
    }

    /// The engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// The cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Adds a vertex, returning its id.
    pub fn add_node(&mut self, label: impl Into<String>, props: Vec<(String, Value)>) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        self.nodes.insert(
            id,
            Node {
                id,
                label: label.into(),
                props: props.into_iter().collect(),
            },
        );
        self.charge("graphstore.add_node", 1, 32, 40);
        id
    }

    /// Adds a directed edge.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] if either endpoint does not exist.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        rel: impl Into<String>,
        weight: f64,
    ) -> Result<()> {
        if !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            return Err(Error::Invalid(format!(
                "edge {from}->{to} has missing endpoint"
            )));
        }
        self.adjacency.entry(from).or_default().push(Edge {
            from,
            to,
            rel: rel.into(),
            weight,
        });
        self.reverse.entry(to).or_default().push(from);
        self.charge("graphstore.add_edge", 1, 32, 40);
        Ok(())
    }

    /// Vertex lookup.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(Vec::len).sum()
    }

    /// All vertices with `label`.
    pub fn nodes_with_label(&self, label: &str) -> Vec<&Node> {
        let mut out: Vec<&Node> = self.nodes.values().filter(|n| n.label == label).collect();
        out.sort_by_key(|n| n.id);
        self.charge(
            "graphstore.label_scan",
            self.nodes.len() as u64,
            0,
            self.nodes.len() as u64 * 2,
        );
        out
    }

    /// Outgoing edges of a vertex.
    pub fn edges_from(&self, id: NodeId) -> &[Edge] {
        self.adjacency.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Cypher-style pattern match: starting from nodes labeled
    /// `start_label`, follow `steps`, returning each full matched path of
    /// node ids (`MATCH (a:L1)-[:R1]->(b:L2)-...`).
    pub fn match_pattern(&self, start_label: &str, steps: &[PatternStep]) -> Vec<Vec<NodeId>> {
        let mut paths: Vec<Vec<NodeId>> = self
            .nodes_with_label(start_label)
            .into_iter()
            .map(|n| vec![n.id])
            .collect();
        let mut visited_edges = 0u64;
        for step in steps {
            let mut next = Vec::new();
            for path in &paths {
                let tail = *path.last().expect("paths are nonempty");
                for e in self.edges_from(tail) {
                    visited_edges += 1;
                    if step.rel.as_ref().is_some_and(|r| *r != e.rel) {
                        continue;
                    }
                    let node = &self.nodes[&e.to];
                    if step.node_label.as_ref().is_some_and(|l| *l != node.label) {
                        continue;
                    }
                    let mut p = path.clone();
                    p.push(e.to);
                    next.push(p);
                }
            }
            paths = next;
        }
        paths.sort();
        self.charge(
            "graphstore.match",
            visited_edges,
            visited_edges * 16,
            visited_edges * 8,
        );
        paths
    }

    /// Unweighted shortest path (BFS) from `from` to `to`, inclusive.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for unknown endpoints; `Ok(vec![])`
    /// when no path exists.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>> {
        if !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            return Err(Error::Invalid("unknown endpoint".into()));
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen: std::collections::HashSet<NodeId> = [from].into();
        let mut visited = 0u64;
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for e in self.edges_from(cur) {
                visited += 1;
                if seen.insert(e.to) {
                    prev.insert(e.to, cur);
                    queue.push_back(e.to);
                }
            }
        }
        self.charge("graphstore.bfs", visited, visited * 16, visited * 8);
        Ok(Self::reconstruct(from, to, &prev))
    }

    /// Weighted shortest path (Dijkstra): `(path, total_weight)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] for unknown endpoints or negative
    /// weights; `Ok((vec![], inf))` when unreachable.
    pub fn dijkstra(&self, from: NodeId, to: NodeId) -> Result<(Vec<NodeId>, f64)> {
        if !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            return Err(Error::Invalid("unknown endpoint".into()));
        }
        #[derive(PartialEq)]
        struct Entry(f64, NodeId);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.total_cmp(&self.0) // min-heap
            }
        }

        let mut dist: HashMap<NodeId, f64> = HashMap::from([(from, 0.0)]);
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut heap = BinaryHeap::from([Entry(0.0, from)]);
        let mut visited = 0u64;
        while let Some(Entry(d, cur)) = heap.pop() {
            if cur == to {
                break;
            }
            if d > dist.get(&cur).copied().unwrap_or(f64::INFINITY) {
                continue;
            }
            for e in self.edges_from(cur) {
                visited += 1;
                if e.weight < 0.0 {
                    return Err(Error::Invalid("negative edge weight".into()));
                }
                let nd = d + e.weight;
                if nd < dist.get(&e.to).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(e.to, nd);
                    prev.insert(e.to, cur);
                    heap.push(Entry(nd, e.to));
                }
            }
        }
        self.charge("graphstore.dijkstra", visited, visited * 16, visited * 12);
        let path = Self::reconstruct(from, to, &prev);
        let total = dist.get(&to).copied().unwrap_or(f64::INFINITY);
        Ok((path, total))
    }

    /// All vertices within `k` hops of `from` (excluding `from`).
    pub fn k_hop(&self, from: NodeId, k: usize) -> Vec<NodeId> {
        let mut frontier = vec![from];
        let mut seen: std::collections::HashSet<NodeId> = [from].into();
        let mut out = Vec::new();
        for _ in 0..k {
            let mut next = Vec::new();
            for n in frontier {
                for e in self.edges_from(n) {
                    if seen.insert(e.to) {
                        next.push(e.to);
                        out.push(e.to);
                    }
                }
            }
            frontier = next;
        }
        out.sort_unstable();
        self.charge("graphstore.khop", out.len() as u64, 0, out.len() as u64 * 8);
        out
    }

    /// PageRank with damping 0.85; returns scores summing to ~1.
    pub fn pagerank(&self, iterations: usize) -> HashMap<NodeId, f64> {
        let n = self.nodes.len();
        if n == 0 {
            return HashMap::new();
        }
        let damping = 0.85;
        let mut rank: HashMap<NodeId, f64> =
            self.nodes.keys().map(|&id| (id, 1.0 / n as f64)).collect();
        for _ in 0..iterations {
            let mut next: HashMap<NodeId, f64> = self
                .nodes
                .keys()
                .map(|&id| (id, (1.0 - damping) / n as f64))
                .collect();
            let mut dangling = 0.0;
            for (&id, r) in &rank {
                let edges = self.edges_from(id);
                if edges.is_empty() {
                    dangling += r;
                } else {
                    let share = damping * r / edges.len() as f64;
                    for e in edges {
                        *next.get_mut(&e.to).expect("node exists") += share;
                    }
                }
            }
            let redistribute = damping * dangling / n as f64;
            for v in next.values_mut() {
                *v += redistribute;
            }
            rank = next;
        }
        self.charge(
            "graphstore.pagerank",
            (n * iterations) as u64,
            0,
            (self.edge_count() * iterations) as u64 * 4,
        );
        rank
    }

    fn reconstruct(from: NodeId, to: NodeId, prev: &HashMap<NodeId, NodeId>) -> Vec<NodeId> {
        if from == to {
            return vec![from];
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(&p) = prev.get(&cur) {
            path.push(p);
            cur = p;
            if cur == from {
                path.reverse();
                return path;
            }
        }
        Vec::new()
    }

    fn charge(&self, component: &str, elems: u64, bytes: u64, cycles: u64) {
        KernelReport::charge(
            &self.cpu,
            KernelClass::GraphTraverse,
            elems,
            bytes,
            cycles,
            Some(&self.ledger),
            component,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> c -> d, plus a -> c shortcut (weight 10).
    fn diamond() -> (GraphStore, [NodeId; 4]) {
        let mut g = GraphStore::new("g");
        let a = g.add_node("P", vec![]);
        let b = g.add_node("P", vec![]);
        let c = g.add_node("P", vec![]);
        let d = g.add_node("P", vec![]);
        g.add_edge(a, b, "E", 1.0).unwrap();
        g.add_edge(b, c, "E", 1.0).unwrap();
        g.add_edge(c, d, "E", 1.0).unwrap();
        g.add_edge(a, c, "E", 10.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn bfs_prefers_fewest_hops() {
        let (g, [a, _, c, d]) = diamond();
        assert_eq!(g.shortest_path(a, c).unwrap(), vec![a, c]); // 1 hop via shortcut
        assert_eq!(g.shortest_path(a, d).unwrap().len(), 3);
        assert_eq!(g.shortest_path(a, a).unwrap(), vec![a]);
    }

    #[test]
    fn dijkstra_prefers_light_weight() {
        let (g, [a, b, c, _]) = diamond();
        let (path, w) = g.dijkstra(a, c).unwrap();
        assert_eq!(path, vec![a, b, c]); // 2.0 beats the 10.0 shortcut
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut g = GraphStore::new("g");
        let a = g.add_node("P", vec![]);
        let b = g.add_node("P", vec![]);
        assert!(g.shortest_path(a, b).unwrap().is_empty());
        let (p, w) = g.dijkstra(a, b).unwrap();
        assert!(p.is_empty());
        assert!(w.is_infinite());
    }

    #[test]
    fn unknown_endpoints_error() {
        let (g, [a, ..]) = diamond();
        assert!(g.shortest_path(a, 999).is_err());
        assert!(g.dijkstra(999, a).is_err());
    }

    #[test]
    fn edge_to_missing_node_rejected() {
        let mut g = GraphStore::new("g");
        let a = g.add_node("P", vec![]);
        assert!(g.add_edge(a, 42, "E", 1.0).is_err());
    }

    #[test]
    fn pattern_match_respects_rel_and_label() {
        let mut g = GraphStore::new("g");
        let p = g.add_node("Patient", vec![]);
        let adm = g.add_node("Admission", vec![]);
        let icu = g.add_node("Ward", vec![]);
        let gen = g.add_node("Ward", vec![]);
        g.add_edge(p, adm, "HAS_ADMISSION", 1.0).unwrap();
        g.add_edge(adm, icu, "IN_WARD", 1.0).unwrap();
        g.add_edge(adm, gen, "TRANSFERRED", 1.0).unwrap();
        let paths = g.match_pattern(
            "Patient",
            &[
                PatternStep::new("HAS_ADMISSION", "Admission"),
                PatternStep::new("IN_WARD", "Ward"),
            ],
        );
        assert_eq!(paths, vec![vec![p, adm, icu]]);
        // Wildcard step matches both wards.
        let all = g.match_pattern(
            "Patient",
            &[
                PatternStep::new("HAS_ADMISSION", "Admission"),
                PatternStep::any(),
            ],
        );
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn k_hop_expansion() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.k_hop(a, 1), vec![b, c]);
        assert_eq!(g.k_hop(a, 2), vec![b, c, d]);
        assert!(g.k_hop(d, 3).is_empty());
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_sinks_high() {
        let (g, [a, _, c, d]) = diamond();
        let pr = g.pagerank(30);
        let total: f64 = pr.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(pr[&d] > pr[&a]); // d absorbs rank, a has no in-edges
        assert!(pr[&c] > pr[&a]);
    }

    #[test]
    fn negative_weights_rejected() {
        let mut g = GraphStore::new("g");
        let a = g.add_node("P", vec![]);
        let b = g.add_node("P", vec![]);
        g.add_edge(a, b, "E", -1.0).unwrap();
        assert!(g.dijkstra(a, b).is_err());
    }

    #[test]
    fn label_scan_sorted() {
        let (g, [a, b, c, d]) = diamond();
        let ids: Vec<NodeId> = g.nodes_with_label("P").iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![a, b, c, d]);
        assert!(g.nodes_with_label("X").is_empty());
    }
}

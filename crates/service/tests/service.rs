//! Service-level integration tests: plan-cache semantics, admission
//! behavior, and the headline guarantee — a query batch produces
//! byte-identical results and identical ledger totals at 1 worker and
//! at 8 workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pspp_accel::AcceleratorFleet;
use pspp_core::prelude::*;
use pspp_optimizer::OptLevel;
use pspp_service::{AdmissionConfig, AdmissionPolicy, Query, QueryService, ServiceConfig, Session};

fn shared_system(level: OptLevel) -> Arc<Polystore> {
    Arc::new(
        Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
            patients: 150,
            vitals_per_patient: 8,
            seed: 99,
        }))
        .accelerators(AcceleratorFleet::workstation())
        .opt_level(level)
        .build()
        .expect("valid config"),
    )
}

fn service_with_workers(system: &Arc<Polystore>, workers: usize) -> QueryService {
    QueryService::new(
        Arc::clone(system),
        ServiceConfig {
            admission: AdmissionConfig {
                workers,
                queue_depth: 64,
                policy: AdmissionPolicy::Block,
            },
            ..Default::default()
        },
    )
    .expect("valid service config")
}

const SQL: &str = "SELECT pid, age FROM admissions WHERE age >= 65 ORDER BY age DESC LIMIT 10";

#[test]
fn repeat_queries_hit_the_plan_cache() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    let session = service.open_session();
    let cold = session.execute(&Query::sql(SQL)).expect("cold run");
    let warm = session.execute(&Query::sql(SQL)).expect("warm run");
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    // Identical results and execution costs; cheaper service latency.
    assert_eq!(
        format!("{:?}", cold.report.execution.outputs),
        format!("{:?}", warm.report.execution.outputs),
    );
    assert_eq!(cold.report.costs, warm.report.costs);
    assert!(warm.plan_seconds < cold.plan_seconds);
    assert!(warm.service_seconds < cold.service_seconds);

    let stats = session.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    let cache = service.cache_stats();
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.len, 1);
}

#[test]
fn opt_level_change_invalidates_cached_plans() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    let session = service.open_session();
    assert!(
        !session
            .execute(&Query::sql(SQL))
            .expect("L2 cold")
            .cache_hit
    );
    assert!(
        session
            .execute(&Query::sql(SQL))
            .expect("L2 warm")
            .cache_hit
    );

    service.set_opt_level(OptLevel::L3);
    let l3 = session.execute(&Query::sql(SQL)).expect("L3 cold");
    assert!(!l3.cache_hit, "L2 plan must not serve an L3 query");
    assert!(
        session
            .execute(&Query::sql(SQL))
            .expect("L3 warm")
            .cache_hit
    );

    // The L2 plan is still resident and usable after switching back.
    service.set_opt_level(OptLevel::L2);
    assert!(
        session
            .execute(&Query::sql(SQL))
            .expect("L2 again")
            .cache_hit
    );
    assert_eq!(service.cache_stats().len, 2);
}

#[test]
fn dialects_do_not_share_cache_entries() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    let session = service.open_session();
    let text = "Will patients have a long stay at the hospital?";
    session.execute(&Query::nlq(text)).expect("nlq runs");
    // Same text through the SQL frontend must not hit the NLQ plan
    // (it fails to parse instead of silently reusing it).
    assert!(session.execute(&Query::sql(text)).is_err());
    assert_eq!(service.cache_stats().hits, 0);
}

#[test]
fn service_matches_direct_library_execution() {
    let system = shared_system(OptLevel::L2);
    let direct = system.run_sql(SQL).expect("direct run");
    let service = service_with_workers(&system, 4);
    let served = service
        .open_session()
        .execute(&Query::sql(SQL))
        .expect("served run");
    assert_eq!(
        format!("{:?}", direct.execution.outputs),
        format!("{:?}", served.report.execution.outputs),
    );
    assert_eq!(direct.costs, served.report.costs);
}

/// The headline guarantee: the same batch at 1 worker and at 8 workers
/// produces byte-identical per-query results and identical ledger
/// totals, summed in batch order.
#[test]
fn worker_count_never_changes_results_or_ledger_totals() {
    let system = shared_system(OptLevel::L2);
    let batch: Vec<Query> = vec![
        Query::sql(SQL),
        Query::sql("SELECT count(*) AS n FROM admissions"),
        Query::nlq("Will patients have a long stay at the hospital?"),
        Query::sql(
            "SELECT name FROM admissions JOIN db2.patients ON admissions.pid = patients.pid \
             WHERE age >= 80",
        ),
        Query::sql(SQL),
        Query::sql("SELECT pid FROM admissions WHERE age >= 30 AND age < 50"),
        Query::sql("SELECT count(*) AS n FROM admissions"),
        Query::nlq("Will patients have a long stay at the hospital?"),
    ];

    // (outputs debug rendering, ledger events, busy seconds, bytes)
    type PerQuery = (String, usize, f64, u64);
    let run_batch = |workers: usize, clients: usize| -> Vec<PerQuery> {
        let service = service_with_workers(&system, workers);
        for q in &batch {
            service.warm(q).expect("warms");
        }
        let slots: Mutex<Vec<Option<PerQuery>>> = Mutex::new(vec![None; batch.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let session: Session = service.open_session();
                let slots = &slots;
                let next = &next;
                let batch = &batch;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batch.len() {
                        return;
                    }
                    let resp = session.execute(&batch[i]).expect("query runs");
                    slots.lock().unwrap()[i] = Some((
                        format!("{:?}", resp.report.execution.outputs),
                        resp.report.costs.events,
                        resp.report.costs.busy.as_secs(),
                        resp.report.costs.bytes,
                    ));
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|s| s.expect("filled"))
            .collect()
    };

    let sequential = run_batch(1, 1);
    let concurrent = run_batch(8, 8);
    for (i, (a, b)) in sequential.iter().zip(&concurrent).enumerate() {
        assert_eq!(a.0, b.0, "query {i} outputs diverged");
        assert_eq!(a.1, b.1, "query {i} ledger event counts diverged");
        assert_eq!(
            a.2.to_bits(),
            b.2.to_bits(),
            "query {i} busy seconds diverged"
        );
        assert_eq!(a.3, b.3, "query {i} ledger bytes diverged");
    }
    // And the batch-order sums (what a service-wide report aggregates).
    let sum = |rs: &[(String, usize, f64, u64)]| {
        rs.iter()
            .fold((0usize, 0.0f64), |(e, b), r| (e + r.1, b + r.2))
    };
    let (ev_a, busy_a) = sum(&sequential);
    let (ev_b, busy_b) = sum(&concurrent);
    assert_eq!(ev_a, ev_b);
    assert_eq!(busy_a.to_bits(), busy_b.to_bits());
}

#[test]
fn reject_policy_sheds_excess_load() {
    let system = shared_system(OptLevel::L2);
    let service = QueryService::new(
        Arc::clone(&system),
        ServiceConfig {
            admission: AdmissionConfig {
                workers: 1,
                queue_depth: 1,
                policy: AdmissionPolicy::Reject,
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    let session = service.open_session();
    // ML training keeps the single worker busy while the submission
    // loop floods the depth-1 queue.
    let heavy = Query::nlq("Will patients have a long stay at the hospital?");
    let tickets: Vec<_> = (0..20).map(|_| session.submit(&heavy)).collect();
    let mut completed = 0;
    let mut rejected = 0;
    for t in tickets {
        match t {
            Ok(ticket) => {
                ticket.wait().expect("admitted queries succeed");
                completed += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e, pspp_common::Error::Overloaded { .. }),
                    "got {e:?}"
                );
                rejected += 1;
            }
        }
    }
    assert_eq!(completed + rejected, 20);
    assert!(rejected > 0, "queue of depth 1 never overflowed");
    let stats = session.stats();
    assert_eq!(stats.issued, 20);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, completed);
    assert_eq!(service.report().admission.rejected, rejected);
}

#[test]
fn per_session_stats_merge_into_service_report() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    let alice = service.open_session();
    let bob = service.open_session();
    alice.execute(&Query::sql(SQL)).expect("runs");
    alice.execute(&Query::sql(SQL)).expect("runs");
    bob.execute(&Query::sql("SELECT count(*) AS n FROM admissions"))
        .expect("runs");

    let report = service.report();
    assert_eq!(report.sessions.len(), 2);
    assert_eq!(report.merged.completed, 3);
    assert_eq!(report.merged.cache_hits, 1);
    assert_eq!(report.merged.cache_misses, 2);
    assert_eq!(report.merged.latency.count(), 3);
    assert!(report.merged.sim_seconds > 0.0);
    let text = report.to_string();
    assert!(text.contains("plan cache"), "report display: {text}");

    let a = report.sessions.iter().find(|s| s.session == alice.id());
    assert_eq!(a.expect("alice row").completed, 2);
    assert_eq!(bob.stats().completed, 1);
}

#[test]
fn closed_sessions_leave_the_list_but_stay_in_the_merge() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    {
        let ephemeral = service.open_session();
        ephemeral.execute(&Query::sql(SQL)).expect("runs");
    } // last clone dropped: the session closes
    let survivor = service.open_session();
    survivor.execute(&Query::sql(SQL)).expect("runs");

    let report = service.report();
    assert_eq!(report.sessions.len(), 1, "closed session still listed");
    assert_eq!(report.sessions[0].session, survivor.id());
    assert_eq!(report.merged.completed, 2, "closed session lost from merge");
    assert_eq!(report.merged.cache_hits, 1);
    assert_eq!(report.merged.latency.count(), 2);
}

#[test]
fn cloned_tickets_can_all_wait() {
    let service = service_with_workers(&shared_system(OptLevel::L2), 2);
    let session = service.open_session();
    let ticket = session.submit(&Query::sql(SQL)).expect("admitted");
    let clone = ticket.clone();
    let a = ticket.wait().expect("first waiter");
    let b = clone.wait().expect("second waiter must not hang");
    assert_eq!(
        format!("{:?}", a.report.execution.outputs),
        format!("{:?}", b.report.execution.outputs),
    );
}

#[test]
fn sessions_survive_heavy_interleaving() {
    // Smoke test for the shared engine state: 4 sessions x 8 mixed
    // queries with 4 workers, all through one Arc'd system.
    let system = shared_system(OptLevel::L3);
    let service = service_with_workers(&system, 4);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = service.open_session();
            scope.spawn(move || {
                for i in 0..8 {
                    let q = if i % 3 == 0 {
                        Query::sql("SELECT count(*) AS n FROM admissions")
                    } else {
                        Query::sql(SQL)
                    };
                    session.execute(&q).expect("query runs");
                }
            });
        }
    });
    let report = service.report();
    assert_eq!(report.merged.completed, 32);
    assert_eq!(report.merged.failed, 0);
    assert!(report.cache.hit_rate() > 0.5);
}

#[test]
fn result_cache_hits_bypass_the_executor_and_bill_lookup_cost() {
    let system = shared_system(OptLevel::L2);
    let service = QueryService::new(
        Arc::clone(&system),
        ServiceConfig {
            result_cache: Some(true),
            ..Default::default()
        },
    )
    .expect("valid service config");
    let session = service.open_session();
    let cold = session.execute(&Query::sql(SQL)).expect("cold run");
    let warm = session.execute(&Query::sql(SQL)).expect("warm run");
    assert!(!cold.result_cache_hit);
    assert!(warm.result_cache_hit, "repeat should hit the result cache");
    // Byte-identical outputs; the hit is billed at lookup cost.
    assert_eq!(
        format!("{:?}", cold.report.execution.outputs),
        format!("{:?}", warm.report.execution.outputs),
    );
    assert!(warm.service_seconds < cold.service_seconds);
    assert_eq!(warm.report.costs.events, 1, "one lookup event, no executor");
    // Billed at the flat 2 µs lookup cost, not the execution's ledger.
    assert!((warm.report.costs.busy.as_secs() - 2e-6).abs() < 1e-12);
    assert_ne!(warm.report.costs, cold.report.costs);

    let report = service.report();
    assert_eq!(report.results.hits, 1);
    assert_eq!(report.results.misses, 1);
    assert_eq!(report.merged.result_hits, 1);
    // The hint EWMA saw both completions.
    assert!(report.retry_after_seconds > 0.0);
    // Metrics flow through the Prometheus path.
    let prom = report.prometheus();
    assert!(
        prom.contains("pspp_result_cache_lookups_total"),
        "missing result-cache series in:\n{prom}"
    );
}

#[test]
fn write_shaped_queries_bump_the_epoch_and_orphan_cached_results() {
    let system = shared_system(OptLevel::L2);
    let epoch_before = system.epoch();
    let service = QueryService::new(
        Arc::clone(&system),
        ServiceConfig {
            result_cache: Some(true),
            ..Default::default()
        },
    )
    .expect("valid service config");
    let session = service.open_session();
    session.execute(&Query::sql(SQL)).expect("cold run");
    assert!(
        session
            .execute(&Query::sql(SQL))
            .expect("warm")
            .result_cache_hit
    );

    assert!(Query::sql("INSERT INTO admissions VALUES (1)").mutates_state());
    assert!(Query::sql("  drop table admissions").mutates_state());
    assert!(!Query::sql(SQL).mutates_state());

    // The mini-SQL frontend may reject the DML text — irrelevant: the
    // epoch bump lands before planning, so the cached entries are
    // orphaned whether or not the mutation itself succeeds.
    let _ = session.execute(&Query::sql("INSERT INTO admissions VALUES (1, 2)"));
    assert!(system.epoch() > epoch_before, "write-shaped query bumps");

    let after = session.execute(&Query::sql(SQL)).expect("post-write run");
    assert!(
        !after.result_cache_hit,
        "pre-write results can never serve a post-write read"
    );
    assert!(!after.cache_hit, "plans replan under the new epoch too");
    assert!(
        service.result_cache_stats().invalidations >= 1,
        "the stale entry is garbage-collected and counted"
    );
}

#[test]
fn reshard_epoch_invalidates_cached_results() {
    let system = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
        patients: 150,
        vitals_per_patient: 8,
        seed: 99,
    }))
    .result_cache(true)
    .build()
    .expect("valid config");
    // Warm through a service, then mutate the engine state and verify
    // the old entry can never match again.
    let epoch_before = system.epoch();
    let arc = Arc::new(system);
    let service = QueryService::new(Arc::clone(&arc), ServiceConfig::default())
        .expect("valid service config");
    let session = service.open_session();
    session.execute(&Query::sql(SQL)).expect("cold run");
    assert!(
        session
            .execute(&Query::sql(SQL))
            .expect("warm")
            .result_cache_hit
    );
    drop(session);
    drop(service);

    let mut system = Arc::try_unwrap(arc).expect("sole owner");
    system
        .reshard(
            &TableRef::new("db1", "admissions"),
            PartitionSpec::hash("pid", 3),
        )
        .expect("reshard");
    assert!(system.epoch() > epoch_before, "mutation bumps the epoch");

    let service = QueryService::new(Arc::new(system), ServiceConfig::default())
        .expect("valid service config");
    let session = service.open_session();
    let after = session.execute(&Query::sql(SQL)).expect("post-reshard run");
    assert!(
        !after.result_cache_hit,
        "new epoch keys can never match pre-reshard entries"
    );
}

//! The plan cache: compiled + optimized programs memoized by query
//! text, so repeat queries skip the frontend and the optimizer.
//!
//! The key includes the optimization level: changing the level (the
//! Fig. 6 ablation knob, exposed per-service by
//! [`QueryService::set_opt_level`](crate::QueryService::set_opt_level))
//! invalidates every plan cached at the old level simply by never
//! matching it again. Eviction is least-recently-used under a fixed
//! capacity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use pspp_ir::Program;
use pspp_optimizer::{OptLevel, PlacementPlan, RewriteReport};
use pspp_telemetry::{Counter, MetricsRegistry};

/// Which frontend produced the cached program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dialect {
    /// Mini-SQL text.
    Sql,
    /// Natural-language question.
    Nlq,
    /// Heterogeneous multi-language program (keyed by its spec).
    Hetero,
}

impl std::fmt::Display for Dialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dialect::Sql => "sql",
            Dialect::Nlq => "nlq",
            Dialect::Hetero => "hetero",
        })
    }
}

/// Cache key: (dialect, normalized query text, optimization level).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The frontend dialect.
    pub dialect: Dialect,
    /// The query text (hetero programs use their spec rendering).
    pub text: String,
    /// The optimization level the plan was produced at.
    pub opt_level: OptLevel,
}

/// A compiled + optimized program with its planning artifacts.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimized IR program, ready to execute.
    pub program: Program,
    /// L1 rewrites applied while optimizing.
    pub rewrites: RewriteReport,
    /// L2+ placement summary, when produced.
    pub placement: Option<PlacementPlan>,
    /// Simulated seconds the frontend + optimizer cost (charged to a
    /// query only on a cache miss).
    pub plan_seconds: f64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable plan.
    pub hits: u64,
    /// Lookups that required planning.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry mirrors of the cache counters, updated alongside
/// [`Inner`]'s own fields so scrapes and [`CacheStats`] agree.
#[derive(Debug, Clone)]
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl CacheMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let counter = |outcome: &str| {
            registry.counter(
                "pspp_plan_cache_lookups_total",
                "Plan-cache lookups by outcome.",
                &[("outcome", outcome)],
            )
        };
        CacheMetrics {
            hits: counter("hit"),
            misses: counter("miss"),
            insertions: registry.counter(
                "pspp_plan_cache_insertions_total",
                "Plans inserted into the cache.",
                &[],
            ),
            evictions: registry.counter(
                "pspp_plan_cache_evictions_total",
                "Plans evicted by the LRU policy.",
                &[],
            ),
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// A thread-safe LRU plan cache.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    metrics: Option<CacheMetrics>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            metrics: None,
        }
    }

    /// Mirrors hit/miss/insertion/eviction counters into `registry`
    /// (series `pspp_plan_cache_*`).
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(CacheMetrics::new(registry));
        self
    }

    fn guard(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a plan, bumping its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        let mut inner = self.guard();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(plan)
            }
            None => {
                inner.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Inserts (or replaces) a plan, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: PlanKey, plan: Arc<CachedPlan>) {
        let mut inner = self.guard();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
        inner.insertions += 1;
        if let Some(m) = &self.metrics {
            m.insertions.inc();
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Drops every cached plan and resets the LRU bookkeeping (the
    /// recency tick restarts from zero so post-clear eviction order
    /// matches a fresh cache; the effectiveness counters are
    /// preserved). Leaving the tick running was a latent bug: entries
    /// inserted after a clear inherited a recency epoch that dwarfed
    /// any later tick comparison against restored state.
    pub fn clear(&self) {
        let mut inner = self.guard();
        inner.map.clear();
        inner.tick = 0;
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.guard().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.guard();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(text: &str, level: OptLevel) -> PlanKey {
        PlanKey {
            dialect: Dialect::Sql,
            text: text.into(),
            opt_level: level,
        }
    }

    fn plan() -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            program: Program::new(),
            rewrites: RewriteReport::default(),
            placement: None,
            plan_seconds: 1e-3,
        })
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = PlanCache::new(8);
        assert!(cache.get(&key("q1", OptLevel::L2)).is_none());
        cache.insert(key("q1", OptLevel::L2), plan());
        assert!(cache.get(&key("q1", OptLevel::L2)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opt_level_partitions_the_key_space() {
        let cache = PlanCache::new(8);
        cache.insert(key("q", OptLevel::L2), plan());
        assert!(cache.get(&key("q", OptLevel::L3)).is_none());
        assert!(cache.get(&key("q", OptLevel::L2)).is_some());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert(key("a", OptLevel::L2), plan());
        cache.insert(key("b", OptLevel::L2), plan());
        // Touch `a`, making `b` the LRU victim.
        assert!(cache.get(&key("a", OptLevel::L2)).is_some());
        cache.insert(key("c", OptLevel::L2), plan());
        assert!(cache.get(&key("b", OptLevel::L2)).is_none());
        assert!(cache.get(&key("a", OptLevel::L2)).is_some());
        assert!(cache.get(&key("c", OptLevel::L2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4);
        cache.insert(key("a", OptLevel::L2), plan());
        cache.get(&key("a", OptLevel::L2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_resets_lru_bookkeeping() {
        // Regression: eviction order after clear() must match a fresh
        // cache — same inserts/gets, same victim.
        let run = |cache: &PlanCache| {
            cache.insert(key("a", OptLevel::L2), plan());
            cache.insert(key("b", OptLevel::L2), plan());
            assert!(cache.get(&key("a", OptLevel::L2)).is_some());
            cache.insert(key("c", OptLevel::L2), plan());
            let mut resident: Vec<&str> = ["a", "b", "c"]
                .into_iter()
                .filter(|q| cache.get(&key(q, OptLevel::L2)).is_some())
                .collect();
            resident.sort_unstable();
            resident
        };
        let fresh = PlanCache::new(2);
        let expected = run(&fresh);
        assert_eq!(expected, vec!["a", "c"], "b is the LRU victim");

        let cleared = PlanCache::new(2);
        // Age the tick far past anything the post-clear inserts reach.
        for i in 0..64 {
            cleared.insert(key(&format!("warm{i}"), OptLevel::L2), plan());
            cleared.get(&key(&format!("warm{i}"), OptLevel::L2));
        }
        cleared.clear();
        let inner = cleared.guard();
        assert_eq!(inner.tick, 0, "clear() must reset the recency tick");
        drop(inner);
        assert_eq!(run(&cleared), expected, "post-clear LRU = fresh LRU");
    }
}

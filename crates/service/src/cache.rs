//! The service caches: plans and results memoized under epoch-guarded
//! keys.
//!
//! [`PlanCache`] memoizes compiled + optimized programs by query text,
//! so repeat queries skip the frontend and the optimizer. The key
//! includes the optimization level: changing the level (the Fig. 6
//! ablation knob, exposed per-service by
//! [`QueryService::set_opt_level`](crate::QueryService::set_opt_level))
//! invalidates every plan cached at the old level simply by never
//! matching it again. Eviction is least-recently-used under a fixed
//! capacity.
//!
//! [`ResultCache`] goes one step further for read-only repeats: it
//! memoizes whole execution reports keyed by `(plan digest,
//! engine-state epoch)`. The epoch
//! ([`ShardedRegistry::epoch`](pspp_runtime::ShardedRegistry::epoch))
//! is bumped by every engine mutation (`reshard`, registration,
//! partition/fleet changes), so a stale hit is structurally impossible:
//! entries populated under an older engine state simply never match
//! again, and the cache's internal epoch advance garbage-collects (and counts)
//! them as invalidations. Both caches key by epoch for the same reason
//! — correctness by key construction, not by scanning.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use pspp_common::partition::{fnv1a, FNV_OFFSET};
use pspp_core::RunReport;
use pspp_ir::Program;
use pspp_optimizer::{OptLevel, PlacementPlan, RewriteReport};
use pspp_telemetry::{Counter, Gauge, MetricsRegistry};

/// Which frontend produced the cached program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dialect {
    /// Mini-SQL text.
    Sql,
    /// Natural-language question.
    Nlq,
    /// Heterogeneous multi-language program (keyed by its spec).
    Hetero,
}

impl std::fmt::Display for Dialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dialect::Sql => "sql",
            Dialect::Nlq => "nlq",
            Dialect::Hetero => "hetero",
        })
    }
}

/// Cache key: (dialect, normalized query text, optimization level,
/// engine-state epoch).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The frontend dialect.
    pub dialect: Dialect,
    /// The query text (hetero programs use their spec rendering).
    pub text: String,
    /// The optimization level the plan was produced at.
    pub opt_level: OptLevel,
    /// The engine-state epoch the plan was produced under. A reshard
    /// (or any other engine mutation) bumps the epoch, so plans derived
    /// from the old layout stop matching — the same
    /// invalidation-by-key scheme the result cache uses.
    pub epoch: u64,
}

impl PlanKey {
    /// Stable FNV-1a digest of this key's canonical bytes, *excluding*
    /// the epoch — the plan-identity half of a [`ResultKey`] (the
    /// epoch rides separately so invalidation can reason about it).
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(self.dialect.to_string().as_bytes(), FNV_OFFSET);
        h = fnv1a(format!("{:?}", self.opt_level).as_bytes(), h);
        fnv1a(self.text.as_bytes(), h)
    }
}

/// A compiled + optimized program with its planning artifacts.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimized IR program, ready to execute.
    pub program: Program,
    /// L1 rewrites applied while optimizing.
    pub rewrites: RewriteReport,
    /// L2+ placement summary, when produced.
    pub placement: Option<PlacementPlan>,
    /// Simulated seconds the frontend + optimizer cost (charged to a
    /// query only on a cache miss).
    pub plan_seconds: f64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable plan.
    pub hits: u64,
    /// Lookups that required planning.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Registry mirrors of the cache counters, updated alongside
/// [`Inner`]'s own fields so scrapes and [`CacheStats`] agree.
#[derive(Debug, Clone)]
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl CacheMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let counter = |outcome: &str| {
            registry.counter(
                "pspp_plan_cache_lookups_total",
                "Plan-cache lookups by outcome.",
                &[("outcome", outcome)],
            )
        };
        CacheMetrics {
            hits: counter("hit"),
            misses: counter("miss"),
            insertions: registry.counter(
                "pspp_plan_cache_insertions_total",
                "Plans inserted into the cache.",
                &[],
            ),
            evictions: registry.counter(
                "pspp_plan_cache_evictions_total",
                "Plans evicted by the LRU policy.",
                &[],
            ),
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// A thread-safe LRU plan cache.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    metrics: Option<CacheMetrics>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            metrics: None,
        }
    }

    /// Mirrors hit/miss/insertion/eviction counters into `registry`
    /// (series `pspp_plan_cache_*`).
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(CacheMetrics::new(registry));
        self
    }

    fn guard(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a plan, bumping its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        let mut inner = self.guard();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                inner.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(plan)
            }
            None => {
                inner.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Inserts (or replaces) a plan, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: PlanKey, plan: Arc<CachedPlan>) {
        let mut inner = self.guard();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
        inner.insertions += 1;
        if let Some(m) = &self.metrics {
            m.insertions.inc();
        }
        inner.map.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Drops every cached plan and resets the LRU bookkeeping (the
    /// recency tick restarts from zero so post-clear eviction order
    /// matches a fresh cache; the effectiveness counters are
    /// preserved). Leaving the tick running was a latent bug: entries
    /// inserted after a clear inherited a recency epoch that dwarfed
    /// any later tick comparison against restored state.
    pub fn clear(&self) {
        let mut inner = self.guard();
        inner.map.clear();
        inner.tick = 0;
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.guard().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.guard();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            len: inner.map.len(),
        }
    }
}

/// Result-cache key: which plan, under which engine state.
///
/// Invalidation is the key itself: every engine mutation bumps the
/// registry epoch, so entries recorded under the old epoch can never
/// be returned again — no scan, no flag, no race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// [`PlanKey::digest`] of the populating plan.
    pub plan_digest: u64,
    /// The engine-state epoch the result was computed under.
    pub epoch: u64,
}

/// A memoized execution: the full run report of the populating miss
/// plus the two numbers a hit needs to bill itself honestly.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The run report as executed on the populating miss (outputs,
    /// traces, rewrites, placement, real ledger totals).
    pub report: RunReport,
    /// Order-sensitive FNV digest of the outputs — hits return the
    /// byte-identical digest the real execution produced.
    pub digest: u64,
    /// The populating execution's simulated makespan: what a miss
    /// would have cost, and the number hit-rate speedups compare
    /// against.
    pub exec_seconds: f64,
}

impl CachedResult {
    /// Estimated resident payload bytes of this memoized execution:
    /// the sum of its output datasets' payload bytes (rows × value
    /// widths; models count their parameters). Empty results still
    /// meter one byte so the budget sees every entry.
    pub fn estimated_bytes(&self) -> u64 {
        self.report
            .execution
            .outputs
            .iter()
            .map(pspp_runtime::Dataset::byte_size)
            .sum::<u64>()
            .max(1)
    }
}

/// Counters describing result-cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups served from the cache (executor bypassed).
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Results evicted by the LRU policy.
    pub evictions: u64,
    /// Stale-epoch entries garbage-collected after an engine mutation.
    pub invalidations: u64,
    /// Results currently resident.
    pub len: usize,
    /// Estimated payload bytes currently resident (what the byte
    /// budget meters).
    pub bytes: u64,
}

impl ResultCacheStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another partition's counters into this one (per-tenant
    /// result-cache partitions merge into one service-wide row).
    pub fn absorb(&mut self, other: &ResultCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.len += other.len;
        self.bytes += other.bytes;
    }
}

/// Registry mirrors of the result-cache counters.
#[derive(Debug, Clone)]
struct ResultCacheMetrics {
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    bytes: Gauge,
}

impl ResultCacheMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let counter = |outcome: &str| {
            registry.counter(
                "pspp_result_cache_lookups_total",
                "Result-cache lookups by outcome.",
                &[("outcome", outcome)],
            )
        };
        ResultCacheMetrics {
            hits: counter("hit"),
            misses: counter("miss"),
            invalidations: registry.counter(
                "pspp_result_cache_invalidations_total",
                "Stale-epoch results garbage-collected after engine mutations.",
                &[],
            ),
            bytes: registry.gauge(
                "pspp_result_cache_bytes",
                "High-water estimated payload bytes resident in result caches.",
                &[],
            ),
        }
    }
}

#[derive(Debug, Default)]
struct ResultInner {
    map: HashMap<ResultKey, ResultEntry>,
    tick: u64,
    /// Highest epoch observed; entries below it are unreachable and
    /// get garbage-collected (counted as invalidations).
    epoch: u64,
    /// Estimated payload bytes across resident entries.
    bytes: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
}

#[derive(Debug)]
struct ResultEntry {
    result: Arc<CachedResult>,
    last_used: u64,
    /// [`CachedResult::estimated_bytes`] at insertion, so removal can
    /// return exactly what was metered.
    bytes: u64,
}

/// A thread-safe LRU result cache keyed by `(plan digest, epoch)` —
/// the [`PlanCache`] LRU, holding whole execution reports. Besides the
/// entry-count capacity it can carry a byte budget
/// ([`ResultCache::with_byte_budget`]): inserts evict
/// least-recently-used entries until the resident payload estimate
/// fits, so memoizing a few huge results cannot pin unbounded memory.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<ResultInner>,
    capacity: usize,
    budget_bytes: Option<u64>,
    metrics: Option<ResultCacheMetrics>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(ResultInner::default()),
            capacity: capacity.max(1),
            budget_bytes: None,
            metrics: None,
        }
    }

    /// Caps resident payload bytes (estimated as rows × value widths):
    /// an insert that would overflow the budget evicts
    /// least-recently-used entries first. A single over-budget entry
    /// still caches (the cache always admits the newest result) but
    /// evicts everything else.
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.budget_bytes = Some(bytes.max(1));
        self
    }

    /// Mirrors hit/miss/invalidation counters into `registry` (series
    /// `pspp_result_cache_*`).
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(ResultCacheMetrics::new(registry));
        self
    }

    fn guard(&self) -> MutexGuard<'_, ResultInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Advances the cache to `epoch`, garbage-collecting every entry
    /// recorded under an older epoch. Stale entries are unreachable
    /// either way (the epoch is part of the key); this frees their
    /// memory and counts them as invalidations.
    fn advance_epoch(&self, inner: &mut ResultInner, epoch: u64) {
        if epoch <= inner.epoch {
            return;
        }
        inner.epoch = epoch;
        let before = inner.map.len();
        let mut freed = 0u64;
        inner.map.retain(|k, e| {
            if k.epoch >= epoch {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        inner.bytes -= freed;
        let dropped = (before - inner.map.len()) as u64;
        if dropped > 0 {
            inner.invalidations += dropped;
            if let Some(m) = &self.metrics {
                m.invalidations.add(dropped);
            }
        }
    }

    /// Removes the least-recently-used entry, returning whether one
    /// existed.
    fn evict_lru(inner: &mut ResultInner) -> bool {
        let Some(victim) = inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        else {
            return false;
        };
        if let Some(entry) = inner.map.remove(&victim) {
            inner.bytes -= entry.bytes;
        }
        inner.evictions += 1;
        true
    }

    /// Looks up a result, bumping its recency on a hit. The key's
    /// epoch also advances the cache's epoch watermark, invalidating
    /// older entries.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<CachedResult>> {
        let mut inner = self.guard();
        self.advance_epoch(&mut inner, key.epoch);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let result = entry.result.clone();
                inner.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(result)
            }
            None => {
                inner.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Inserts (or replaces) a result, evicting least-recently-used
    /// entries while over the entry capacity or the byte budget.
    pub fn insert(&self, key: ResultKey, result: Arc<CachedResult>) {
        let mut inner = self.guard();
        self.advance_epoch(&mut inner, key.epoch);
        if key.epoch < inner.epoch {
            // A straggler computed under an old engine state: never
            // cache it, it could only ever be a stale hit.
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            Self::evict_lru(&mut inner);
        }
        let bytes = result.estimated_bytes();
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.insertions += 1;
        inner.bytes += bytes;
        inner.map.insert(
            key,
            ResultEntry {
                result,
                last_used: tick,
                bytes,
            },
        );
        if let Some(budget) = self.budget_bytes {
            // The fresh entry is the most recent, so it survives: the
            // loop stops once it is the only resident entry even if it
            // alone overflows the budget.
            while inner.bytes > budget && inner.map.len() > 1 {
                Self::evict_lru(&mut inner);
            }
        }
        if let Some(m) = &self.metrics {
            m.bytes.record_max(inner.bytes as i64);
        }
    }

    /// Drops every cached result and resets the LRU tick (counters and
    /// the epoch watermark survive, mirroring [`PlanCache::clear`]).
    pub fn clear(&self) {
        let mut inner = self.guard();
        inner.map.clear();
        inner.bytes = 0;
        inner.tick = 0;
    }

    /// Number of resident results.
    pub fn len(&self) -> usize {
        self.guard().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.guard();
        ResultCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            len: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(text: &str, level: OptLevel) -> PlanKey {
        PlanKey {
            dialect: Dialect::Sql,
            text: text.into(),
            opt_level: level,
            epoch: 0,
        }
    }

    fn plan() -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            program: Program::new(),
            rewrites: RewriteReport::default(),
            placement: None,
            plan_seconds: 1e-3,
        })
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = PlanCache::new(8);
        assert!(cache.get(&key("q1", OptLevel::L2)).is_none());
        cache.insert(key("q1", OptLevel::L2), plan());
        assert!(cache.get(&key("q1", OptLevel::L2)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opt_level_partitions_the_key_space() {
        let cache = PlanCache::new(8);
        cache.insert(key("q", OptLevel::L2), plan());
        assert!(cache.get(&key("q", OptLevel::L3)).is_none());
        assert!(cache.get(&key("q", OptLevel::L2)).is_some());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert(key("a", OptLevel::L2), plan());
        cache.insert(key("b", OptLevel::L2), plan());
        // Touch `a`, making `b` the LRU victim.
        assert!(cache.get(&key("a", OptLevel::L2)).is_some());
        cache.insert(key("c", OptLevel::L2), plan());
        assert!(cache.get(&key("b", OptLevel::L2)).is_none());
        assert!(cache.get(&key("a", OptLevel::L2)).is_some());
        assert!(cache.get(&key("c", OptLevel::L2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4);
        cache.insert(key("a", OptLevel::L2), plan());
        cache.get(&key("a", OptLevel::L2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_resets_lru_bookkeeping() {
        // Regression: eviction order after clear() must match a fresh
        // cache — same inserts/gets, same victim.
        let run = |cache: &PlanCache| {
            cache.insert(key("a", OptLevel::L2), plan());
            cache.insert(key("b", OptLevel::L2), plan());
            assert!(cache.get(&key("a", OptLevel::L2)).is_some());
            cache.insert(key("c", OptLevel::L2), plan());
            let mut resident: Vec<&str> = ["a", "b", "c"]
                .into_iter()
                .filter(|q| cache.get(&key(q, OptLevel::L2)).is_some())
                .collect();
            resident.sort_unstable();
            resident
        };
        let fresh = PlanCache::new(2);
        let expected = run(&fresh);
        assert_eq!(expected, vec!["a", "c"], "b is the LRU victim");

        let cleared = PlanCache::new(2);
        // Age the tick far past anything the post-clear inserts reach.
        for i in 0..64 {
            cleared.insert(key(&format!("warm{i}"), OptLevel::L2), plan());
            cleared.get(&key(&format!("warm{i}"), OptLevel::L2));
        }
        cleared.clear();
        let inner = cleared.guard();
        assert_eq!(inner.tick, 0, "clear() must reset the recency tick");
        drop(inner);
        assert_eq!(run(&cleared), expected, "post-clear LRU = fresh LRU");
    }

    fn cached_result() -> Arc<CachedResult> {
        Arc::new(CachedResult {
            report: RunReport {
                execution: pspp_runtime::ExecutionReport {
                    outputs: Vec::new(),
                    node_seconds: HashMap::new(),
                    migration_seconds: 0.0,
                    makespan_sequential: 1e-3,
                    makespan_pipelined: 1e-3,
                    pipelined: false,
                    offloaded: 0,
                    device_assignments: HashMap::new(),
                    fused_chains: Vec::new(),
                    queue_wait_seconds: 0.0,
                    traces: Vec::new(),
                },
                rewrites: RewriteReport::default(),
                placement: None,
                costs: Default::default(),
            },
            digest: 42,
            exec_seconds: 1e-3,
        })
    }

    #[test]
    fn plan_key_digest_ignores_epoch() {
        let mut a = key("select * from t", OptLevel::L2);
        let mut b = a.clone();
        a.epoch = 1;
        b.epoch = 7;
        assert_eq!(a.digest(), b.digest());
        let c = key("select * from u", OptLevel::L2);
        assert_ne!(a.digest(), c.digest());
        let d = key("select * from t", OptLevel::L1);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn result_cache_hits_within_an_epoch() {
        let cache = ResultCache::new(8);
        let k = ResultKey {
            plan_digest: 1,
            epoch: 3,
        };
        assert!(cache.get(&k).is_none());
        cache.insert(k, cached_result());
        assert_eq!(cache.get(&k).unwrap().digest, 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len, s.invalidations), (1, 1, 1, 0));
    }

    #[test]
    fn epoch_bump_invalidates_structurally_and_collects() {
        let cache = ResultCache::new(8);
        let old = ResultKey {
            plan_digest: 1,
            epoch: 3,
        };
        cache.insert(old, cached_result());
        assert_eq!(cache.len(), 1);
        // Same plan, later engine state: miss, and the stale entry is
        // garbage-collected and counted.
        let new = ResultKey {
            plan_digest: 1,
            epoch: 4,
        };
        assert!(cache.get(&new).is_none());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.len, 0);
        // A straggler insert under the old epoch is refused.
        cache.insert(old, cached_result());
        assert!(cache.get(&old).is_none());
        assert_eq!(cache.stats().len, 0);
    }

    /// A memoized result carrying `rows` one-Int rows (8 payload bytes
    /// each), so byte-budget tests can reason in exact sizes.
    fn sized_result(rows: usize) -> Arc<CachedResult> {
        use pspp_common::{row, DataType, EngineId, Schema};
        let mut base = (*cached_result()).clone();
        base.report.execution.outputs = vec![pspp_runtime::Dataset::rows(
            Schema::new(vec![("a", DataType::Int)]),
            (0..rows).map(|i| row![i as i64]).collect(),
            pspp_common::DataModel::Relational,
            EngineId::new("db1"),
        )];
        Arc::new(base)
    }

    #[test]
    fn byte_budget_evicts_lru_under_pressure() {
        // Three 10-row results at 80 bytes each against a 170-byte
        // budget: the third insert evicts the least-recently-used.
        let cache = ResultCache::new(64).with_byte_budget(170);
        let k = |d: u64| ResultKey {
            plan_digest: d,
            epoch: 0,
        };
        assert_eq!(sized_result(10).estimated_bytes(), 80);
        cache.insert(k(1), sized_result(10));
        cache.insert(k(2), sized_result(10));
        assert_eq!(cache.stats().bytes, 160);
        assert!(cache.get(&k(1)).is_some()); // 2 becomes the victim
        cache.insert(k(3), sized_result(10));
        let s = cache.stats();
        assert_eq!(s.bytes, 160, "budget holds: one entry evicted");
        assert_eq!(s.evictions, 1);
        assert!(cache.get(&k(2)).is_none());
        assert!(cache.get(&k(1)).is_some());
        assert!(cache.get(&k(3)).is_some());
    }

    #[test]
    fn oversized_entry_still_caches_but_alone() {
        let cache = ResultCache::new(64).with_byte_budget(100);
        let k = |d: u64| ResultKey {
            plan_digest: d,
            epoch: 0,
        };
        cache.insert(k(1), sized_result(5)); // 40 bytes
        cache.insert(k(2), sized_result(50)); // 400 bytes > budget
        assert!(cache.get(&k(1)).is_none(), "evicted to make room");
        assert!(cache.get(&k(2)).is_some(), "newest always admits");
        assert_eq!(cache.stats().bytes, 400);
    }

    #[test]
    fn bytes_track_invalidation_and_clear() {
        let cache = ResultCache::new(64).with_byte_budget(1 << 20);
        cache.insert(
            ResultKey {
                plan_digest: 1,
                epoch: 0,
            },
            sized_result(10),
        );
        assert_eq!(cache.stats().bytes, 80);
        // An epoch-1 lookup garbage-collects the stale entry's bytes.
        assert!(cache
            .get(&ResultKey {
                plan_digest: 1,
                epoch: 1,
            })
            .is_none());
        assert_eq!(cache.stats().bytes, 0);
        cache.insert(
            ResultKey {
                plan_digest: 2,
                epoch: 1,
            },
            sized_result(10),
        );
        cache.clear();
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn result_cache_lru_eviction() {
        let cache = ResultCache::new(2);
        let k = |d: u64| ResultKey {
            plan_digest: d,
            epoch: 0,
        };
        cache.insert(k(1), cached_result());
        cache.insert(k(2), cached_result());
        assert!(cache.get(&k(1)).is_some()); // 2 becomes the victim
        cache.insert(k(3), cached_result());
        assert!(cache.get(&k(2)).is_none());
        assert!(cache.get(&k(1)).is_some());
        assert!(cache.get(&k(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}

//! Admission control: a bounded worker pool with a backpressure policy.
//!
//! Submissions enter a bounded FIFO queue drained by a fixed set of
//! worker threads. When the queue is full the configured
//! [`AdmissionPolicy`] decides between blocking the submitter
//! (backpressure) and rejecting the job (load shedding,
//! [`pspp_common::Error::Overloaded`]). This is the only place in the
//! workspace that creates long-lived threads; everything submitted
//! through it is a plain `FnOnce` closure, so the pool is reusable for
//! any service-side work.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use pspp_common::{Error, Result};
use pspp_telemetry::{Counter, Gauge, MetricsRegistry};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What to do with a submission when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until queue space frees up.
    #[default]
    Block,
    /// Reject immediately with [`Error::Overloaded`].
    Reject,
}

/// Admission controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Worker threads executing admitted queries (>= 1).
    pub workers: usize,
    /// Jobs that may wait in the queue beyond the ones being executed.
    pub queue_depth: usize,
    /// Full-queue behavior.
    pub policy: AdmissionPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            workers: 4,
            queue_depth: 64,
            policy: AdmissionPolicy::Block,
        }
    }
}

/// Counters describing admission behavior since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Jobs rejected by the `Reject` policy (or after shutdown).
    pub rejected: u64,
    /// Jobs that found the queue full and blocked for space.
    pub blocked: u64,
    /// Jobs handed to a worker.
    pub executed: u64,
    /// Largest queue length observed.
    pub peak_queue: usize,
    /// The back-off hint a rejected submission would receive right now
    /// (simulated microseconds): current queue length divided by the
    /// worker count, scaled by the recent mean job service time. `0`
    /// until the first completed job reports its service time.
    pub retry_after_micros: u64,
}

/// Registry mirrors of the admission counters, updated under the same
/// state lock as the plain fields so scrapes and [`AdmissionStats`]
/// never disagree.
#[derive(Clone)]
struct PoolMetrics {
    admitted: Counter,
    rejected: Counter,
    blocked: Counter,
    executed: Counter,
    peak_queue: Gauge,
}

impl PoolMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let counter = |outcome: &str| {
            registry.counter(
                "pspp_admission_jobs_total",
                "Admission-controller decisions by outcome.",
                &[("outcome", outcome)],
            )
        };
        PoolMetrics {
            admitted: counter("admitted"),
            rejected: counter("rejected"),
            blocked: counter("blocked"),
            executed: counter("executed"),
            peak_queue: registry.gauge(
                "pspp_admission_peak_queue",
                "Largest admission-queue length observed.",
                &[],
            ),
        }
    }
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    admitted: u64,
    rejected: u64,
    blocked: u64,
    executed: u64,
    peak_queue: usize,
    /// EWMA of reported job service times in simulated microseconds
    /// (`0` until the first report) — the basis of the retry-after
    /// hint handed to shed clients.
    mean_service_micros: u64,
    metrics: Option<PoolMetrics>,
}

struct Shared {
    state: Mutex<State>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_depth: usize,
    workers: usize,
    policy: AdmissionPolicy,
}

impl Shared {
    fn guard(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The deterministic back-off hint for a queue currently holding
    /// `queued` jobs: the time the pool needs to drain one slot,
    /// `ceil((queued + 1) / workers)` service rounds at the recent mean
    /// service time. `0` (no estimate) until a service time is known.
    fn retry_after_micros(&self, state: &State, queued: usize) -> u64 {
        let rounds = (queued as u64 + 1).div_ceil(self.workers.max(1) as u64);
        state.mean_service_micros.saturating_mul(rounds)
    }
}

/// A cloneable submission endpoint for a [`WorkerPool`].
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle").finish_non_exhaustive()
    }
}

impl PoolHandle {
    /// Submits a job under the pool's admission policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] when the queue is full under
    /// [`AdmissionPolicy::Reject`], or when the pool has shut down.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<()> {
        let mut state = self.shared.guard();
        let mut counted_blocked = false;
        loop {
            if state.shutdown {
                state.rejected += 1;
                if let Some(m) = &state.metrics {
                    m.rejected.inc();
                }
                return Err(Error::overloaded("worker pool is shut down", 0));
            }
            if state.queue.len() < self.shared.queue_depth {
                state.queue.push_back(Box::new(job));
                state.peak_queue = state.peak_queue.max(state.queue.len());
                state.admitted += 1;
                if let Some(m) = &state.metrics {
                    m.admitted.inc();
                    m.peak_queue.record_max(state.peak_queue as i64);
                }
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            match self.shared.policy {
                AdmissionPolicy::Reject => {
                    state.rejected += 1;
                    if let Some(m) = &state.metrics {
                        m.rejected.inc();
                    }
                    let retry = self
                        .shared
                        .retry_after_micros(&state, self.shared.queue_depth);
                    return Err(Error::overloaded(
                        format!("admission queue full ({} waiting)", self.shared.queue_depth),
                        retry,
                    ));
                }
                AdmissionPolicy::Block => {
                    // Count the job once, not once per condvar wakeup.
                    if !counted_blocked {
                        state.blocked += 1;
                        if let Some(m) = &state.metrics {
                            m.blocked.inc();
                        }
                        counted_blocked = true;
                    }
                    state = self
                        .shared
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Reports one completed job's service time (simulated
    /// microseconds); the pool folds it into the EWMA behind the
    /// retry-after hint (`new = (7 * old + sample) / 8`).
    pub fn record_service_micros(&self, micros: u64) {
        let mut state = self.shared.guard();
        state.mean_service_micros = if state.mean_service_micros == 0 {
            micros
        } else {
            (state.mean_service_micros.saturating_mul(7) + micros) / 8
        };
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.shared.guard();
        let retry_after_micros = self.shared.retry_after_micros(&state, state.queue.len());
        AdmissionStats {
            admitted: state.admitted,
            rejected: state.rejected,
            blocked: state.blocked,
            executed: state.executed,
            peak_queue: state.peak_queue,
            retry_after_micros,
        }
    }
}

/// A fixed-size worker pool over a bounded job queue.
///
/// Dropping the pool closes the queue to new submissions, then joins
/// the workers — which first drain every already-admitted job, so no
/// admitted ticket is left unfilled. Drop therefore blocks until the
/// backlog completes.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.shared.queue_depth)
            .field("policy", &self.shared.policy)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns the pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for zero workers or queue depth.
    pub fn new(config: AdmissionConfig) -> Result<Self> {
        if config.workers == 0 {
            return Err(Error::Config("worker pool needs >= 1 worker".into()));
        }
        if config.queue_depth == 0 {
            return Err(Error::Config("admission queue depth must be >= 1".into()));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_depth: config.queue_depth,
            workers: config.workers,
            policy: config.policy,
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("pspp-service-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Shut down and join the workers spawned so far —
                    // they must not park on not_empty forever.
                    shared.guard().shutdown = true;
                    shared.not_empty.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(Error::Config(format!("spawning worker {i}: {e}")));
                }
            }
        }
        Ok(WorkerPool { shared, workers })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Mirrors the admission counters into `registry` (series
    /// `pspp_admission_*`). Only decisions made after this call are
    /// counted there.
    pub fn set_metrics(&self, registry: &MetricsRegistry) {
        self.shared.guard().metrics = Some(PoolMetrics::new(registry));
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.guard().shutdown = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.guard();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.executed += 1;
                    if let Some(m) = &state.metrics {
                        m.executed.inc();
                    }
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.not_full.notify_one();
        job();
    }
}

/// A one-shot completion slot for a submitted job: the worker fills it,
/// the submitter waits on it.
#[derive(Debug)]
pub struct Ticket<T> {
    slot: Arc<(Mutex<Option<T>>, Condvar)>,
}

impl<T> Clone for Ticket<T> {
    fn clone(&self) -> Self {
        Ticket {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> Default for Ticket<T> {
    fn default() -> Self {
        Ticket::new()
    }
}

impl<T> Ticket<T> {
    /// An unfilled ticket.
    pub fn new() -> Self {
        Ticket {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    /// Fills the ticket and wakes the waiters.
    pub fn fill(&self, value: T) {
        let (lock, cvar) = &*self.slot;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        cvar.notify_all();
    }

    /// Blocks until the ticket is filled. The value stays in the slot
    /// (waiters receive clones), so every clone of the ticket can wait
    /// — a second waiter must not hang.
    pub fn wait(&self) -> T
    where
        T: Clone,
    {
        let (lock, cvar) = &*self.slot;
        let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = guard.as_ref() {
                return value.clone();
            }
            guard = cvar.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(AdmissionConfig {
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<Ticket<usize>> = (0..16)
            .map(|i| {
                let ticket = Ticket::new();
                let t = ticket.clone();
                let c = Arc::clone(&counter);
                pool.handle()
                    .submit(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                        t.fill(i);
                    })
                    .unwrap();
                ticket
            })
            .collect();
        let sum: usize = tickets.iter().map(Ticket::wait).sum();
        assert_eq!(sum, (0..16).sum());
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        let stats = pool.handle().stats();
        assert_eq!(stats.admitted, 16);
        assert_eq!(stats.executed, 16);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn reject_policy_sheds_load() {
        // One worker wedged on a slow job, queue depth 1: the third
        // submission must be rejected.
        let pool = WorkerPool::new(AdmissionConfig {
            workers: 1,
            queue_depth: 1,
            policy: AdmissionPolicy::Reject,
        })
        .unwrap();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let started = Ticket::new();
        let s = started.clone();
        pool.handle()
            .submit(move || {
                s.fill(());
                let (lock, cvar) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
            })
            .unwrap();
        started.wait(); // worker is now busy; the queue is empty
        pool.handle().submit(|| {}).unwrap(); // fills the queue
        let err = pool.handle().submit(|| {}).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }), "got {err:?}");
        assert_eq!(pool.handle().stats().rejected, 1);
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    #[test]
    fn reject_carries_retry_after_hint() {
        let pool = WorkerPool::new(AdmissionConfig {
            workers: 2,
            queue_depth: 4,
            policy: AdmissionPolicy::Reject,
        })
        .unwrap();
        let handle = pool.handle();
        // No service time observed yet: no estimate.
        assert_eq!(handle.stats().retry_after_micros, 0);
        handle.record_service_micros(1_000);
        // Empty queue: one service round at the mean.
        assert_eq!(handle.stats().retry_after_micros, 1_000);
        // A full queue of 4 plus the reject itself is 5 jobs over 2
        // workers = 3 rounds; the rejection error carries the hint.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut started = Vec::new();
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            let s = Ticket::new();
            let t = s.clone();
            handle
                .submit(move || {
                    t.fill(());
                    let (lock, cvar) = &*g;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cvar.wait(open).unwrap();
                    }
                })
                .unwrap();
            started.push(s);
        }
        for s in &started {
            s.wait(); // both workers busy; queue empty
        }
        for _ in 0..4 {
            handle.submit(|| {}).unwrap(); // fill the queue
        }
        let err = handle.submit(|| {}).unwrap_err();
        assert_eq!(
            err,
            Error::overloaded("admission queue full (4 waiting)", 3_000),
            "got {err:?}"
        );
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    #[test]
    fn block_policy_applies_backpressure() {
        let pool = WorkerPool::new(AdmissionConfig {
            workers: 1,
            queue_depth: 1,
            policy: AdmissionPolicy::Block,
        })
        .unwrap();
        let tickets: Vec<Ticket<()>> = (0..8)
            .map(|_| {
                let ticket = Ticket::new();
                let t = ticket.clone();
                pool.handle()
                    .submit(move || {
                        std::thread::sleep(Duration::from_millis(1));
                        t.fill(());
                    })
                    .unwrap();
                ticket
            })
            .collect();
        for t in &tickets {
            t.wait();
        }
        let stats = pool.handle().stats();
        assert_eq!(stats.admitted, 8);
        assert!(stats.blocked > 0, "queue never filled: {stats:?}");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let pool = WorkerPool::new(AdmissionConfig::default()).unwrap();
        let handle = pool.handle();
        drop(pool);
        assert!(matches!(
            handle.submit(|| {}),
            Err(Error::Overloaded { .. })
        ));
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let err = WorkerPool::new(AdmissionConfig {
            workers: 0,
            ..Default::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}

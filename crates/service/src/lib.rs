//! The Polystore++ query service: the serving layer that mediates many
//! concurrent clients over one shared polystore deployment.
//!
//! The library crates below this one ([`pspp_core`] and friends) are a
//! single-request stack: compile, optimize, execute, return. Real
//! polystore deployments (BigDAWG, and the business-analytics setting
//! of the Polystore++ paper) are *services*: many sessions issue
//! queries against shared engine state, repeat queries should not pay
//! the frontend and optimizer again, and an overloaded system must
//! queue or shed work instead of collapsing. This crate adds that
//! layer:
//!
//! - [`QueryService`] owns an `Arc`-shared [`pspp_core::Polystore`]
//!   and a bounded worker pool; [`Session`]s submit [`Query`]s through
//!   the admission controller and wait for [`QueryResponse`]s.
//! - [`PlanCache`] memoizes compiled + optimized plans keyed by
//!   (dialect, query text, optimization level, engine-state epoch);
//!   cache hits skip the frontend and optimizer entirely.
//! - [`ResultCache`] memoizes whole executions keyed by `(plan digest,
//!   engine-state epoch)`; hits bypass the executor and are billed at
//!   lookup cost. Every engine mutation bumps the epoch, so stale hits
//!   are structurally impossible.
//! - [`AdmissionConfig`] bounds concurrency and queue depth, with a
//!   [`AdmissionPolicy`] of blocking backpressure or load shedding;
//!   rejections carry a deterministic retry-after hint derived from
//!   queue depth and the observed mean service time.
//! - [`SessionCore`] scales session count past the worker pool: a
//!   deterministic event loop holds 10k–1M parked sessions as state
//!   machines (Parked → Queued → Running → Done) on the simulated
//!   clock, with weighted fair queueing across tenants over the
//!   bounded submission queue.
//! - Per-session statistics (latency histogram, cache hit rate,
//!   rejection counts) merge into a [`ServiceReport`].
//!
//! Following the repo-wide methodology (real data plane, simulated
//! clock), per-query *latency* is simulated time — planning cost plus
//! execution makespan — so every reported number is deterministic and
//! bit-reproducible at any concurrency level, while execution itself
//! runs on real worker threads against the real engines.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pspp_core::prelude::*;
//! use pspp_service::{Query, QueryService, ServiceConfig};
//!
//! # fn main() -> pspp_common::Result<()> {
//! let system = Polystore::from_deployment(datagen::clinical(&ClinicalConfig {
//!     patients: 40,
//!     ..Default::default()
//! }))
//! .build()?;
//! let service = QueryService::new(Arc::new(system), ServiceConfig::default())?;
//! let session = service.open_session();
//! let sql = "SELECT pid FROM admissions WHERE age >= 65";
//! let cold = session.execute(&Query::sql(sql))?;
//! let warm = session.execute(&Query::sql(sql))?;
//! assert!(!cold.cache_hit && warm.cache_hit);
//! assert!(warm.service_seconds < cold.service_seconds);
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod cache;
pub mod service;
pub mod sessions;
pub mod stats;

pub use admission::{AdmissionConfig, AdmissionPolicy, AdmissionStats, Ticket, WorkerPool};
pub use cache::{
    CacheStats, CachedPlan, CachedResult, Dialect, PlanCache, PlanKey, ResultCache,
    ResultCacheStats, ResultKey,
};
pub use service::{Query, QueryResponse, QueryService, ServiceConfig, Session};
pub use sessions::{
    ReshardEvent, SessionCore, SessionCoreConfig, SessionCoreReport, SessionScript, SessionState,
    SessionStep, TenantReport,
};
pub use stats::{LatencyHistogram, ServiceReport, SessionReport};
